"""Setup shim for environments without PEP 660 editable-install support
(pip needs the ``wheel`` package for pyproject-based editable installs;
this file lets ``pip install -e .`` / ``setup.py develop`` work without it).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "A Python reproduction of LLVM (CGO 2004): a typed SSA compiler "
        "framework for lifelong program analysis and transformation"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.benchsuite": ["programs/*.lc"]},
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "lc-cc=repro.tools:lc_cc",
            "lc-as=repro.tools:lc_as",
            "lc-dis=repro.tools:lc_dis",
            "lc-opt=repro.tools:lc_opt",
            "lc-link=repro.tools:lc_link",
            "lc-run=repro.tools:lc_run",
            "lc-llc=repro.tools:lc_llc",
            "lc-lint=repro.tools:lc_lint",
        ]
    },
)
