"""The linker: combines modules for whole-program compilation."""

from .linker import LinkError, link_modules

__all__ = ["LinkError", "link_modules"]
