"""Module linking (paper section 3.1/3.3).

"Static compiler front-ends emit code in the LLVM representation, which
is combined together by the LLVM linker" — this module is that linker.
It merges translation units into one module: named types are unified
structurally, declarations are resolved against definitions, internal
symbols are renamed to avoid collisions, and ``appending`` arrays are
concatenated.  The resulting module is what the link-time
interprocedural optimizer runs on.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import types
from ..core.instructions import Instruction
from ..core.module import Function, GlobalVariable, Linkage, Module
from ..core.values import Constant, ConstantArray, Value
from ..transforms.cloning import clone_body


class LinkError(Exception):
    """Symbol or type conflicts that prevent linking."""


def link_modules(modules: Sequence[Module], name: str = "linked") -> Module:
    """Link ``modules`` into a fresh combined module.

    The inputs are not mutated; everything is cloned into the output.
    """
    if not modules:
        raise LinkError("nothing to link")
    from ..fuzz import faultinject

    faultinject.check("linker.symbol-clash")
    linked = Module(name, modules[0].data_layout)
    linker = _Linker(linked)
    for module in modules:
        linker.add(module)
    linker.finish()
    return linked


class _Linker:
    def __init__(self, output: Module):
        self.output = output
        #: Per-input-module map from source value -> output value.
        self.type_map: dict[int, types.StructType] = {}
        self.pending_appending: dict[str, list[Constant]] = {}

    # -- types ----------------------------------------------------------------

    def _map_type(self, ty: types.Type) -> types.Type:
        """Translate a type from an input module into the output module,
        unifying named structs by name (structural check on collision)."""
        if ty.is_pointer:
            return types.pointer(self._map_type(ty.pointee))
        if ty.is_array:
            return types.array(self._map_type(ty.element), ty.count)
        if ty.is_function:
            return types.function(
                self._map_type(ty.return_type),
                [self._map_type(p) for p in ty.params],
                ty.is_vararg,
            )
        if ty.is_struct and ty.name is not None:
            mapped = self.type_map.get(id(ty))
            if mapped is not None:
                return mapped
            existing = self.output.named_types.get(ty.name)
            if existing is not None:
                # Unify: both must agree structurally (checked lazily by
                # field count; deep equality would need recursion care).
                self.type_map[id(ty)] = existing
                if not ty.is_opaque and not existing.is_opaque:
                    if len(ty.fields) != len(existing.fields):
                        raise LinkError(
                            f"type %{ty.name} disagrees between modules"
                        )
                return existing
            created = types.named_struct(ty.name)
            self.output.add_named_type(created)
            self.type_map[id(ty)] = created
            if not ty.is_opaque:
                created.set_body([self._map_type(f) for f in ty.fields])
            return created
        if ty.is_struct:
            return types.struct(self._map_type(f) for f in ty.fields)
        return ty

    # -- symbols -----------------------------------------------------------------

    def add(self, module: Module) -> None:
        value_map: dict[int, Value] = {}
        # Pass 1: create/merge symbol table entries.
        for global_var in module.globals.values():
            value_map[id(global_var)] = self._merge_global(global_var)
        for function in module.functions.values():
            merged = self._merge_function(function)
            if not function.is_declaration and not merged.blocks:
                # Whichever unit supplies the body supplies the
                # provenance whole-program diagnostics report.
                merged.source_module = function.source_module or module.name
            value_map[id(function)] = merged
        # Pass 2: copy initializers and bodies through the value map.
        for global_var in module.globals.values():
            target: GlobalVariable = value_map[id(global_var)]  # type: ignore[assignment]
            if global_var.initializer is not None:
                if global_var.linkage == Linkage.APPENDING:
                    self.pending_appending.setdefault(target.name, []).append(
                        self._map_constant(global_var.initializer, value_map)
                    )
                elif target.initializer is None:
                    target.set_initializer(
                        self._map_constant(global_var.initializer, value_map)
                    )
        for function in module.functions.values():
            target: Function = value_map[id(function)]  # type: ignore[assignment]
            if not function.is_declaration and not target.blocks:
                body_map = dict(value_map)
                for old_arg, new_arg in zip(function.args, target.args):
                    body_map[id(old_arg)] = new_arg
                # Constants embed symbol references and named types; map
                # them so cloned instructions point into the output
                # module (scalar constants map to themselves).
                from ..core.module import GlobalValue

                for inst in function.instructions():
                    for operand in inst.operands:
                        if (isinstance(operand, Constant)
                                and not isinstance(operand, GlobalValue)
                                and id(operand) not in body_map):
                            body_map[id(operand)] = self._map_constant(
                                operand, value_map
                            )
                clone_body(function.blocks, target, body_map,
                           map_type=self._map_type)

    def _merge_global(self, global_var: GlobalVariable) -> GlobalVariable:
        value_type = self._map_type(global_var.value_type)
        if global_var.is_internal:
            name = self.output.unique_symbol(global_var.name)
            return self.output.new_global(
                value_type, name, None, Linkage.INTERNAL, global_var.is_constant
            )
        existing = self.output.get_symbol(global_var.name)
        if existing is None:
            return self.output.new_global(
                value_type, global_var.name, None, global_var.linkage,
                global_var.is_constant,
            )
        if not isinstance(existing, GlobalVariable):
            raise LinkError(
                f"symbol {global_var.name!r} is a global in one module "
                "and a function in another"
            )
        if existing.value_type is not value_type:
            if global_var.linkage != Linkage.APPENDING:
                raise LinkError(
                    f"global {global_var.name!r} has conflicting types"
                )
        if (existing.initializer is not None
                and global_var.initializer is not None
                and global_var.linkage != Linkage.APPENDING):
            raise LinkError(f"global {global_var.name!r} defined twice")
        return existing

    def _merge_function(self, function: Function) -> Function:
        fn_type = self._map_type(function.function_type)
        if function.is_internal:
            name = self.output.unique_symbol(function.name)
            clone = Function(fn_type, name, Linkage.INTERNAL,
                             [a.name for a in function.args])
            clone.is_pure = function.is_pure
            return self.output.add_function(clone)
        existing = self.output.get_symbol(function.name)
        if existing is None:
            clone = Function(fn_type, function.name, function.linkage,
                             [a.name for a in function.args])
            clone.is_pure = function.is_pure
            return self.output.add_function(clone)
        if not isinstance(existing, Function):
            raise LinkError(
                f"symbol {function.name!r} is a function in one module "
                "and a global in another"
            )
        if existing.function_type is not fn_type:
            raise LinkError(
                f"function {function.name!r} has conflicting signatures: "
                f"{existing.function_type} vs {fn_type}"
            )
        if not function.is_declaration and existing.blocks:
            raise LinkError(f"function {function.name!r} defined twice")
        return existing

    def _map_constant(self, constant: Constant, value_map: dict[int, Value]) -> Constant:
        from ..core.values import (
            ConstantAggregateZero, ConstantExpr, ConstantPointerNull,
            ConstantString, ConstantStruct,
        )
        from ..core.values import ConstantArray as CA

        mapped = value_map.get(id(constant))
        if mapped is not None:
            return mapped  # type: ignore[return-value]
        if isinstance(constant, (Function, GlobalVariable)):
            raise LinkError(f"unmapped symbol {constant.name!r} in initializer")
        if isinstance(constant, ConstantPointerNull):
            return ConstantPointerNull(self._map_type(constant.type))  # type: ignore[arg-type]
        if isinstance(constant, ConstantAggregateZero):
            return ConstantAggregateZero(self._map_type(constant.type))
        if isinstance(constant, ConstantString):
            return constant  # no embedded types
        if isinstance(constant, CA):
            return CA(self._map_type(constant.type),  # type: ignore[arg-type]
                      [self._map_constant(e, value_map) for e in constant.elements])
        if isinstance(constant, ConstantStruct):
            return ConstantStruct(self._map_type(constant.type),  # type: ignore[arg-type]
                                  [self._map_constant(f, value_map)
                                   for f in constant.fields_values])
        if isinstance(constant, ConstantExpr):
            return ConstantExpr(constant.opcode, self._map_type(constant.type),
                                [self._map_constant(op, value_map)
                                 for op in constant.operands])
        return constant  # scalar constants carry only primitive types

    # -- appending linkage ---------------------------------------------------------

    def finish(self) -> None:
        for name, pieces in self.pending_appending.items():
            target = self.output.globals[name]
            elements: list[Constant] = []
            element_ty: Optional[types.Type] = None
            for piece in pieces:
                if not isinstance(piece, ConstantArray):
                    raise LinkError("appending linkage requires array initializers")
                element_ty = piece.type.element  # type: ignore[attr-defined]
                elements.extend(piece.elements)  # type: ignore[arg-type]
            if element_ty is None:
                continue
            array_ty = types.array(element_ty, len(elements))
            combined = ConstantArray(array_ty, elements)  # type: ignore[arg-type]
            # The slot type grows to fit the concatenation.
            replacement = GlobalVariable(array_ty, target.name, combined,
                                         Linkage.APPENDING, target.is_constant)
            self.output._remove_global(target)
            target.replace_all_uses_with(replacement)
            self.output.add_global(replacement)


def materialize_function(module: Module, text: str) -> Function:
    """Parse one function's textual IR back into ``module``'s world.

    ``text`` is a single function definition as printed by
    ``print_function`` against ``module`` (the transactional pass
    manager's per-function snapshot).  The result is a *detached*
    :class:`Function` — not registered in ``module`` — whose external
    references (globals, callees, named struct types, constants) point
    at ``module``'s own objects, so its blocks can be spliced into the
    live function or co-executed against it.

    This is the linker's cross-module identity machinery applied to a
    one-function "module": the text is parsed under a skeleton of
    ``module``'s types, globals, and declarations, then grafted through
    the same type/constant unification a real link uses.
    """
    from ..core.irparser import parse_module
    from ..core.module import GlobalValue
    from ..core.printer import print_module

    # A skeleton carrier: the module's type and global sections plus a
    # declaration for every function, so the text parses in a symbol
    # environment identical to the one it was printed in.
    skeleton = Module(module.name, module.data_layout)
    skeleton.named_types = module.named_types
    skeleton.globals = module.globals
    for function in module.functions.values():
        stub = Function(function.function_type, function.name,
                        function.linkage, [a.name for a in function.args])
        skeleton.functions[function.name] = stub
    parsed = parse_module(print_module(skeleton) + "\n" + text)
    target_name = None
    for name, candidate in parsed.functions.items():
        if not candidate.is_declaration:
            target_name = name
    if target_name is None:
        raise LinkError("no function definition in materialized text")
    parsed_fn = parsed.functions[target_name]

    linker = _Linker(module)
    value_map: dict[int, Value] = {}
    for global_var in parsed.globals.values():
        live = module.globals.get(global_var.name)
        if live is None:
            raise LinkError(f"snapshot references unknown global "
                            f"{global_var.name!r}")
        value_map[id(global_var)] = live
    for function in parsed.functions.values():
        live_fn = module.functions.get(function.name)
        if live_fn is not None:
            # Self-references included: a recursive call in the spliced
            # body must point at the function living in the module, not
            # at the detached shell.
            value_map[id(function)] = live_fn
    detached = Function(linker._map_type(parsed_fn.function_type),  # type: ignore[arg-type]
                        parsed_fn.name, parsed_fn.linkage,
                        [a.name for a in parsed_fn.args])
    for old_arg, new_arg in zip(parsed_fn.args, detached.args):
        value_map[id(old_arg)] = new_arg
    for inst in parsed_fn.instructions():
        for operand in inst.operands:
            if (isinstance(operand, Constant)
                    and not isinstance(operand, GlobalValue)
                    and id(operand) not in value_map):
                value_map[id(operand)] = linker._map_constant(
                    operand, value_map)
    clone_body(parsed_fn.blocks, detached, value_map,
               map_type=linker._map_type)
    return detached
