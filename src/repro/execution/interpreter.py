"""The Execution Engine: an interpreter for the IR (paper section 3.4).

Stands in for the JIT: it executes one function at a time over the
in-memory representation, with a flat byte-addressed memory, external
(runtime library) functions, and full ``invoke``/``unwind`` stack
unwinding semantics — "when the program executes an unwind instruction,
it logically unwinds the stack until it removes an activation record
created by an invoke, then transfers control to the basic block
specified by the invoke".

The interpreter shares its arithmetic with the constant folder
(:mod:`repro.core.constfold`), so optimization can never change what a
program computes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..core import constfold, types
from ..core.basicblock import BasicBlock
from ..core.constfold import ArithmeticFault
from ..core.instructions import (
    AllocaInst, BinaryOperator, BranchInst, CallInst, CastInst, FreeInst,
    GetElementPtrInst, Instruction, InvokeInst, LoadInst, MallocInst,
    Opcode, PhiNode, ReturnInst, ShiftInst, StoreInst, SwitchInst,
    UnwindInst, VAArgInst,
)
from ..core.module import Function, GlobalVariable, Module
from ..core.values import (
    Argument, Constant, ConstantAggregateZero, ConstantArray, ConstantBool,
    ConstantExpr, ConstantFP, ConstantInt, ConstantPointerNull,
    ConstantString, ConstantStruct, UndefValue, Value,
)
from .memory import Memory, MemoryFault


class ExecutionError(Exception):
    """Base for runtime faults the interpreter raises."""


class UnhandledUnwind(ExecutionError):
    """``unwind`` executed with no dynamically-enclosing ``invoke``."""


class StepLimitExceeded(ExecutionError):
    """The configured instruction budget ran out."""


class UndefinedFunction(ExecutionError):
    """Call to a declaration with no registered external implementation."""


class ExitCalled(Exception):
    """Raised by the ``exit`` external to stop the program."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


class _Frame:
    __slots__ = ("function", "block", "index", "registers", "allocas",
                 "prev_block", "pending_call", "va_area")

    def __init__(self, function: Function):
        self.function = function
        self.block: BasicBlock = function.entry_block
        self.index = 0
        self.registers: dict[int, object] = {}
        self.allocas: list[int] = []
        self.prev_block: Optional[BasicBlock] = None
        #: The call/invoke instruction this frame is suspended at.
        self.pending_call: Optional[Instruction] = None
        #: Address of the varargs area for vararg functions.
        self.va_area: int = 0


class Interpreter:
    """Executes functions of one module."""

    def __init__(self, module: Module, step_limit: int = 50_000_000,
                 extra_externals: Optional[dict[str, Callable]] = None):
        self.module = module
        self.memory = Memory(module.data_layout)
        self.steps = 0
        self.step_limit = step_limit
        self.output: list[str] = []
        self.global_addresses: dict[int, int] = {}
        #: Hook called as fn(interpreter, block) at each block entry
        #: (used by the profiling runtime).
        self.block_hook: Optional[Callable] = None
        #: Hook called as fn(instruction, value) after each SSA register
        #: write (used by the abstract-interpretation fuzz oracle to
        #: cross-check every concrete value against computed facts).
        self.value_hook: Optional[Callable] = None
        #: Set by the JIT engine: called with a declaration about to be
        #: executed, to materialise its body from bytecode on demand.
        self.lazy_loader: Optional[Callable] = None
        #: Set by the trace JIT (``--jit-traces``): a
        #: :class:`repro.execution.tracejit.TraceManager` receiving
        #: every block entry — it counts hotness, records paths, and
        #: runs compiled traces in place of the dispatch loop.
        self.trace_manager = None
        from .externals import default_externals

        self.externals: dict[str, Callable] = default_externals()
        if extra_externals:
            self.externals.update(extra_externals)
        #: Thread-local exception state for the cxxeh runtime externals.
        self.eh_state = None
        #: The active frame's varargs area, visible to ``llvm.va_start``.
        self.current_va_area = 0
        self._initialize_globals()

    # ==================================================================
    # Globals
    # ==================================================================

    def _initialize_globals(self) -> None:
        layout = self.module.data_layout
        for global_var in self.module.globals.values():
            size = layout.size_of(global_var.value_type)
            address = self.memory.allocate(size, kind="global")
            self.global_addresses[id(global_var)] = address
        for global_var in self.module.globals.values():
            initializer = global_var.initializer
            if initializer is not None:
                address = self.global_addresses[id(global_var)]
                self._write_constant(address, initializer)
                if global_var.is_constant:
                    alloc_id = address >> 30
                    self.memory.allocations[alloc_id].frozen = True

    def _write_constant(self, address: int, constant: Constant) -> None:
        layout = self.module.data_layout
        ty = constant.type
        if isinstance(constant, ConstantString):
            self.memory.write_bytes(address, constant.data)
            return
        if isinstance(constant, ConstantAggregateZero):
            return  # memory is already zeroed
        if isinstance(constant, ConstantArray):
            element_size = layout.size_of(ty.element)  # type: ignore[attr-defined]
            for index, element in enumerate(constant.elements):
                self._write_constant(address + index * element_size, element)
            return
        if isinstance(constant, ConstantStruct):
            for index, field in enumerate(constant.fields_values):
                offset = layout.field_offset(ty, index)
                self._write_constant(address + offset, field)
            return
        self.memory.store(address, ty, self.constant_value(constant))

    # ==================================================================
    # Value evaluation
    # ==================================================================

    def constant_value(self, constant: Constant):
        if isinstance(constant, ConstantInt):
            return constant.value
        if isinstance(constant, ConstantBool):
            return constant.value
        if isinstance(constant, ConstantFP):
            return constant.value
        if isinstance(constant, ConstantPointerNull):
            return 0
        if isinstance(constant, UndefValue):
            ty = constant.type
            if ty.is_floating:
                return 0.0
            if ty.is_bool:
                return False
            return 0
        if isinstance(constant, Function):
            return self.memory.function_address(constant)
        if isinstance(constant, GlobalVariable):
            return self.global_addresses[id(constant)]
        if isinstance(constant, ConstantExpr):
            if constant.opcode == "cast":
                inner = self.constant_value(constant.operands[0])
                return constfold.eval_cast(
                    constant.operands[0].type, constant.type, inner
                )
            base = self.constant_value(constant.operands[0])
            return base + self._gep_offset(
                constant.operands[0].type, constant.operands[1:]
            )
        raise ExecutionError(f"cannot evaluate constant {constant!r}")

    def _gep_offset(self, pointer_type, indices: Sequence[Value],
                    frame: Optional[_Frame] = None) -> int:
        layout = self.module.data_layout
        offset = 0
        current = pointer_type.pointee
        for position, index in enumerate(indices):
            index_value = (self._value(frame, index) if frame is not None
                           else self.constant_value(index))
            if position == 0:
                offset += index_value * layout.size_of(current)
            elif current.is_struct:
                offset += layout.field_offset(current, index_value)
                current = current.fields[index_value]
            else:  # array
                offset += index_value * layout.size_of(current.element)
                current = current.element
        return offset

    def _value(self, frame: Optional[_Frame], value: Value):
        if isinstance(value, (Instruction, Argument)):
            if frame is None:
                raise ExecutionError("register value needed outside a frame")
            try:
                return frame.registers[id(value)]
            except KeyError:
                raise ExecutionError(
                    f"read of unset register {value.name!r} "
                    f"(undefined behaviour made loud)"
                ) from None
        return self.constant_value(value)  # type: ignore[arg-type]

    # ==================================================================
    # Running
    # ==================================================================

    def run(self, function_name: str = "main", args: Sequence = ()) :
        """Run a function by name with Python-level argument values."""
        function = self.module.functions.get(function_name)
        if function is None or function.is_declaration:
            raise ExecutionError(f"no defined function {function_name!r}")
        try:
            return self._run_function(function, list(args))
        except ExitCalled as exit_call:
            return exit_call.code

    def _run_function(self, function: Function, args: list):
        stack: list[_Frame] = []
        frame = self._make_frame(function, args)
        stack.append(frame)
        result = None
        while stack:
            frame = stack[-1]
            inst = frame.block.instructions[frame.index]
            self.steps += 1
            if self.steps > self.step_limit:
                raise StepLimitExceeded(
                    f"exceeded {self.step_limit} interpreted instructions"
                )
            outcome = self._execute(stack, frame, inst)
            if outcome is not _CONTINUE:
                result = outcome
        return result

    def _make_frame(self, function: Function, args: list) -> _Frame:
        frame = _Frame(function)
        fixed = len(function.args)
        for formal, actual in zip(function.args, args):
            frame.registers[id(formal)] = actual
        if function.is_vararg:
            extra = args[fixed:]
            area = self.memory.allocate(max(8 * len(extra), 8), kind="stack")
            frame.va_area = area
            for slot, value in enumerate(extra):
                self._store_va_slot(area + 8 * slot, value)
            frame.allocas.append(area)
        if self.block_hook is not None:
            self.block_hook(self, frame.block)
        if self.trace_manager is not None:
            self.trace_manager.on_block(self, frame, frame.block)
        return frame

    def _store_va_slot(self, address: int, value) -> None:
        if isinstance(value, float):
            self.memory.store(address, types.DOUBLE, value)
        elif isinstance(value, bool):
            self.memory.store(address, types.ULONG, int(value))
        else:
            self.memory.store(address, types.ULONG, value & ((1 << 64) - 1))

    # -- control transfer helpers ----------------------------------------------

    def _enter_block(self, frame: _Frame, dest: BasicBlock) -> None:
        frame.prev_block = frame.block
        frame.block = dest
        frame.index = 0
        # Phi nodes read their incoming values *simultaneously*.
        phis = []
        for inst in dest.instructions:
            if isinstance(inst, PhiNode):
                incoming = inst.incoming_for_block(frame.prev_block)
                if incoming is None:
                    raise ExecutionError(
                        f"phi {inst.name!r} has no entry for predecessor "
                        f"{frame.prev_block.name!r}"
                    )
                phis.append((inst, self._value(frame, incoming)))
            else:
                break
        for phi, value in phis:
            frame.registers[id(phi)] = value
            if self.value_hook is not None:
                self.value_hook(phi, value)
        frame.index = len(phis)
        if self.block_hook is not None:
            self.block_hook(self, dest)
        if self.trace_manager is not None:
            self.trace_manager.on_block(self, frame, dest)

    def _pop_frame(self, stack: list[_Frame]) -> _Frame:
        frame = stack.pop()
        for address in frame.allocas:
            self.memory.release(address)
        return frame

    # -- instruction dispatch -----------------------------------------------------

    def _execute(self, stack: list[_Frame], frame: _Frame, inst: Instruction):
        opcode = inst.opcode
        if isinstance(inst, BinaryOperator):
            lhs = self._value(frame, inst.operands[0])
            rhs = self._value(frame, inst.operands[1])
            result = constfold.eval_binary(
                opcode, inst.operands[0].type, lhs, rhs
            )
            frame.registers[id(inst)] = result
            if self.value_hook is not None:
                self.value_hook(inst, result)
            frame.index += 1
            return _CONTINUE
        if isinstance(inst, LoadInst):
            address = self._value(frame, inst.pointer)
            loaded = self.memory.load(address, inst.type)
            frame.registers[id(inst)] = loaded
            if self.value_hook is not None:
                self.value_hook(inst, loaded)
            frame.index += 1
            return _CONTINUE
        if isinstance(inst, StoreInst):
            address = self._value(frame, inst.pointer)
            self.memory.store(address, inst.value.type,
                              self._value(frame, inst.value))
            frame.index += 1
            return _CONTINUE
        if isinstance(inst, GetElementPtrInst):
            base = self._value(frame, inst.pointer)
            if base == 0:
                raise MemoryFault("getelementptr on a null pointer")
            offset = self._gep_offset(inst.pointer.type, inst.indices, frame)
            frame.registers[id(inst)] = base + offset
            frame.index += 1
            return _CONTINUE
        if isinstance(inst, BranchInst):
            if inst.is_conditional:
                taken = self._value(frame, inst.condition)
                dest = inst.operands[1] if taken else inst.operands[2]
            else:
                dest = inst.operands[0]
            self._enter_block(frame, dest)
            return _CONTINUE
        if isinstance(inst, PhiNode):
            # Phis are handled at block entry; reaching one here means
            # the function was entered at a block with phis (impossible
            # for verified IR).
            raise ExecutionError("phi executed outside block entry")
        if isinstance(inst, CastInst):
            value = self._value(frame, inst.value)
            result = constfold.eval_cast(
                inst.value.type, inst.type, value
            )
            frame.registers[id(inst)] = result
            if self.value_hook is not None:
                self.value_hook(inst, result)
            frame.index += 1
            return _CONTINUE
        if isinstance(inst, (CallInst, InvokeInst)):
            return self._execute_call(stack, frame, inst)
        if isinstance(inst, ReturnInst):
            value = (self._value(frame, inst.return_value)
                     if inst.return_value is not None else None)
            self._pop_frame(stack)
            if not stack:
                return value
            caller = stack[-1]
            call = caller.pending_call
            caller.pending_call = None
            if not call.type.is_void:
                caller.registers[id(call)] = value
                if self.value_hook is not None:
                    self.value_hook(call, value)
            if isinstance(call, InvokeInst):
                self._enter_block(caller, call.normal_dest)
            else:
                caller.index += 1
            return _CONTINUE
        if isinstance(inst, UnwindInst):
            return self._execute_unwind(stack)
        if isinstance(inst, SwitchInst):
            selector = self._value(frame, inst.value)
            dest = inst.default_dest
            for case_value, case_dest in inst.cases:
                if self._value(frame, case_value) == selector:
                    dest = case_dest
                    break
            self._enter_block(frame, dest)
            return _CONTINUE
        if isinstance(inst, ShiftInst):
            value = self._value(frame, inst.value)
            amount = self._value(frame, inst.amount)
            result = constfold.eval_shift(
                opcode, inst.type, value, amount
            )
            frame.registers[id(inst)] = result
            if self.value_hook is not None:
                self.value_hook(inst, result)
            frame.index += 1
            return _CONTINUE
        if isinstance(inst, (MallocInst, AllocaInst)):
            count = 1
            if inst.array_size is not None:
                count = self._value(frame, inst.array_size)
            size = self.module.data_layout.size_of(inst.allocated_type) * count
            kind = "heap" if isinstance(inst, MallocInst) else "stack"
            address = self.memory.allocate(size, kind=kind)
            if kind == "stack":
                frame.allocas.append(address)
            frame.registers[id(inst)] = address
            frame.index += 1
            return _CONTINUE
        if isinstance(inst, FreeInst):
            self.memory.free(self._value(frame, inst.pointer))
            frame.index += 1
            return _CONTINUE
        if isinstance(inst, VAArgInst):
            slot = self._value(frame, inst.valist)
            cursor = self.memory.load(slot, types.pointer(types.SBYTE))
            value = self.memory.load(cursor, inst.type)
            self.memory.store(slot, types.pointer(types.SBYTE), cursor + 8)
            frame.registers[id(inst)] = value
            if self.value_hook is not None:
                self.value_hook(inst, value)
            frame.index += 1
            return _CONTINUE
        raise ExecutionError(f"cannot execute {inst!r}")

    def _execute_call(self, stack: list[_Frame], frame: _Frame,
                      inst: Instruction):
        callee_value = inst.operands[0]
        args = (inst.operands[1:-2] if isinstance(inst, InvokeInst)
                else inst.operands[1:])
        arg_values = [self._value(frame, a) for a in args]
        if isinstance(callee_value, Function):
            callee = callee_value
        else:
            address = self._value(frame, callee_value)
            callee = self.memory.function_at(address)
        if callee.is_declaration and self.lazy_loader is not None:
            self.lazy_loader(callee)
        if callee.is_declaration:
            external = self.externals.get(callee.name)
            if external is None:
                raise UndefinedFunction(
                    f"call to undefined external {callee.name!r}"
                )
            self.current_va_area = frame.va_area
            result = external(self, arg_values)
            if not inst.type.is_void:
                frame.registers[id(inst)] = result
                if self.value_hook is not None:
                    self.value_hook(inst, result)
            if isinstance(inst, InvokeInst):
                self._enter_block(frame, inst.normal_dest)
            else:
                frame.index += 1
            return _CONTINUE
        frame.pending_call = inst
        stack.append(self._make_frame(callee, arg_values))
        return _CONTINUE

    def _execute_unwind(self, stack: list[_Frame]):
        # Pop the unwinding frame, then keep popping until a frame
        # suspended at an invoke is found; control resumes at its
        # unwind destination.
        self._pop_frame(stack)
        while stack:
            frame = stack[-1]
            call = frame.pending_call
            frame.pending_call = None
            if isinstance(call, InvokeInst):
                self._enter_block(frame, call.unwind_dest)
                return _CONTINUE
            self._pop_frame(stack)
        raise UnhandledUnwind("unwind reached the top of the stack")


#: Sentinel: instruction executed, keep stepping.
_CONTINUE = object()
