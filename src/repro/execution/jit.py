"""The just-in-time Execution Engine (paper section 3.4).

"Alternatively, a just-in-time Execution Engine can be used which
invokes the appropriate code generator at runtime, translating one
function at a time for execution."

This engine loads a *bytecode* image and materialises function bodies
lazily: a function is decoded from the binary representation the first
time it is about to run (our "code generation" step is IR
materialisation — the interpreter is the back end).  Functions never
reached stay undecoded, which is the property the JIT design buys.

It can also insert the same profiling instrumentation as the offline
code generator ("The JIT translator can also insert the same
instrumentation"), so the lifelong-optimization loop works identically
in both modes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bitcode.reader import read_bytecode_lazy
from ..core.module import Function
from .interpreter import Interpreter


class JITStats:
    def __init__(self):
        self.functions_in_image = 0
        self.functions_materialized = 0


class JITEngine:
    """Function-at-a-time lazy execution of a bytecode image."""

    def __init__(self, bytecode: bytes, step_limit: int = 50_000_000,
                 instrument: bool = False, extra_externals=None):
        self.module, self._decoder = read_bytecode_lazy(bytecode)
        self.stats = JITStats()
        self.stats.functions_in_image = len(self._decoder.pending_bodies)
        self.profile = None
        externals = dict(extra_externals or {})
        if instrument:
            from ..profile import Granularity, ProfileData, ProfileInstrumentation

            self._instrumentation = ProfileInstrumentation(Granularity.BLOCKS)
            self.profile = ProfileData(self._instrumentation.profile_map)
            externals.update(self.profile.externals())
        else:
            self._instrumentation = None
        self.interpreter = Interpreter(self.module, step_limit=step_limit,
                                       extra_externals=externals)
        self.interpreter.lazy_loader = self._materialize

    # -- lazy materialisation -------------------------------------------------

    def _materialize(self, function: Function) -> bool:
        """Decode (and instrument) one function on first call."""
        if not self._decoder.materialize(function):
            return False
        self.stats.functions_materialized += 1
        if self._instrumentation is not None:
            counter_fn = self.module.get_or_insert_function(
                _counter_type(), "__profile_count"
            )
            self._instrumentation._instrument_function(function, counter_fn)
        return True

    def materialized(self, name: str) -> bool:
        """Has this function's body been decoded yet?"""
        return name not in self._decoder.pending_bodies

    # -- running --------------------------------------------------------------

    def run(self, function: str = "main", args: Sequence = ()):
        target = self.module.functions.get(function)
        if target is not None and target.is_declaration:
            self._materialize(target)
        return self.interpreter.run(function, args)

    @property
    def output(self) -> list[str]:
        return self.interpreter.output

    @property
    def steps(self) -> int:
        return self.interpreter.steps


def _counter_type():
    from ..core import types

    return types.function(types.VOID, [types.UINT])
