"""The just-in-time Execution Engine (paper section 3.4).

"Alternatively, a just-in-time Execution Engine can be used which
invokes the appropriate code generator at runtime, translating one
function at a time for execution."

This engine loads a *bytecode* image and materialises function bodies
lazily: a function is decoded from the binary representation the first
time it is about to run (our "code generation" step is IR
materialisation — the interpreter is the back end).  Functions never
reached stay undecoded, which is the property the JIT design buys.
``preload`` names functions decoded eagerly at image load (the shape a
partially-eager image would have).

It can also insert the same profiling instrumentation as the offline
code generator ("The JIT translator can also insert the same
instrumentation"), so the lifelong-optimization loop works identically
in both modes.  Instrumentation covers *every* decoded body — both the
preloaded ones (swept at construction) and the lazily-materialised
ones (instrumented as they decode).

With ``jit_traces=True`` the engine layers the trace-compiling tier
(:mod:`repro.execution.tracejit`) on top: hot blocks are recorded and
compiled to specialized Python closures, guarded so every side exit
falls back into this interpreter with exact state.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bitcode.reader import read_bytecode_lazy
from ..core.module import Function
from .interpreter import Interpreter
from .tracejit import TraceManager


class JITStats:
    def __init__(self):
        self.functions_in_image = 0
        self.functions_materialized = 0


class JITEngine:
    """Function-at-a-time lazy execution of a bytecode image."""

    def __init__(self, bytecode: bytes, step_limit: int = 50_000_000,
                 instrument: bool = False, extra_externals=None,
                 preload: Sequence[str] = (), jit_traces: bool = False,
                 trace_threshold: int = 50):
        self.module, self._decoder = read_bytecode_lazy(bytecode)
        self.stats = JITStats()
        self.stats.functions_in_image = len(self._decoder.pending_bodies)
        #: Names that arrived with a body, decoded or not — the image's
        #: definitions, as opposed to external declarations or typos.
        self._image_names = frozenset(self._decoder.pending_bodies)
        for name in preload:
            target = self.module.functions.get(name)
            if target is not None and self._decoder.materialize(target):
                self.stats.functions_materialized += 1
        self.profile = None
        externals = dict(extra_externals or {})
        if instrument:
            from ..profile import Granularity, ProfileData, ProfileInstrumentation

            self._instrumentation = ProfileInstrumentation(Granularity.BLOCKS)
            self.profile = ProfileData(self._instrumentation.profile_map)
            externals.update(self.profile.externals())
            # Sweep bodies that were already decoded at image load:
            # lazy materialisation only instruments what *it* decodes,
            # and an uncounted hot function would silently starve
            # trace selection of its block counts.
            counter_fn = self.module.get_or_insert_function(
                _counter_type(), "__profile_count"
            )
            for function in self.module.functions.values():
                if not function.is_declaration:
                    self._instrumentation._instrument_function(
                        function, counter_fn)
        else:
            self._instrumentation = None
        self.interpreter = Interpreter(self.module, step_limit=step_limit,
                                       extra_externals=externals)
        self.interpreter.lazy_loader = self._materialize
        if jit_traces:
            self.trace_manager: Optional[TraceManager] = TraceManager(
                hot_threshold=trace_threshold)
            self.trace_manager.attach(self.interpreter)
        else:
            self.trace_manager = None

    # -- lazy materialisation -------------------------------------------------

    def _materialize(self, function: Function) -> bool:
        """Decode (and instrument) one function on first call."""
        if not self._decoder.materialize(function):
            return False
        self.stats.functions_materialized += 1
        if self._instrumentation is not None:
            counter_fn = self.module.get_or_insert_function(
                _counter_type(), "__profile_count"
            )
            self._instrumentation._instrument_function(function, counter_fn)
        return True

    def materialized(self, name: str) -> bool:
        """Has this function's body been decoded yet?

        Only names that actually carried a body in the image can be
        materialized; external declarations and unknown names are
        False, not "not pending, therefore decoded".
        """
        return (name in self._image_names
                and name not in self._decoder.pending_bodies)

    # -- running --------------------------------------------------------------

    def run(self, function: str = "main", args: Sequence = ()):
        target = self.module.functions.get(function)
        if target is not None and target.is_declaration:
            self._materialize(target)
        return self.interpreter.run(function, args)

    @property
    def output(self) -> list[str]:
        return self.interpreter.output

    @property
    def steps(self) -> int:
        return self.interpreter.steps


def _counter_type():
    from ..core import types

    return types.function(types.VOID, [types.UINT])
