"""The trace-compiling JIT tier (paper sections 3.4-3.5).

"Once hot paths are identified, we duplicate the original code into a
trace, perform optimizations on it, and then regenerate native code
into a software-managed trace cache.  We then insert branches between
the original code and the new native code."

This module is that loop, with Python as the "native code": block-entry
counters promote a hot block to *recording mode*, the next completed
cycle through it becomes a trace, and the trace is compiled with
``compile()``/``exec`` into one specialized Python closure — a
straight-line unrolling of the hot path with the interpreter's dispatch,
operand lookup, and constant evaluation all burned away.  Compiled
traces live in a software :class:`TraceCache` keyed by
``(function, header)`` and are dispatched from the interpreter's
block-entry hook; reoptimization invalidates the whole cache because
the IR underneath the closures is about to be rewritten.

Every speculative assumption a trace makes is protected by a *guard*:

* **branch guards** — a conditional branch must go the recorded way;
* **switch guards** — the selector must route to the recorded case;
* **call-target guards** — an indirect call must still resolve to an
  external (runtime-library) function;
* **type guards** — live-in registers must carry the representation
  (``int``/``bool``/``float``) the specialized code was compiled for
  (widths need no dynamic check: the interpreter's wrap invariant keeps
  every register inside its declared type's range);
* **null guards** — ``getelementptr`` keeps the interpreter's
  null-base trap by side-exiting before the faulting address compute.

A failed guard *side-exits*: the closure writes every register the
trace has defined back into the frame, points ``frame.block`` /
``frame.index`` at the instruction the interpreter must re-execute,
syncs the step counter, and returns.  The interpreter continues as if
it had run every instruction itself — reconstruction is total by
construction, which is what the differential jit-gate measures.

Arithmetic is either delegated to :mod:`repro.core.constfold` (the
single source of truth) or inlined as expressions proven equal to it:
the wrap-to-range trick ``((x + 2**(n-1)) & (2**n - 1)) - 2**(n-1)``
is exactly ``IntegerType.wrap``, and every case with a trap, a NaN, or
a float32 re-round delegates rather than approximates.
"""

from __future__ import annotations

import math
import struct
from typing import Optional

from ..core import constfold, types
from ..core.basicblock import BasicBlock
from ..core.instructions import (
    AllocaInst, BinaryOperator, BranchInst, CallInst, CastInst, FreeInst,
    GetElementPtrInst, Instruction, LoadInst, MallocInst, Opcode, PhiNode,
    ShiftInst, StoreInst, SwitchInst,
)
from ..core.module import Function, GlobalVariable
from ..core.values import (
    Argument, ConstantBool, ConstantExpr, ConstantFP, ConstantInt,
    ConstantPointerNull, UndefValue, Value,
)
from .memory import OFFSET_BITS, OFFSET_MASK

_CMP_OPS = {
    Opcode.SETEQ: "==", Opcode.SETNE: "!=", Opcode.SETLT: "<",
    Opcode.SETGT: ">", Opcode.SETLE: "<=", Opcode.SETGE: ">=",
}
_ARITH_OPS = {Opcode.ADD: "+", Opcode.SUB: "-", Opcode.MUL: "*"}
_BIT_OPS = {Opcode.AND: "&", Opcode.OR: "|", Opcode.XOR: "^"}

#: struct format characters for the inline memory fast path, keyed by
#: (bits, signed).  Loading through ``struct`` gives exactly the
#: interpreter's representation: signed formats sign-extend like
#: ``IntegerType.wrap``, unsigned formats stay in [0, 2**bits).
_INT_FMT = {
    (8, True): "b", (8, False): "B", (16, True): "h", (16, False): "H",
    (32, True): "i", (32, False): "I", (64, True): "q", (64, False): "Q",
}


class Untraceable(Exception):
    """The recorded path contains something the compiler cannot
    specialize (a call into compiled IR, an invoke, an exotic
    constant); the header is blacklisted and stays interpreted."""


class TraceJITStats:
    """Counters surfaced through ``-stats`` as the ``jit`` source."""

    name = "jit"

    def __init__(self):
        self.traces_compiled = 0
        self.trace_entries = 0
        self.trace_iterations = 0
        self.guard_exits = 0
        self.budget_exits = 0
        self.steps_saved = 0
        self.entry_fallbacks = 0
        self.recordings_aborted = 0
        self.traces_evicted = 0
        self.invalidations = 0
        #: Side exits whose interpreter state could not be rebuilt.
        #: Reconstruction is total by construction, so any nonzero
        #: value here is a compiler bug; the jit-gate asserts zero.
        self.unreconstructed_exits = 0

    def statistics(self) -> dict[str, int]:
        return {
            "traces-compiled": self.traces_compiled,
            "trace-entries": self.trace_entries,
            "trace-iterations": self.trace_iterations,
            "guard-exits": self.guard_exits,
            "budget-exits": self.budget_exits,
            "steps-saved": self.steps_saved,
            "entry-fallbacks": self.entry_fallbacks,
            "recordings-aborted": self.recordings_aborted,
            "traces-evicted": self.traces_evicted,
            "invalidations": self.invalidations,
            "unreconstructed-exits": self.unreconstructed_exits,
        }


class CompiledTrace:
    """One compiled hot path: the closure plus the IR it was built from
    (holding the block references also pins their ids, which keys the
    dispatch table)."""

    __slots__ = ("fn", "function_name", "header", "path", "steps_per_iter",
                 "source", "entries", "saved")

    def __init__(self, fn, function_name: str, header: BasicBlock,
                 path: list[BasicBlock], steps_per_iter: int, source: str):
        self.fn = fn
        self.function_name = function_name
        self.header = header
        self.path = path
        self.steps_per_iter = steps_per_iter
        self.source = source
        self.entries = 0
        self.saved = 0

    @property
    def key(self) -> tuple[str, str]:
        return (self.function_name, self.header.name)


class TraceCache:
    """The software trace cache: (function name, header name) -> trace,
    with an identity-checked dispatch index by header block."""

    def __init__(self):
        self._by_key: dict[tuple[str, str], CompiledTrace] = {}
        self._by_block: dict[int, CompiledTrace] = {}

    def __len__(self) -> int:
        return len(self._by_key)

    def traces(self) -> list[CompiledTrace]:
        return list(self._by_key.values())

    def install(self, trace: CompiledTrace) -> None:
        old = self._by_key.get(trace.key)
        if old is not None:
            self._by_block.pop(id(old.header), None)
        self._by_key[trace.key] = trace
        self._by_block[id(trace.header)] = trace

    def lookup(self, block: BasicBlock) -> Optional[CompiledTrace]:
        trace = self._by_block.get(id(block))
        if trace is not None and trace.header is block:
            return trace
        return None

    def remove(self, trace: CompiledTrace) -> None:
        if self._by_key.get(trace.key) is trace:
            del self._by_key[trace.key]
        self._by_block.pop(id(trace.header), None)

    def invalidate_function(self, function_name: str) -> int:
        """Drop every trace compiled over ``function_name``'s old IR."""
        dead = [k for k in self._by_key if k[0] == function_name]
        for key in dead:
            trace = self._by_key.pop(key)
            self._by_block.pop(id(trace.header), None)
        return len(dead)

    def invalidate_all(self) -> int:
        count = len(self._by_key)
        self._by_key.clear()
        self._by_block.clear()
        return count


class _Recording:
    __slots__ = ("frame", "anchor", "path")

    def __init__(self, frame, anchor: BasicBlock):
        self.frame = frame
        self.anchor = anchor
        self.path = [anchor]


class TraceManager:
    """Drives the record -> compile -> dispatch loop from the
    interpreter's block-entry events.

    One manager (and its cache) may outlive many :class:`Interpreter`
    instances over the same module — the compiled closures resolve
    memory, globals, and externals through the interpreter they are
    handed at each entry, which is what lets a
    :class:`~repro.driver.lifelong.LifelongSession` keep its trace
    cache warm across end-user runs.
    """

    name = "jit"

    #: After this many entries, a trace saving fewer than
    #: :attr:`min_saved_per_entry` interpreter steps per entry costs
    #: more in prologue/writeback than it saves — evict it.
    eviction_window = 32
    min_saved_per_entry = 24

    def __init__(self, hot_threshold: int = 50, max_blocks: int = 32,
                 max_aborts: int = 3,
                 cache: Optional[TraceCache] = None,
                 stats: Optional[TraceJITStats] = None):
        self.hot_threshold = hot_threshold
        self.max_blocks = max_blocks
        self.max_aborts = max_aborts
        self.cache = cache if cache is not None else TraceCache()
        self.stats = stats if stats is not None else TraceJITStats()
        self._counts: dict[int, int] = {}
        self._pins: dict[int, BasicBlock] = {}
        self._aborts: dict[int, int] = {}
        self._blacklist: set[int] = set()
        self._recording: Optional[_Recording] = None

    def attach(self, interpreter) -> None:
        """Hook this manager into one interpreter's block events."""
        self._recording = None
        interpreter.trace_manager = self

    def statistics(self) -> dict[str, int]:
        return self.stats.statistics()

    def invalidate_all(self) -> int:
        """Reoptimization rewrote the IR: every compiled closure and
        every hotness counter refers to dead blocks."""
        dropped = self.cache.invalidate_all()
        self._counts.clear()
        self._pins.clear()
        self._aborts.clear()
        self._blacklist.clear()
        self._recording = None
        self.stats.invalidations += dropped
        return dropped

    # -- the block-entry event --------------------------------------------

    def on_block(self, interpreter, frame, block: BasicBlock) -> None:
        recording = self._recording
        if recording is not None:
            if frame is recording.frame:
                if block is recording.anchor:
                    self._finish_recording(interpreter, frame)
                    return
                recording.path.append(block)
                if len(recording.path) > self.max_blocks:
                    self._abort_recording()
                return
            # The program left the recording frame (a call, a return, an
            # unwind): the cycle did not close.  Abort, then treat this
            # entry as an ordinary event for its own block.
            self._abort_recording()
        bid = id(block)
        trace = self.cache.lookup(block)
        if trace is not None:
            self._run_trace(interpreter, frame, trace)
            return
        count = self._counts.get(bid)
        if count is None:
            self._counts[bid] = 1
            self._pins[bid] = block
            return
        self._counts[bid] = count + 1
        if count + 1 >= self.hot_threshold and bid not in self._blacklist:
            self._recording = _Recording(frame, block)

    def _run_trace(self, interpreter, frame, trace: CompiledTrace) -> None:
        stats = self.stats
        stats.trace_entries += 1
        trace.entries += 1
        before = stats.steps_saved
        if not trace.fn(frame, interpreter, stats):
            stats.entry_fallbacks += 1
        trace.saved += stats.steps_saved - before
        if (trace.entries >= self.eviction_window
                and trace.saved
                < self.min_saved_per_entry * trace.entries):
            self.cache.remove(trace)
            self._blacklist.add(id(trace.header))
            stats.traces_evicted += 1

    # -- recording lifecycle ----------------------------------------------

    def _abort_recording(self) -> None:
        recording = self._recording
        self._recording = None
        self.stats.recordings_aborted += 1
        bid = id(recording.anchor)
        aborts = self._aborts.get(bid, 0) + 1
        self._aborts[bid] = aborts
        if aborts >= self.max_aborts:
            self._blacklist.add(bid)
        self._counts[bid] = 0  # must get hot again before the next try

    def _finish_recording(self, interpreter, frame) -> None:
        recording = self._recording
        self._recording = None
        try:
            trace = compile_trace(interpreter, frame.function, recording.path)
        except Untraceable:
            self.stats.recordings_aborted += 1
            self._blacklist.add(id(recording.anchor))  # deterministic: no retry
            return
        self.cache.install(trace)
        self.stats.traces_compiled += 1
        # Re-arm the hotness counters of every block the trace covers:
        # a rotation of the same cycle (or a hot side-exit target) must
        # earn another full threshold of *interpreted* entries — which
        # the new trace now absorbs — before anchoring its own trace.
        # Hot guard exits keep accumulating real entries, so trace
        # trees still grow along genuinely hot side exits.
        for block in trace.path:
            self._counts[id(block)] = 0
            self._pins.setdefault(id(block), block)
        # The frame sits at the freshly re-entered header: enter the
        # trace immediately.
        self._run_trace(interpreter, frame, trace)


# ===========================================================================
# The trace compiler
# ===========================================================================


def compile_trace(interpreter, function: Function,
                  path: list[BasicBlock]) -> CompiledTrace:
    """Compile one recorded cycle into a guarded Python closure."""
    compiler = _TraceCompiler(interpreter, function, path)
    return compiler.compile()


def _literal(value) -> str:
    text = repr(value)
    return f"({text})" if text.startswith("-") else text


class _TraceCompiler:
    def __init__(self, interpreter, function: Function,
                 path: list[BasicBlock]):
        self.interpreter = interpreter
        self.function = function
        self.path = path
        self.layout = function.parent.data_layout
        #: id(value) -> local variable name.
        self.names: dict[int, str] = {}
        #: ids read before being defined on the path (loaded from the
        #: frame in the prologue; a miss or type mismatch falls back).
        self.live_ins: dict[int, Value] = {}
        #: ids assigned on the path -> body position of the first
        #: definition (used to filter side-exit writebacks: a name
        #: first defined after the exit point is re-created by the
        #: interpreter before any use can see it).
        self.defined: dict[int, int] = {}
        #: id -> body position of the last on-trace read (side exits
        #: past it skip the writeback for block-local values).
        self.last_use: dict[int, int] = {}
        #: id -> all uses live in the defining block (see
        #: :meth:`_is_block_local`).
        self.block_local: dict[int, bool] = {}
        #: exec-globals for the closure: blocks, types, IR constants...
        self.env: dict[str, object] = {
            "_eb": constfold.eval_binary,
            "_ec": constfold.eval_cast,
        }
        self._env_ids: dict[int, str] = {}
        #: symbolic constants resolved per entry (globals, functions,
        #: constant expressions: their addresses are per-interpreter).
        self.sym_consts: dict[int, str] = {}
        #: direct external callees: var name -> external name.
        self.externals: dict[str, str] = {}
        self.body: list[object] = []  # str lines | ("WB", indent) markers
        self.steps_per_iter = 0
        self.uses_memory: set[str] = set()
        #: The inline load/store fast path binds ``_mem.allocations``.
        self.uses_allocs = False
        self.uses_indirect = False
        self.uses_alloca = False
        self.uses_call = False

    # -- naming -----------------------------------------------------------

    def _env_ref(self, prefix: str, obj) -> str:
        name = self._env_ids.get(id(obj))
        if name is None:
            name = f"_{prefix}{len(self._env_ids)}"
            self._env_ids[id(obj)] = name
            self.env[name] = obj
        return name

    def ref(self, value: Value) -> str:
        """Render a read of ``value`` at the current path position."""
        if isinstance(value, (Instruction, Argument)):
            vid = id(value)
            name = self.names.get(vid)
            if name is None:
                name = f"v{len(self.names)}"
                self.names[vid] = name
                self.live_ins[vid] = value
            self.last_use[vid] = len(self.body)
            return name
        return self.const_ref(value)

    def define(self, value: Value) -> str:
        vid = id(value)
        name = self.names.get(vid)
        if name is None:
            name = f"v{len(self.names)}"
            self.names[vid] = name
        if vid not in self.defined:
            self.defined[vid] = len(self.body)
            self.block_local[vid] = self._is_block_local(value)
        return name

    @staticmethod
    def _is_block_local(inst) -> bool:
        """True when every use of ``inst`` sits in its own block (a
        straight-line temporary).  Such a value can only be read again
        after its defining instruction re-executes, so a side exit past
        its last on-trace use need not write it back.  Phi users escape:
        they read the value at edge entry, before the block body."""
        block = getattr(inst, "parent", None)
        if block is None:
            return False
        for user in inst.users():
            if isinstance(user, PhiNode):
                return False
            if getattr(user, "parent", None) is not block:
                return False
        return True

    def const_ref(self, constant) -> str:
        if isinstance(constant, ConstantInt):
            return _literal(constant.value)
        if isinstance(constant, ConstantBool):
            return "True" if constant.value else "False"
        if isinstance(constant, ConstantFP):
            if math.isfinite(constant.value):
                return _literal(constant.value)
            return self._sym_const(constant)
        if isinstance(constant, ConstantPointerNull):
            return "0"
        if isinstance(constant, UndefValue):
            ty = constant.type
            if ty.is_floating:
                return "0.0"
            if ty.is_bool:
                return "False"
            return "0"
        if isinstance(constant, (Function, GlobalVariable, ConstantExpr)):
            return self._sym_const(constant)
        raise Untraceable(f"constant {constant!r}")

    def _sym_const(self, constant) -> str:
        entry = self.sym_consts.get(id(constant))
        if entry is None:
            name = f"g{len(self.sym_consts)}"
            self.sym_consts[id(constant)] = (name, constant)
            self.env[f"_K{name}"] = constant
            return name
        return entry[0]

    # -- compilation ------------------------------------------------------

    def compile(self) -> CompiledTrace:
        path = self.path
        for index, block in enumerate(path):
            previous = path[index - 1] if index else None
            if previous is not None:
                self._emit_phi_moves(previous, block)
            self._emit_block_body(block)
            successor = path[index + 1] if index + 1 < len(path) else path[0]
            self._emit_terminator(block, successor)
        # Close the cycle: the back edge re-enters the header's phis.
        self._emit_phi_moves(path[-1], path[0])
        total = self.steps_per_iter
        self.body.append(f"        steps += {total}")
        self.body.append("        iters += 1")
        source = self._render(total)
        env = dict(self.env)
        code = compile(source, f"<trace {self.function.name}:"
                               f"{path[0].name}>", "exec")
        exec(code, env)
        return CompiledTrace(env["__lc_trace"], self.function.name, path[0],
                             list(path), total, source)

    def _render(self, steps_per_iter: int) -> str:
        header = self.path[0]
        lines = ["def __lc_trace(frame, interp, stats):",
                 "    R = frame.registers"]
        live = [(vid, self.names[vid]) for vid in self.live_ins]
        # Global addresses are one dict lookup each; resolve them under
        # the same KeyError fallback as the live-in registers.  Other
        # symbolic constants (functions, constant expressions) go
        # through the interpreter's full resolver.
        global_loads = []
        slow_consts = []
        for name, constant in self.sym_consts.values():
            if isinstance(constant, GlobalVariable):
                global_loads.append(f"{name} = _GA[{id(constant)}]")
            else:
                slow_consts.append(name)
        if global_loads:
            lines.append("    _GA = interp.global_addresses")
        if live or global_loads:
            lines.append("    try:")
            for vid, name in live:
                lines.append(f"        {name} = R[{vid}]")
            for load in global_loads:
                lines.append(f"        {load}")
            lines.append("    except KeyError:")
            lines.append("        return False")
        guards = []
        for vid, value in self.live_ins.items():
            check = self._type_check(value.type, self.names[vid])
            if check is not None:
                guards.append(check)
        if guards:
            lines.append(f"    if {' or '.join(guards)}:")
            lines.append("        return False")
        for var, external_name in self.externals.items():
            lines.append(f"    {var} = interp.externals.get("
                         f"{external_name!r})")
            lines.append(f"    if {var} is None:")
            lines.append("        return False")
        for name in slow_consts:
            lines.append(f"    {name} = interp.constant_value(_K{name})")
        if self.uses_memory or self.uses_indirect:
            lines.append("    _mem = interp.memory")
        for method in sorted(self.uses_memory):
            lines.append(f"    _{method} = _mem.{method}")
        if self.uses_allocs:
            lines.append("    _allocs = _mem.allocations")
        if self.uses_indirect:
            lines.append("    _fnat = _mem.function_at")
            lines.append("    _X = interp.externals")
            lines.append("    _LL = interp.lazy_loader")
        if self.uses_alloca:
            lines.append("    _aap = frame.allocas.append")
        if self.uses_call:
            lines.append("    _VA = frame.va_area")
        lines.append("    steps = interp.steps")
        lines.append("    _s0 = steps")
        lines.append("    _limit = interp.step_limit")
        lines.append("    iters = 0")
        lines.append("    while True:")
        lines.append(f"        if steps + {steps_per_iter} > _limit:")
        budget = self._exit_lines(
            indent=12, block=header, index=self._first_non_phi(header),
            cum=0, counter="budget_exits", position=0)
        for entry in budget + self.body:
            if isinstance(entry, tuple):
                _, indent, position = entry
                pad = " " * indent
                lines.extend(pad + wb
                             for wb in self._writeback_lines(position))
            else:
                lines.append(entry)
        return "\n".join(lines) + "\n"

    def _type_check(self, ty, name: str) -> Optional[str]:
        if ty.is_bool:
            return f"type({name}) is not bool"
        if ty.is_integer or ty.is_pointer:
            return f"type({name}) is not int"
        if ty.is_floating:
            return f"type({name}) is not float"
        return None

    @staticmethod
    def _first_non_phi(block: BasicBlock) -> int:
        for index, inst in enumerate(block.instructions):
            if not isinstance(inst, PhiNode):
                return index
        return 0

    def _writeback_lines(self, position: int) -> list[str]:
        """Restore every register the trace may have redefined.

        A name that is live-in, or first defined before the exit point,
        was certainly assigned this pass and holds the correct current
        value.  A name first defined *after* the exit point holds its
        value from the previous iteration — which off-trace code may
        still read — but only exists once a full iteration has
        completed, so its writeback is gated on ``iters`` (which also
        keeps the first, partial pass from touching an unbound local).
        """
        always, gated = [], []
        for vid, first_def in self.defined.items():
            if vid not in self.live_ins and self.block_local.get(vid):
                # A straight-line temporary: off-trace code can only
                # read it after re-executing its def, except along the
                # window between its def and its last pending use.
                if first_def < position <= self.last_use.get(vid, -1):
                    always.append(f"R[{vid}] = {self.names[vid]}")
                continue
            if vid in self.live_ins or first_def < position:
                always.append(f"R[{vid}] = {self.names[vid]}")
            else:
                gated.append(f"    R[{vid}] = {self.names[vid]}")
        if gated:
            always.append("if iters:")
            always.extend(gated)
        return always

    def _exit_lines(self, indent: int, block: BasicBlock, index: int,
                    cum: int, counter: str, position: int) -> list[object]:
        """A side exit: sync steps, point the frame at the instruction
        to re-execute, write back registers, hand control back."""
        pad = " " * indent
        blk = self._env_ref("B", block)
        lines = [
            pad + f"interp.steps = steps + {cum}",
            pad + f"frame.block = {blk}",
            pad + f"frame.index = {index}",
            pad + f"stats.{counter} += 1",
            pad + "stats.trace_iterations += iters",
            pad + f"stats.steps_saved += steps + {cum} - _s0",
            ("WB", indent, position),
            pad + "return True",
        ]
        return lines

    def _guard(self, condition: str, block: BasicBlock, index: int) -> None:
        """Emit ``if condition: side-exit`` at body indent."""
        position = len(self.body)
        self.body.append(f"        if {condition}:")
        self.body.extend(self._exit_lines(
            indent=12, block=block, index=index, cum=self.steps_per_iter,
            counter="guard_exits", position=position))

    # -- per-block emission ------------------------------------------------

    def _emit_phi_moves(self, predecessor: BasicBlock,
                        block: BasicBlock) -> None:
        phis = []
        for inst in block.instructions:
            if not isinstance(inst, PhiNode):
                break
            incoming = inst.incoming_for_block(predecessor)
            if incoming is None:
                raise Untraceable(f"phi {inst.name!r} missing edge")
            phis.append((inst, incoming))
        if not phis:
            return
        # Phis read their incoming values simultaneously; a tuple
        # assignment packs all the reads before any write lands.
        sources = [self.ref(incoming) for _, incoming in phis]
        targets = [self.define(phi) for phi, _ in phis]
        self.body.append(f"        {', '.join(targets)} = "
                         f"{', '.join(sources)}")

    def _emit_block_body(self, block: BasicBlock) -> None:
        for index, inst in enumerate(block.instructions):
            if isinstance(inst, PhiNode):
                continue
            if inst is block.instructions[-1]:
                break  # terminator handled by _emit_terminator
            self._emit_instruction(block, index, inst)

    def _emit_terminator(self, block: BasicBlock,
                         successor: BasicBlock) -> None:
        term = block.instructions[-1]
        index = len(block.instructions) - 1
        if isinstance(term, BranchInst):
            if term.is_conditional:
                true_dest, false_dest = term.operands[1], term.operands[2]
                if true_dest is not false_dest:
                    condition = self.ref(term.condition)
                    if successor is true_dest:
                        self._guard(f"not {condition}", block, index)
                    elif successor is false_dest:
                        self._guard(condition, block, index)
                    else:
                        raise Untraceable("recorded successor is not a "
                                          "branch target")
                elif successor is not true_dest:
                    raise Untraceable("recorded successor is not a "
                                      "branch target")
            elif successor is not term.operands[0]:
                raise Untraceable("recorded successor is not a "
                                  "branch target")
        elif isinstance(term, SwitchInst):
            self._emit_switch_guard(term, block, index, successor)
        else:
            # return / invoke / unwind end the cycle some other way.
            raise Untraceable(f"terminator {type(term).__name__}")
        self.steps_per_iter += 1  # the taken terminator

    def _emit_switch_guard(self, term: SwitchInst, block: BasicBlock,
                           index: int, successor: BasicBlock) -> None:
        selector = self.ref(term.value)
        first_match: dict[object, BasicBlock] = {}
        for case_value, case_dest in term.cases:
            if not isinstance(case_value, (ConstantInt, ConstantBool)):
                raise Untraceable("non-literal switch case")
            first_match.setdefault(case_value.value, case_dest)
        to_successor = frozenset(
            v for v, d in first_match.items() if d is successor)
        elsewhere = frozenset(
            v for v, d in first_match.items() if d is not successor)
        if successor is term.default_dest:
            if elsewhere:
                guard_set = self._env_ref("S", elsewhere)
                self._guard(f"{selector} in {guard_set}", block, index)
        elif to_successor:
            guard_set = self._env_ref("S", to_successor)
            self._guard(f"{selector} not in {guard_set}", block, index)
        else:
            raise Untraceable("recorded successor is not a switch target")

    # -- per-instruction emission -----------------------------------------

    def _emit(self, line: str) -> None:
        self.body.append("        " + line)

    def _emit_instruction(self, block: BasicBlock, index: int,
                          inst: Instruction) -> None:
        if isinstance(inst, BinaryOperator):
            self._emit_binary(inst)
        elif isinstance(inst, LoadInst):
            self._emit_load(inst)
        elif isinstance(inst, StoreInst):
            self._emit_store(inst)
        elif isinstance(inst, GetElementPtrInst):
            self._emit_gep(block, index, inst)
        elif isinstance(inst, CastInst):
            self._emit_cast(inst)
        elif isinstance(inst, ShiftInst):
            self._emit_shift(inst)
        elif isinstance(inst, CallInst):
            self._emit_call(block, index, inst)
        elif isinstance(inst, (MallocInst, AllocaInst)):
            self.uses_memory.add("allocate")
            size = self.layout.size_of(inst.allocated_type)
            if inst.array_size is not None:
                count = self.ref(inst.array_size)
                expression = f"{size} * {count}"
            else:
                expression = str(size)
            kind = "heap" if isinstance(inst, MallocInst) else "stack"
            name = self.define(inst)
            self._emit(f"{name} = _allocate({expression}, {kind!r})")
            if kind == "stack":
                self.uses_alloca = True
                self._emit(f"_aap({name})")
        elif isinstance(inst, FreeInst):
            self.uses_memory.add("free")
            self._emit(f"_free({self.ref(inst.pointer)})")
        else:
            # invoke, unwind, vaarg, phi-out-of-position, return...
            raise Untraceable(f"instruction {type(inst).__name__}")
        self.steps_per_iter += 1

    def _mem_fmt(self, ty) -> Optional[str]:
        """struct format char for an inline memory access, or None."""
        if ty.is_bool:
            return None
        if ty.is_integer:
            return _INT_FMT.get((ty.bits, ty.signed))
        if ty.is_floating:
            return "f" if ty.bits == 32 else "d"
        if ty.is_pointer:
            return "Q" if self.layout.pointer_size == 8 else "I"
        return None

    def _struct_helper(self, kind: str, fmt: str) -> str:
        name = f"_{kind}_{fmt}"
        if name not in self.env:
            packed = struct.Struct("<" + fmt)
            self.env[name] = (packed.unpack_from if kind == "up"
                              else packed.pack_into)
        if kind == "pk":
            self.env["_SE"] = struct.error
        self.uses_allocs = True
        return name

    def _emit_load(self, inst: LoadInst) -> None:
        self.uses_memory.add("load")
        pointer = self.ref(inst.pointer)
        ty = self._env_ref("T", inst.type)
        dest = self.define(inst)
        fmt = self._mem_fmt(inst.type)
        if fmt is None:
            self._emit(f"{dest} = _load({pointer}, {ty})")
            return
        # Fast path: decode straight out of the allocation's bytearray.
        # Anything irregular — null, unmapped, a function address, an
        # out-of-bounds offset — delegates to Memory.load for the
        # interpreter's exact fault.  A "code" allocation holds one
        # byte, so the bounds check rejects it for multi-byte widths;
        # only single-byte loads test the kind explicitly.
        size = struct.calcsize("<" + fmt)
        unpack = self._struct_helper("up", fmt)
        kind = " _al.kind != 'code' and" if size == 1 else ""
        self._emit("try:")
        self._emit(f"    _al = _allocs[{pointer} >> {OFFSET_BITS}]")
        self._emit(f"    _o = {pointer} & {OFFSET_MASK}")
        self._emit(f"    if{kind} _o + {size} <= len(_d := _al.data):")
        self._emit(f"        {dest} = {unpack}(_d, _o)[0]")
        self._emit("    else:")
        self._emit(f"        {dest} = _load({pointer}, {ty})")
        self._emit("except KeyError:")
        self._emit(f"    {dest} = _load({pointer}, {ty})")

    def _emit_store(self, inst: StoreInst) -> None:
        self.uses_memory.add("store")
        value = self.ref(inst.value)
        pointer = self.ref(inst.pointer)
        value_type = inst.value.type
        ty = self._env_ref("T", value_type)
        fmt = self._mem_fmt(value_type)
        if fmt is None:
            self._emit(f"_store({pointer}, {ty}, {value})")
            return
        size = struct.calcsize("<" + fmt)
        pack = self._struct_helper("pk", fmt)
        if value_type.is_pointer:
            # Pointer arithmetic can carry past 2**64 (Memory.store
            # masks); mask here so pack_into never sees it.
            value = f"{value} & {(1 << (size * 8)) - 1}"
        kind = " _al.kind != 'code' and" if size == 1 else ""
        self._emit("try:")
        self._emit(f"    _al = _allocs[{pointer} >> {OFFSET_BITS}]")
        self._emit(f"    _o = {pointer} & {OFFSET_MASK}")
        self._emit(f"    if{kind} not _al.frozen "
                   f"and _o + {size} <= len(_d := _al.data):")
        self._emit(f"        {pack}(_d, _o, {value})")
        self._emit("    else:")
        self._emit(f"        _store({pointer}, {ty}, {value})")
        self._emit("except (KeyError, _SE):")
        self._emit(f"    _store({pointer}, {ty}, {value})")

    def _wrap_expr(self, ty, expression: str) -> str:
        mask = (1 << ty.bits) - 1
        if ty.signed:
            half = 1 << (ty.bits - 1)
            return f"((({expression}) + {half}) & {mask}) - {half}"
        return f"({expression}) & {mask}"

    def _delegate_binary(self, inst: BinaryOperator) -> None:
        opcode = self._env_ref("O", inst.opcode)
        ty = self._env_ref("T", inst.operands[0].type)
        lhs = self.ref(inst.operands[0])
        rhs = self.ref(inst.operands[1])
        self._emit(f"{self.define(inst)} = _eb({opcode}, {ty}, {lhs}, "
                   f"{rhs})")

    def _emit_binary(self, inst: BinaryOperator) -> None:
        opcode = inst.opcode
        ty = inst.operands[0].type
        if opcode in _CMP_OPS:
            lhs = self.ref(inst.operands[0])
            rhs = self.ref(inst.operands[1])
            self._emit(f"{self.define(inst)} = {lhs} "
                       f"{_CMP_OPS[opcode]} {rhs}")
            return
        if opcode in _ARITH_OPS:
            symbol = _ARITH_OPS[opcode]
            if ty.is_floating and ty.bits == 64:
                lhs = self.ref(inst.operands[0])
                rhs = self.ref(inst.operands[1])
                self._emit(f"{self.define(inst)} = {lhs} {symbol} {rhs}")
                return
            if ty.is_integer:
                lhs = self.ref(inst.operands[0])
                rhs = self.ref(inst.operands[1])
                expression = self._wrap_expr(ty, f"{lhs} {symbol} {rhs}")
                self._emit(f"{self.define(inst)} = {expression}")
                return
            self._delegate_binary(inst)  # float32 re-round, bool arith
            return
        if opcode in _BIT_OPS:
            symbol = _BIT_OPS[opcode]
            lhs = self.ref(inst.operands[0])
            rhs = self.ref(inst.operands[1])
            name = self.define(inst)
            if ty.is_bool:
                if opcode == Opcode.AND:
                    self._emit(f"{name} = {lhs} and {rhs}")
                elif opcode == Opcode.OR:
                    self._emit(f"{name} = {lhs} or {rhs}")
                else:
                    self._emit(f"{name} = {lhs} != {rhs}")
                return
            if ty.is_integer:
                if ty.signed:
                    mask = (1 << ty.bits) - 1
                    expression = self._wrap_expr(
                        ty, f"({lhs} & {mask}) {symbol} ({rhs} & {mask})")
                else:
                    expression = f"{lhs} {symbol} {rhs}"
                self._emit(f"{self.define(inst)} = {expression}")
                return
            self._delegate_binary(inst)
            return
        # div/rem: trap on zero, C truncation, float corner cases — the
        # constant folder is the single source of truth.
        self._delegate_binary(inst)

    def _emit_shift(self, inst: ShiftInst) -> None:
        ty = inst.type
        if not ty.is_integer:
            raise Untraceable("shift on non-integer")
        value = self.ref(inst.value)
        amount = self.ref(inst.amount)
        name = self.define(inst)
        bits = ty.bits
        if inst.opcode == Opcode.SHL:
            shifted = self._wrap_expr(ty, f"{value} << {amount}")
            self._emit(f"{name} = ({shifted}) if {amount} < {bits} else 0")
        elif ty.signed:
            self._emit(f"{name} = ({value} >> {amount}) if {amount} < "
                       f"{bits} else (-1 if {value} < 0 else 0)")
        else:
            self._emit(f"{name} = ({value} >> {amount}) if {amount} < "
                       f"{bits} else 0")

    def _emit_cast(self, inst: CastInst) -> None:
        source_ty = inst.value.type
        dest_ty = inst.type
        value = self.ref(inst.value)
        name = self.define(inst)
        if source_ty is dest_ty:
            self._emit(f"{name} = {value}")
        elif dest_ty.is_bool:
            zero = "0.0" if source_ty.is_floating else "0"
            self._emit(f"{name} = {value} != {zero}")
        elif dest_ty.is_integer:
            if source_ty.is_bool:
                self._emit(f"{name} = 1 if {value} else 0")
            elif source_ty.is_integer or source_ty.is_pointer:
                self._emit(f"{name} = {self._wrap_expr(dest_ty, value)}")
            else:  # float -> int: nan/inf corner cases
                self._delegate_cast(inst, value, name)
        elif dest_ty.is_floating and dest_ty.bits == 64:
            if source_ty.is_bool:
                self._emit(f"{name} = 1.0 if {value} else 0.0")
            elif source_ty.is_integer:
                self._emit(f"{name} = float({value})")
            elif source_ty.is_floating:
                self._emit(f"{name} = {value}")
            else:
                raise Untraceable("pointer-to-float cast")
        elif dest_ty.is_pointer:
            if source_ty.is_pointer:
                self._emit(f"{name} = {value}")
            elif source_ty.is_bool:
                self._emit(f"{name} = 1 if {value} else 0")
            elif source_ty.is_integer:
                self._emit(f"{name} = {value} & {(1 << 64) - 1}")
            else:
                raise Untraceable("float-to-pointer cast")
        else:  # float32 destination: re-round through single precision
            self._delegate_cast(inst, value, name)

    def _delegate_cast(self, inst: CastInst, value: str, name: str) -> None:
        source = self._env_ref("T", inst.value.type)
        dest = self._env_ref("T", inst.type)
        self._emit(f"{name} = _ec({source}, {dest}, {value})")

    def _emit_gep(self, block: BasicBlock, index: int,
                  inst: GetElementPtrInst) -> None:
        base = self.ref(inst.pointer)
        # The interpreter traps on a null base before computing the
        # offset; keep that by side-exiting to re-execute the gep.
        self._guard(f"not {base}", block, index)
        terms: list[str] = []
        constant_offset = 0
        current = inst.pointer.type.pointee
        for position, operand in enumerate(inst.indices):
            if position == 0:
                scale = self.layout.size_of(current)
            elif current.is_struct:
                if not isinstance(operand, ConstantInt):
                    raise Untraceable("dynamic struct index")
                constant_offset += self.layout.field_offset(
                    current, operand.value)
                current = current.fields[operand.value]
                continue
            else:
                scale = self.layout.size_of(current.element)
                current = current.element
            if isinstance(operand, ConstantInt):
                constant_offset += operand.value * scale
            elif isinstance(operand, (Instruction, Argument)):
                index_value = self.ref(operand)
                terms.append(f"{index_value} * {scale}"
                             if scale != 1 else index_value)
            else:
                raise Untraceable("exotic gep index")
        expression = base
        if constant_offset:
            expression += f" + {_literal(constant_offset)}"
        for term in terms:
            expression += f" + {term}"
        self._emit(f"{self.define(inst)} = {expression}")

    def _emit_call(self, block: BasicBlock, index: int,
                   inst: CallInst) -> None:
        callee = inst.operands[0]
        arguments = [self.ref(argument) for argument in inst.operands[1:]]
        argument_list = ", ".join(arguments)
        self.uses_call = True
        # The call instruction itself is counted before the external
        # body runs, exactly like the interpreter's step accounting.
        cum = self.steps_per_iter + 1
        if isinstance(callee, Function):
            lazy = self.interpreter.lazy_loader
            if callee.is_declaration and lazy is not None:
                lazy(callee)
            if not callee.is_declaration:
                raise Untraceable("call into compiled IR")
            var = f"_x{len(self.externals)}"
            existing = [v for v, n in self.externals.items()
                        if n == callee.name]
            var = existing[0] if existing else var
            self.externals[var] = callee.name
            self._emit("interp.current_va_area = _VA")
            self._emit(f"interp.steps = steps + {cum}")
            target = var
        else:
            # Indirect call: guard that the pointer still resolves to a
            # runtime-library function; anything else side-exits to the
            # interpreter (which knows how to push a frame or trap).
            self.uses_indirect = True
            pointer = self.ref(callee)
            self._emit(f"_cf = _fnat({pointer})")
            self._emit("if _LL is not None and _cf.is_declaration:")
            self._emit("    _LL(_cf)")
            self._guard("not _cf.is_declaration", block, index)
            self._emit("_ci = _X.get(_cf.name)")
            self._guard("_ci is None", block, index)
            self._emit("interp.current_va_area = _VA")
            self._emit(f"interp.steps = steps + {cum}")
            target = "_ci"
        if inst.type.is_void:
            self._emit(f"{target}(interp, [{argument_list}])")
        else:
            self._emit(f"{self.define(inst)} = {target}(interp, "
                       f"[{argument_list}])")
