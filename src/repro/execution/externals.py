"""The runtime library: external functions available to interpreted code.

The paper keeps language-specific runtime details out of the
representation and in a runtime library; this module is that library
for the execution engine.  It covers basic C I/O (``printf``-family),
string/memory helpers, varargs support, a deterministic ``clock`` (the
interpreter's step counter), and the minimal exception-object runtime
that the C++-style lowering of paper Figure 3 calls into.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..core import types
from .memory import MemoryFault

if TYPE_CHECKING:  # pragma: no cover
    from .interpreter import Interpreter


def default_externals() -> dict[str, Callable]:
    return {
        # -- output --------------------------------------------------------
        "printf": _printf,
        "puts": _puts,
        "putchar": _putchar,
        "print_int": _print_int,
        "print_long": _print_int,
        "print_char": _print_char,
        "print_double": _print_double,
        "print_str": _print_str,
        # -- process -------------------------------------------------------
        "exit": _exit,
        "abort": _abort,
        "clock": _clock,
        # -- strings and memory ----------------------------------------------
        "strlen": _strlen,
        "strcmp": _strcmp,
        "strcpy": _strcpy,
        "memcpy": _memcpy,
        "memset": _memset,
        # -- varargs -----------------------------------------------------------
        "llvm.va_start": _va_start,
        "llvm.va_end": _va_end,
        # -- the C++-EH-style runtime of paper Figure 3 -------------------------
        "llvm_cxxeh_alloc_exc": _eh_alloc,
        "llvm_cxxeh_throw": _eh_throw,
        "llvm_cxxeh_get_exc": _eh_get,
        "llvm_cxxeh_current_typeid": _eh_typeid,
        "llvm_cxxeh_free_exc": _eh_free,
        # -- setjmp/longjmp on the same unwinding mechanism ----------------------
        "__lc_longjmp": _longjmp_register,
        "__lc_longjmp_catch": _longjmp_catch,
        # -- SAFECode bounds-check runtime ----------------------------------------
        "__rt_bounds_fail": _bounds_fail,
    }


# ---------------------------------------------------------------------------
# Output
# ---------------------------------------------------------------------------

def _emit(interp: "Interpreter", text: str) -> None:
    interp.output.append(text)


def _format_printf(interp: "Interpreter", fmt: bytes, args: list) -> str:
    result = []
    index = 0
    arg_cursor = 0
    while index < len(fmt):
        char = fmt[index:index + 1]
        if char != b"%":
            result.append(char.decode("latin-1"))
            index += 1
            continue
        index += 1
        # Skip width/flags; honour 'l' length modifiers transparently.
        spec_start = index
        while index < len(fmt) and fmt[index:index + 1] in b"-+ 0123456789.l":
            index += 1
        spec = fmt[spec_start:index].decode("latin-1")
        conv = fmt[index:index + 1].decode("latin-1")
        index += 1
        if conv == "%":
            result.append("%")
            continue
        arg = args[arg_cursor]
        arg_cursor += 1
        width_spec = spec.replace("l", "")
        if conv in "du":
            result.append(("%" + width_spec + "d") % int(arg))
        elif conv == "x":
            result.append(("%" + width_spec + "x") % (int(arg) & 0xFFFFFFFFFFFFFFFF))
        elif conv in "fge":
            result.append(("%" + width_spec + conv) % float(arg))
        elif conv == "c":
            result.append(chr(int(arg) & 0xFF))
        elif conv == "s":
            result.append(interp.memory.read_cstring(int(arg)).decode("latin-1"))
        elif conv == "p":
            result.append(hex(int(arg)))
        else:
            raise MemoryFault(f"printf: unsupported conversion %{conv}")
    return "".join(result)


def _printf(interp: "Interpreter", args: list) -> int:
    fmt = interp.memory.read_cstring(args[0])
    text = _format_printf(interp, fmt, args[1:])
    _emit(interp, text)
    return len(text)


def _puts(interp: "Interpreter", args: list) -> int:
    text = interp.memory.read_cstring(args[0]).decode("latin-1")
    _emit(interp, text + "\n")
    return len(text) + 1


def _putchar(interp: "Interpreter", args: list) -> int:
    _emit(interp, chr(args[0] & 0xFF))
    return args[0]


def _print_int(interp: "Interpreter", args: list) -> int:
    _emit(interp, f"{args[0]}\n")
    return 0


def _print_char(interp: "Interpreter", args: list) -> int:
    _emit(interp, chr(args[0] & 0xFF))
    return 0


def _print_double(interp: "Interpreter", args: list) -> int:
    _emit(interp, f"{float(args[0]):.6f}\n")
    return 0


def _print_str(interp: "Interpreter", args: list) -> int:
    _emit(interp, interp.memory.read_cstring(args[0]).decode("latin-1") + "\n")
    return 0


# ---------------------------------------------------------------------------
# Process control
# ---------------------------------------------------------------------------

def _exit(interp: "Interpreter", args: list):
    from .interpreter import ExitCalled

    raise ExitCalled(args[0] if args else 0)


def _abort(interp: "Interpreter", args: list):
    from .interpreter import ExecutionError

    raise ExecutionError("abort() called")


def _clock(interp: "Interpreter", args: list) -> int:
    """Deterministic 'time': the interpreter's step counter."""
    return interp.steps


# ---------------------------------------------------------------------------
# Strings and memory
# ---------------------------------------------------------------------------

def _strlen(interp: "Interpreter", args: list) -> int:
    return len(interp.memory.read_cstring(args[0]))


def _strcmp(interp: "Interpreter", args: list) -> int:
    a = interp.memory.read_cstring(args[0])
    b = interp.memory.read_cstring(args[1])
    return (a > b) - (a < b)


def _strcpy(interp: "Interpreter", args: list) -> int:
    data = interp.memory.read_cstring(args[1])
    interp.memory.write_bytes(args[0], data + b"\0")
    return args[0]


def _memcpy(interp: "Interpreter", args: list) -> int:
    dest, src, count = args[0], args[1], args[2]
    interp.memory.write_bytes(dest, interp.memory.read_bytes(src, count))
    return dest


def _memset(interp: "Interpreter", args: list) -> int:
    dest, byte, count = args[0], args[1], args[2]
    interp.memory.write_bytes(dest, bytes([byte & 0xFF]) * count)
    return dest


# ---------------------------------------------------------------------------
# Varargs
# ---------------------------------------------------------------------------

def _va_start(interp: "Interpreter", args: list) -> None:
    """Write the current frame's vararg area into the va_list slot.

    The frame is found by walking the interpreter's conventions: the
    caller stored its va_area when the frame was created.
    """
    # The topmost frame executing is the vararg function itself; the
    # interpreter exposes it via the pending-call chain.  We reach it
    # through the memory of the slot instead: the external runs in the
    # context of the active frame, whose va_area the interpreter stashed
    # in `current_va_area`.
    interp.memory.store(args[0], types.pointer(types.SBYTE), interp.current_va_area)


def _va_end(interp: "Interpreter", args: list) -> None:
    return None


# ---------------------------------------------------------------------------
# Exception-object runtime (paper Figure 3)
# ---------------------------------------------------------------------------
#
# The runtime "manipulates the thread-local state of the exception
# handling runtime, but doesn't actually unwind the stack.  Because the
# calling code performs the stack unwind, the optimizer has a better
# view of the control flow of the function".

def _eh_alloc(interp: "Interpreter", args: list) -> int:
    size = args[0]
    return interp.memory.allocate(max(size, 1), kind="heap")


def _eh_throw(interp: "Interpreter", args: list) -> None:
    # args: exception object, typeid, destructor (ignored here).
    interp.eh_state = {"object": args[0], "typeid": args[1]}


def _eh_get(interp: "Interpreter", args: list) -> int:
    state = getattr(interp, "eh_state", None)
    return state["object"] if state else 0


def _eh_typeid(interp: "Interpreter", args: list) -> int:
    state = getattr(interp, "eh_state", None)
    return state["typeid"] if state else 0


def _eh_free(interp: "Interpreter", args: list) -> None:
    state = getattr(interp, "eh_state", None)
    if state and state["object"]:
        interp.memory.free(state["object"])
    interp.eh_state = None


# ---------------------------------------------------------------------------
# setjmp/longjmp runtime (paper section 2.4: "the same mechanism also
# supports setjmp and longjmp")
# ---------------------------------------------------------------------------

def _longjmp_register(interp: "Interpreter", args: list) -> None:
    """Record the in-flight longjmp; the IR performs the unwind."""
    interp.longjmp_state = {"id": args[0], "value": args[1]}


def _longjmp_catch(interp: "Interpreter", args: list) -> int:
    """Claim the longjmp if it targets this buffer; -1 otherwise."""
    state = getattr(interp, "longjmp_state", None)
    if state is not None and state["id"] == args[0]:
        interp.longjmp_state = None
        return state["value"]
    return -1


def _bounds_fail(interp: "Interpreter", args: list):
    """SAFECode's trap: a bounds violation is a loud, defined fault."""
    from .interpreter import ExecutionError

    raise ExecutionError(
        f"array index {args[0]} out of bounds (size {args[1]})"
    )
