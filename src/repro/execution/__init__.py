"""The Execution Engine: interpreter, flat memory model, and the runtime
library of external functions (paper section 3.4)."""

from .interpreter import (
    ExecutionError, ExitCalled, Interpreter, StepLimitExceeded,
    UndefinedFunction, UnhandledUnwind,
)
from .jit import JITEngine
from .memory import Memory, MemoryFault
from .tracejit import (
    CompiledTrace, TraceCache, TraceJITStats, TraceManager, Untraceable,
)

__all__ = [
    "ExecutionError", "ExitCalled", "Interpreter", "JITEngine",
    "StepLimitExceeded", "UndefinedFunction", "UnhandledUnwind",
    "Memory", "MemoryFault",
    "CompiledTrace", "TraceCache", "TraceJITStats", "TraceManager",
    "Untraceable",
]
