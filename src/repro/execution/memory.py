"""The execution engine's memory: a flat, byte-addressed address space.

Pointers at runtime are plain integers, so every pointer trick the
representation permits — casting to ``long`` and back, ``char*``
arithmetic through custom allocators, storing pointers in integer
fields — behaves like it would on a real machine.  Addresses encode an
allocation id in the high bits and a byte offset in the low bits;
arithmetic within an allocation stays inside the low bits, and any
access outside an allocation's bounds faults (like a segfault, but
deterministic and catchable by tests).
"""

from __future__ import annotations

import struct as _struct
from typing import Optional

from ..core import types
from ..core.datalayout import DataLayout
from ..core.types import Type

#: Bits reserved for the byte offset within one allocation (1 GiB max).
OFFSET_BITS = 30
OFFSET_MASK = (1 << OFFSET_BITS) - 1


class MemoryFault(Exception):
    """An out-of-bounds, unmapped, or misused memory access."""


class Allocation:
    __slots__ = ("data", "frozen", "kind")

    def __init__(self, size: int, kind: str):
        self.data = bytearray(size)
        self.frozen = False  # constants become read-only after init
        self.kind = kind     # 'global' | 'heap' | 'stack' | 'code'


class Memory:
    """The address space: allocations, loads/stores, function addresses."""

    def __init__(self, data_layout: DataLayout):
        self.layout = data_layout
        self.allocations: dict[int, Allocation] = {}
        self._next_id = 1  # id 0 => the null "allocation"
        #: function address -> Function (code is not byte-addressable).
        self.functions_by_address: dict[int, object] = {}
        self._function_addresses: dict[str, int] = {}

    # -- allocation -----------------------------------------------------------

    def allocate(self, size: int, kind: str = "heap") -> int:
        if size < 0 or size > OFFSET_MASK:
            raise MemoryFault(f"allocation of {size} bytes is out of range")
        alloc_id = self._next_id
        self._next_id += 1
        self.allocations[alloc_id] = Allocation(max(size, 1), kind)
        return alloc_id << OFFSET_BITS

    def free(self, address: int) -> None:
        alloc_id, offset = self._split(address)
        allocation = self.allocations.get(alloc_id)
        if allocation is None:
            raise MemoryFault(f"free of unmapped address {address:#x}")
        if offset != 0:
            raise MemoryFault("free of an interior pointer")
        if allocation.kind != "heap":
            raise MemoryFault(f"free of non-heap memory ({allocation.kind})")
        del self.allocations[alloc_id]

    def release(self, address: int) -> None:
        """Free a stack allocation on function return."""
        alloc_id = address >> OFFSET_BITS
        self.allocations.pop(alloc_id, None)

    def function_address(self, function) -> int:
        """A stable, fake "code address" for a function value."""
        address = self._function_addresses.get(function.name)
        if address is None:
            address = self.allocate(1, kind="code")
            self._function_addresses[function.name] = address
            self.functions_by_address[address] = function
        return address

    def function_at(self, address: int):
        function = self.functions_by_address.get(address)
        if function is None:
            raise MemoryFault(f"call through bad function pointer {address:#x}")
        return function

    # -- access ------------------------------------------------------------------

    def _split(self, address: int) -> tuple[int, int]:
        return address >> OFFSET_BITS, address & OFFSET_MASK

    def _chunk(self, address: int, size: int, writing: bool) -> tuple[Allocation, int]:
        if address == 0:
            raise MemoryFault("null pointer dereference")
        alloc_id, offset = self._split(address)
        allocation = self.allocations.get(alloc_id)
        if allocation is None:
            raise MemoryFault(f"access to unmapped address {address:#x}")
        if allocation.kind == "code":
            raise MemoryFault("data access to a function address")
        if writing and allocation.frozen:
            raise MemoryFault("write to constant memory")
        if offset + size > len(allocation.data):
            raise MemoryFault(
                f"access of {size} bytes at offset {offset} overruns "
                f"{len(allocation.data)}-byte allocation"
            )
        return allocation, offset

    def read_bytes(self, address: int, size: int) -> bytes:
        allocation, offset = self._chunk(address, size, writing=False)
        return bytes(allocation.data[offset:offset + size])

    def write_bytes(self, address: int, data: bytes) -> None:
        allocation, offset = self._chunk(address, len(data), writing=True)
        allocation.data[offset:offset + len(data)] = data

    def read_cstring(self, address: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string (for printf-style externals)."""
        result = bytearray()
        while len(result) < limit:
            byte = self.read_bytes(address + len(result), 1)[0]
            if byte == 0:
                return bytes(result)
            result.append(byte)
        raise MemoryFault("unterminated string")

    # -- typed access ----------------------------------------------------------------

    def load(self, address: int, ty: Type):
        if ty.is_bool:
            return self.read_bytes(address, 1)[0] != 0
        if ty.is_integer:
            size = ty.bits // 8  # type: ignore[attr-defined]
            raw = int.from_bytes(self.read_bytes(address, size), "little")
            return ty.wrap(raw)  # type: ignore[attr-defined]
        if ty.is_floating:
            if ty.bits == 32:  # type: ignore[attr-defined]
                return _struct.unpack("<f", self.read_bytes(address, 4))[0]
            return _struct.unpack("<d", self.read_bytes(address, 8))[0]
        if ty.is_pointer:
            return int.from_bytes(self.read_bytes(address, self.layout.pointer_size),
                                  "little")
        raise MemoryFault(f"cannot load a value of type {ty}")

    def store(self, address: int, ty: Type, value) -> None:
        if ty.is_bool:
            self.write_bytes(address, bytes([1 if value else 0]))
            return
        if ty.is_integer:
            size = ty.bits // 8  # type: ignore[attr-defined]
            raw = value & ((1 << (size * 8)) - 1)
            self.write_bytes(address, raw.to_bytes(size, "little"))
            return
        if ty.is_floating:
            if ty.bits == 32:  # type: ignore[attr-defined]
                self.write_bytes(address, _struct.pack("<f", value))
            else:
                self.write_bytes(address, _struct.pack("<d", value))
            return
        if ty.is_pointer:
            size = self.layout.pointer_size
            self.write_bytes(address, (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little"))
            return
        raise MemoryFault(f"cannot store a value of type {ty}")

    # -- statistics ------------------------------------------------------------------

    def live_allocations(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.allocations)
        return sum(1 for a in self.allocations.values() if a.kind == kind)

    def heap_bytes(self) -> int:
        return sum(len(a.data) for a in self.allocations.values() if a.kind == "heap")
