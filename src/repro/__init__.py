"""repro — a Python reproduction of LLVM (Lattner & Adve, CGO 2004).

A compilation framework for lifelong program analysis and transformation:
a typed, SSA-based virtual instruction set with textual, binary, and
in-memory representations; link-time interprocedural optimization; an
execution engine; native code generators; and runtime profiling with
offline reoptimization.

Quick start::

    from repro import core
    from repro.core import IRBuilder, Module, types

    module = Module("demo")
    fn = module.new_function(types.function(types.INT, [types.INT]), "double")
    builder = IRBuilder(fn.append_block("entry"))
    builder.ret(builder.add(fn.args[0], fn.args[0]))
    print(core.print_module(module))
"""

from . import core

__version__ = "1.0.0"
__all__ = ["core", "__version__"]
