"""Control-flow graph utilities.

The CFG is explicit in the representation (each terminator names its
successors), so these helpers only provide traversal orders, reachable
sets, and edge queries on top of the block structure.
"""

from __future__ import annotations

from typing import Iterator

from ..core.basicblock import BasicBlock
from ..core.module import Function


def successors(block: BasicBlock) -> list[BasicBlock]:
    return block.successors()


def predecessors(block: BasicBlock) -> list[BasicBlock]:
    return block.unique_predecessors()


def reachable_blocks(function: Function) -> list[BasicBlock]:
    """Blocks reachable from the entry, in depth-first preorder."""
    if function.is_declaration:
        return []
    seen: set[int] = set()
    order: list[BasicBlock] = []
    stack = [function.entry_block]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        order.append(block)
        stack.extend(reversed(block.successors()))
    return order


def unreachable_blocks(function: Function) -> list[BasicBlock]:
    reachable = {id(b) for b in reachable_blocks(function)}
    return [b for b in function.blocks if id(b) not in reachable]


def postorder(function: Function) -> list[BasicBlock]:
    """Reachable blocks in depth-first postorder."""
    result: list[BasicBlock] = []
    seen: set[int] = set()

    entry = function.entry_block
    # Iterative DFS with explicit successor cursors (no recursion limit).
    stack: list[tuple[BasicBlock, Iterator[BasicBlock]]] = []
    seen.add(id(entry))
    stack.append((entry, iter(entry.successors())))
    while stack:
        block, succ_iter = stack[-1]
        advanced = False
        for succ in succ_iter:
            if id(succ) not in seen:
                seen.add(id(succ))
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            result.append(block)
            stack.pop()
    return result


def reverse_postorder(function: Function) -> list[BasicBlock]:
    """Reachable blocks in reverse postorder (a topological-ish order)."""
    order = postorder(function)
    order.reverse()
    return order


def edges(function: Function) -> list[tuple[BasicBlock, BasicBlock]]:
    """All CFG edges among reachable blocks (duplicates preserved)."""
    result = []
    for block in reachable_blocks(function):
        for succ in block.successors():
            result.append((block, succ))
    return result


def is_critical_edge(src: BasicBlock, dst: BasicBlock) -> bool:
    """An edge from a multi-successor block to a multi-predecessor block."""
    return len(src.successors()) > 1 and len(dst.unique_predecessors()) > 1


def split_critical_edge(src: BasicBlock, dst: BasicBlock) -> BasicBlock:
    """Insert a forwarding block on the (src, dst) edge.

    Needed before transformations (e.g. phi elimination in the backend)
    that must place code "on an edge".
    """
    from ..core.instructions import BranchInst

    function = src.parent
    middle = BasicBlock(f"{src.name}.{dst.name}.crit", parent=None)
    position = function.blocks.index(src) + 1
    function.blocks.insert(position, middle)
    middle.parent = function
    middle.append(BranchInst(dst))

    term = src.terminator
    for index, operand in enumerate(term.operands):
        if operand is dst:
            term.set_operand(index, middle)
            break  # split a single edge occurrence
    for phi in dst.phis():
        phi.replace_incoming_block(src, middle)
    return middle
