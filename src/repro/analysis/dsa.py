"""Data Structure Analysis (DSA): unification-based, field-sensitive
points-to analysis with speculative type checking (paper section 4.1.1).

DSA "uses declared types in the LLVM code as speculative type
information, and checks conservatively whether memory accesses to an
object are consistent with those declared types (note that it does not
perform any type-inference or enforce type safety)".  This module
reproduces that: every abstract memory object (node) carries the
declared type of its allocation; every access is checked against the
type at the accessed offset; any inconsistency — a mistyped access, a
misaligned unification, exposure to an unknown external — *collapses*
the node, discarding its field structure.

The headline metric (paper Table 1) is :class:`TypedAccessReport`: the
fraction of static loads and stores whose target object's type is
reliably known.

Faithfulness note: the paper's DSA is context-sensitive (bottom-up
inlining of callee graphs).  This implementation unifies across call
edges instead (field-sensitive Steensgaard-style interprocedural
unification).  Context sensitivity changes *which* objects merge, but
the typed-access verdict is dominated by field sensitivity and the
collapse rules, which are reproduced; DESIGN.md records the
substitution.
"""

from __future__ import annotations

from typing import Optional

from ..core import types
from ..core.datalayout import DataLayout
from ..core.instructions import (
    AllocationInst, CallInst, CastInst, GetElementPtrInst, Instruction,
    InvokeInst, LoadInst, Opcode, PhiNode, StoreInst, VAArgInst,
)
from ..core.module import Function, GlobalVariable, Module
from ..core.values import (
    Argument, Constant, ConstantExpr, ConstantInt, ConstantPointerNull,
    UndefValue, Value,
)

#: Externals that neither capture nor mutate the pointers given to them
#: beyond their advertised contract (the execution engine's runtime).
KNOWN_SAFE_EXTERNALS = frozenset({
    "printf", "puts", "putchar", "print_int", "print_long", "print_char",
    "print_double", "print_str", "exit", "abort", "clock", "strlen",
    "strcmp", "strcpy", "memcpy", "memset", "__profile_count",
    "llvm.va_start", "llvm.va_end", "__lc_longjmp", "__lc_longjmp_catch",
})


class DSNode:
    """An abstract memory object (union-find element)."""

    _next_id = 0

    __slots__ = ("node_id", "ty", "edges", "collapsed", "unknown",
                 "flags", "_parent", "_parent_delta")

    def __init__(self, ty: Optional[types.Type] = None):
        self.node_id = DSNode._next_id
        DSNode._next_id += 1
        #: Speculative declared type of the object (None = no evidence
        #: yet).  Arrays are *folded*: a node for ``[N x T]`` carries
        #: ``T`` — DSA represents every element of an array by one cell.
        self.ty = _fold_arrays(ty)
        #: Outgoing points-to edges: byte offset -> Cell.
        self.edges: dict[int, "Cell"] = {}
        #: Field structure lost: type information is unreliable.
        self.collapsed = False
        #: Reached from outside the analysed program (externals, int casts).
        self.unknown = False
        #: 'H'eap, 'S'tack, 'G'lobal, 'F'unction markers.
        self.flags: set[str] = set()
        self._parent: Optional[DSNode] = None
        #: Byte offset of this node's base within its parent (DSA's
        #: forwarding cells: an empty node may merge *into a field* of
        #: another node, shifting all its cells by this delta).
        self._parent_delta = 0

    def find(self) -> "DSNode":
        return self.find_with_delta()[0]

    def find_with_delta(self) -> tuple["DSNode", int]:
        node = self
        delta = 0
        while node._parent is not None:
            delta += node._parent_delta
            node = node._parent
        # Path compression (rebasing deltas onto the root).
        current = self
        remaining = delta
        while current._parent is not None:
            step = current._parent_delta
            next_node = current._parent
            current._parent = node
            current._parent_delta = remaining
            remaining -= step
            current = next_node
        return node, delta

    @property
    def is_empty(self) -> bool:
        """No evidence attached yet: safe to forward anywhere."""
        return (self.ty is None and not self.edges and not self.collapsed
                and not self.unknown and not self.flags)


def _fold_arrays(ty: Optional[types.Type]) -> Optional[types.Type]:
    while ty is not None and ty.is_array:
        ty = ty.element  # type: ignore[attr-defined]
    return ty


class Cell:
    """A field of a node: (node, byte offset)."""

    __slots__ = ("node", "offset")

    def __init__(self, node: DSNode, offset: int = 0):
        self.node = node
        self.offset = offset

    def resolved(self) -> "Cell":
        node, delta = self.node.find_with_delta()
        if node.collapsed:
            return Cell(node, 0)
        return Cell(node, self.offset + delta)


class TypedAccessReport:
    """The Table 1 statistic for one module."""

    def __init__(self):
        self.typed = 0
        self.untyped = 0

    @property
    def total(self) -> int:
        return self.typed + self.untyped

    @property
    def typed_percent(self) -> float:
        if not self.total:
            return 100.0
        return 100.0 * self.typed / self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TypedAccessReport {self.typed}/{self.total} "
                f"({self.typed_percent:.1f}%)>")


class DataStructureAnalysis:
    """Builds and solves the points-to graph for a module."""

    def __init__(self, module: Module):
        self.module = module
        self.layout = module.data_layout
        self.cells: dict[int, Cell] = {}
        #: Return-value cell per function (pointer-returning only).
        self.return_cells: dict[str, Cell] = {}
        #: (pointer value, access type) pairs, type-checked after the
        #: whole graph is built (checking mid-build would judge nodes
        #: before forward references unify into them).
        self._accesses: list[tuple[Value, types.Type]] = []
        #: (cell, stepped element type) pairs from pointer-stepping GEPs
        #: (first index non-zero/variable): the stride must match the
        #: node's element type or the node collapses.
        self._strides: list[tuple[Cell, types.Type]] = []
        self._build()
        for cell, stepped in self._strides:
            node = cell.resolved().node
            if node.collapsed:
                continue
            if node.ty is not None and _fold_arrays(stepped) is not node.ty:
                self._collapse_node(node)
        for pointer, access_type in self._accesses:
            self._note_access(self._cell_of(pointer), access_type)

    # ==================================================================
    # Graph construction
    # ==================================================================

    def _build(self) -> None:
        for global_var in self.module.globals.values():
            node = DSNode(global_var.value_type)
            node.flags.add("G")
            if global_var.is_declaration or not global_var.is_internal:
                node.unknown = True  # other modules may retype it
            self.cells[id(global_var)] = Cell(node)
        for function in self.module.functions.values():
            node = DSNode()
            node.flags.add("F")
            self.cells[id(function)] = Cell(node)
        # Formal-argument cells first: call-site unification in any
        # function body may reference any callee's formals.
        for function in self.module.defined_functions():
            for arg in function.args:
                if arg.type.is_pointer:
                    node = DSNode(arg.type.pointee)
                    if not function.is_internal:
                        node.unknown = True  # callers outside the module
                    self.cells[id(arg)] = Cell(node)
        for function in self.module.defined_functions():
            self._build_function(function)
        # Global initializers embed pointers to other globals.
        for global_var in self.module.globals.values():
            initializer = global_var.initializer
            if initializer is not None:
                self._scan_initializer(self.cells[id(global_var)], initializer)

    def _build_function(self, function: Function) -> None:
        for block in function.blocks:
            for inst in block.instructions:
                self._visit(function, inst)

    def _visit(self, function: Function, inst: Instruction) -> None:
        if isinstance(inst, AllocationInst):
            node = DSNode(inst.allocated_type)
            node.flags.add("H" if inst.opcode == Opcode.MALLOC else "S")
            self._set_cell(inst, Cell(node))
            return
        if isinstance(inst, GetElementPtrInst):
            self._set_cell(inst, self._gep_cell(inst))
            return
        if isinstance(inst, CastInst):
            if inst.type.is_pointer:
                source = inst.value
                if source.type.is_pointer:
                    # The cast itself is free; the *access* through the
                    # wrongly-typed pointer does the collapsing.
                    self._set_cell(inst, self._cell_of(source))
                else:
                    # Integer-to-pointer: points to who-knows-what.
                    node = DSNode()
                    node.unknown = True
                    node.collapsed = True
                    self._set_cell(inst, Cell(node))
            return
        if isinstance(inst, LoadInst):
            pointer_cell = self._cell_of(inst.pointer)
            self._accesses.append((inst.pointer, inst.type))
            if inst.type.is_pointer:
                self._set_cell(inst, self._edge_at(pointer_cell,
                                                   inst.type.pointee))
            return
        if isinstance(inst, StoreInst):
            pointer_cell = self._cell_of(inst.pointer)
            self._accesses.append((inst.pointer, inst.value.type))
            if inst.value.type.is_pointer:
                value_cell = self._cell_of(inst.value)
                edge = self._edge_at(pointer_cell, inst.value.type.pointee)
                self._unify(edge, value_cell)
            return
        if isinstance(inst, PhiNode):
            if inst.type.is_pointer:
                merged = self._cell_for_value(inst)
                for value, _ in inst.incoming:
                    self._unify(merged, self._cell_of(value))
            return
        if isinstance(inst, (CallInst, InvokeInst)):
            self._visit_call(function, inst)
            return
        if isinstance(inst, VAArgInst):
            if inst.type.is_pointer:
                node = DSNode()
                node.unknown = True
                node.collapsed = True
                self._set_cell(inst, Cell(node))
            return
        if inst.opcode == Opcode.RET and inst.operands:
            value = inst.operands[0]
            if value.type.is_pointer:
                cell = self.return_cells.get(function.name)
                if cell is None:
                    cell = Cell(DSNode())
                    self.return_cells[function.name] = cell
                self._unify(cell, self._cell_of(value))

    def _visit_call(self, function: Function, inst) -> None:
        callee = inst.operands[0]
        args = (inst.operands[1:-2] if isinstance(inst, InvokeInst)
                else inst.operands[1:])
        targets: list[Function] = []
        if isinstance(callee, Function):
            targets = [callee]
        else:
            # Indirect call: every address-taken function of matching
            # arity may be the target.
            for candidate in self.module.functions.values():
                fn_ty = candidate.function_type
                if fn_ty.is_vararg:
                    matches = len(args) >= len(fn_ty.params)
                else:
                    matches = len(args) == len(fn_ty.params)
                if matches and self._address_taken(candidate):
                    targets.append(candidate)
        for target in targets:
            if target.is_declaration:
                if target.name in KNOWN_SAFE_EXTERNALS:
                    continue
                for arg in args:
                    if arg.type.is_pointer:
                        self._collapse_cell(self._cell_of(arg), unknown=True)
                if inst.type.is_pointer:
                    node = DSNode()
                    node.unknown = True
                    node.collapsed = True
                    self._set_cell(inst, Cell(node))
                continue
            for actual, formal in zip(args, target.args):
                if actual.type.is_pointer and id(formal) in self.cells:
                    self._unify(self.cells[id(formal)], self._cell_of(actual))
            if inst.type.is_pointer:
                cell = self.return_cells.get(target.name)
                if cell is None:
                    cell = Cell(DSNode())
                    self.return_cells[target.name] = cell
                self._unify(self._cell_for_value(inst), cell)

    def _address_taken(self, function: Function) -> bool:
        for use in function.uses:
            user = use.user
            if isinstance(user, (CallInst, InvokeInst)) and use.index == 0:
                continue
            return True
        return False

    def _scan_initializer(self, cell: Cell, constant: Constant,
                          offset: int = 0) -> None:
        from ..core.values import ConstantArray, ConstantStruct

        if isinstance(constant, (GlobalVariable,)):
            target = self.cells[id(constant)]
            node = cell.node.find()
            edge_offset = 0 if node.collapsed else cell.offset + offset
            existing = node.edges.get(edge_offset)
            if existing is None:
                node.edges[edge_offset] = target
            else:
                self._unify(existing, target)
            return
        if isinstance(constant, ConstantArray):
            element_size = self.layout.size_of(constant.type.element)  # type: ignore[attr-defined]
            for index, element in enumerate(constant.elements):
                # Arrays are folded: every element maps onto offset 0.
                self._scan_initializer(cell, element, offset)
            return
        if isinstance(constant, ConstantStruct):
            for index, field in enumerate(constant.fields_values):
                field_offset = self.layout.field_offset(constant.type, index)
                self._scan_initializer(cell, field, offset + field_offset)
            return
        if isinstance(constant, ConstantExpr):
            for operand in constant.operands:
                self._scan_initializer(cell, operand, offset)

    # ==================================================================
    # Cells and unification
    # ==================================================================

    def _cell_for_value(self, value: Value) -> Cell:
        cell = self.cells.get(id(value))
        if cell is None:
            cell = Cell(DSNode())
            self.cells[id(value)] = cell
        return cell

    def _set_cell(self, value: Value, cell: Cell) -> None:
        """Define a value's cell, unifying with any cell created for a
        forward reference to it."""
        existing = self.cells.get(id(value))
        if existing is None:
            self.cells[id(value)] = cell
        else:
            self._unify(existing, cell)

    def _cell_of(self, value: Value) -> Cell:
        cell = self.cells.get(id(value))
        if cell is not None:
            return cell.resolved()
        if isinstance(value, (ConstantPointerNull, UndefValue)):
            cell = Cell(DSNode())  # points at nothing; fresh dead node
        elif isinstance(value, ConstantExpr):
            cell = self._constexpr_cell(value)
        elif isinstance(value, (Instruction, Argument)):
            # Forward reference (e.g. a phi naming a later definition):
            # a fresh cell, unified when the definition is visited.
            cell = Cell(DSNode())
        else:
            # An unanalysed source; unknown.
            node = DSNode()
            node.unknown = True
            cell = Cell(node)
        self.cells[id(value)] = cell
        return cell

    def _constexpr_cell(self, expr: ConstantExpr) -> Cell:
        if expr.opcode == "cast":
            inner = expr.operands[0]
            if inner.type.is_pointer:
                return self._cell_of(inner)
            node = DSNode()
            node.unknown = True
            node.collapsed = True
            return Cell(node)
        base = self._cell_of(expr.operands[0])
        return self._gep_offset_cell(base, expr.operands[0].type,
                                     expr.operands[1:])

    def _gep_cell(self, inst: GetElementPtrInst) -> Cell:
        base = self._cell_of(inst.pointer)
        return self._gep_offset_cell(base, inst.pointer.type, inst.indices)

    def _gep_offset_cell(self, base: Cell, pointer_type, indices) -> Cell:
        node = base.node.find()
        if node.collapsed:
            return Cell(node, 0)
        offset = base.offset
        current = pointer_type.pointee
        for position, index in enumerate(indices):
            if position == 0:
                # Stepping over the object: DSA folds arrays-of-objects,
                # so a non-zero first index stays on the same cell — but
                # only if the stride matches the object's element type
                # (checked after the graph is complete).
                stepping = not (isinstance(index, ConstantInt) and index.value == 0)
                if stepping:
                    self._strides.append((base, current))
                continue
            if current.is_struct:
                if not isinstance(index, ConstantInt):
                    self._collapse_cell(base)
                    return Cell(base.node.find(), 0)
                offset += self.layout.field_offset(current, index.value)
                current = current.fields[index.value]
            else:
                # Array indexing folds onto the element at the same
                # relative position.
                current = current.element
        return Cell(node, offset)

    def _edge_at(self, cell: Cell, pointee: types.Type) -> Cell:
        """The cell a pointer field points at, creating it if missing.

        The target is created *untyped*: object types come from
        allocations and accesses, never from pointer declarations —
        that is what lets DSA "extract type information for objects
        stored into and loaded out of generic void* data structures,
        despite the casts" (paper footnote 8).
        """
        node = cell.node.find()
        offset = 0 if node.collapsed else cell.offset
        existing = node.edges.get(offset)
        if existing is not None:
            return existing.resolved()
        target = DSNode()
        if node.unknown:
            target.unknown = True
        created = Cell(target)
        node.edges[offset] = created
        return created

    def _unify(self, a: Cell, b: Cell) -> None:
        a = a.resolved()
        b = b.resolved()
        node_a = a.node
        node_b = b.node
        if node_a is node_b:
            if not node_a.collapsed and a.offset != b.offset:
                self._collapse_node(node_a)
            return
        # An empty node forwards into the other cell at a delta; no
        # information is merged, so nothing can conflict.
        if node_b.is_empty:
            node_b._parent = node_a
            node_b._parent_delta = a.offset - b.offset
            return
        if node_a.is_empty:
            node_a._parent = node_b
            node_a._parent_delta = b.offset - a.offset
            return
        offset_a = 0 if node_a.collapsed else a.offset
        offset_b = 0 if node_b.collapsed else b.offset
        # Merge b into a.
        merged = node_a
        node_b._parent = node_a
        node_b._parent_delta = 0
        if node_a.collapsed or node_b.collapsed or offset_a != offset_b:
            collapse = True
        elif node_a.ty is not None and node_b.ty is not None \
                and node_a.ty is not node_b.ty:
            collapse = True
        else:
            collapse = False
            if merged.ty is None:
                merged.ty = node_b.ty
        merged.unknown = node_a.unknown or node_b.unknown
        merged.flags |= node_b.flags
        pending = list(node_b.edges.items())
        node_b.edges.clear()
        if collapse:
            self._collapse_node(merged)
            for _, target in pending:
                existing = merged.edges.get(0)
                if existing is None:
                    merged.edges[0] = target
                else:
                    self._unify(existing, target)
        else:
            for offset, target in pending:
                existing = merged.edges.get(offset)
                if existing is None:
                    merged.edges[offset] = target
                else:
                    self._unify(existing, target)

    def _collapse_cell(self, cell: Cell, unknown: bool = False) -> None:
        node = cell.node.find()
        if unknown:
            node.unknown = True
        self._collapse_node(node)

    def _collapse_node(self, node: DSNode) -> None:
        node = node.find()
        if node.collapsed:
            return
        node.collapsed = True
        node.ty = None
        pending = list(node.edges.items())
        node.edges.clear()
        merged: Optional[Cell] = None
        for _, target in pending:
            if merged is None:
                merged = target
            else:
                self._unify(merged, target)
        if merged is not None:
            node.edges[0] = merged

    # ==================================================================
    # Access checking (the Table 1 verdict)
    # ==================================================================

    def _note_access(self, cell: Cell, access_type: types.Type) -> None:
        node = cell.node.find()
        if node.collapsed:
            return
        offset = cell.offset
        if node.ty is None:
            if offset == 0:
                node.ty = _fold_arrays(access_type)
            else:
                self._collapse_node(node)
            return
        declared = _type_at(node.ty, offset, self.layout)
        if declared is not access_type:
            self._collapse_node(node)

    def is_typed_access(self, pointer: Value, access_type: types.Type) -> bool:
        """Is this static access provably consistent with declared types?"""
        cell = self.cells.get(id(pointer))
        if cell is None:
            cell = self._cell_of(pointer)
        node = cell.node.find()
        if node.collapsed or node.unknown:
            return False
        if node.ty is None:
            return False
        declared = _type_at(node.ty, cell.offset, self.layout)
        return declared is access_type

    def report(self) -> TypedAccessReport:
        """Count typed vs untyped static loads and stores (Table 1)."""
        report = TypedAccessReport()
        for function in self.module.defined_functions():
            for inst in function.instructions():
                if isinstance(inst, LoadInst):
                    ok = self.is_typed_access(inst.pointer, inst.type)
                elif isinstance(inst, StoreInst):
                    ok = self.is_typed_access(inst.pointer, inst.value.type)
                else:
                    continue
                if ok:
                    report.typed += 1
                else:
                    report.untyped += 1
        return report

    # -- alias-style queries used by Mod/Ref -------------------------------------

    def node_of(self, value: Value) -> Optional[DSNode]:
        """The abstract memory object ``value`` points at, or None for
        values the analysis never saw.  Clients (e.g. the whole-program
        leak checker) use the node's flags/``unknown`` bit to decide
        whether an allocation could be reachable from outside the
        function that made it."""
        cell = self.cells.get(id(value))
        if cell is None:
            return None
        return cell.node.find()

    def heap_escapes(self, value: Value) -> bool:
        """True when the heap object ``value`` points at may be reachable
        from a global or from outside the analysed program — i.e. when a
        local ownership argument about it is unsound."""
        node = self.node_of(value)
        if node is None:
            return False
        return node.unknown or "G" in node.flags or "F" in node.flags

    def may_alias(self, a: Value, b: Value) -> bool:
        """Two pointers may alias when they land on the same node (and,
        for un-collapsed nodes, the same field)."""
        cell_a = self._cell_of(a)
        cell_b = self._cell_of(b)
        node_a = cell_a.node.find()
        node_b = cell_b.node.find()
        if node_a is not node_b:
            return False
        if node_a.collapsed:
            return True
        return cell_a.offset == cell_b.offset


def _type_at(ty: types.Type, offset: int,
             layout: DataLayout) -> Optional[types.Type]:
    """The declared scalar type found exactly at ``offset`` within ``ty``."""
    while True:
        if ty.is_array:
            element_size = layout.size_of(ty.element)  # type: ignore[attr-defined]
            if element_size == 0:
                return None
            offset %= element_size
            ty = ty.element  # type: ignore[attr-defined]
            continue
        if ty.is_struct:
            if ty.is_opaque:
                return None
            for index in range(len(ty.fields)):  # type: ignore[attr-defined]
                field_offset = layout.field_offset(ty, index)
                field = ty.fields[index]  # type: ignore[attr-defined]
                if field_offset <= offset < field_offset + max(layout.size_of(field), 1):
                    offset -= field_offset
                    ty = field
                    break
            else:
                return None
            continue
        if offset == 0:
            return ty
        return None
