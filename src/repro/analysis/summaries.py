"""Interprocedural summaries (paper section 3.3).

"At compile-time, interprocedural summaries can be computed for each
function in the program and attached to the bytecode.  The link-time
interprocedural optimizer can then process these interprocedural
summaries as input instead of having to compute results from scratch.
This technique can dramatically speed up incremental compilation when a
small number of translation units are modified."

A :class:`FunctionSummary` records the per-function facts the link-time
passes need (call edges, global reads/writes, local unwind behaviour,
size, purity) without the body; :class:`ModuleSummaries` computes,
serializes, and re-derives whole-program facts from them.  The test
suite checks that summary-driven answers match body-scan answers, which
is the contract that makes the incremental path sound.
"""

from __future__ import annotations

import json
from typing import Optional

from ..core.instructions import (
    CallInst, InvokeInst, LoadInst, Opcode, StoreInst, UnwindInst,
)
from ..core.module import Function, GlobalVariable, Module
from .alias import resolve_base


class FunctionSummary:
    """Link-time-relevant facts about one function, body not required."""

    __slots__ = ("name", "size", "direct_callees", "invoked_callees",
                 "has_indirect_calls", "reads_globals", "writes_globals",
                 "unwinds_locally", "is_declaration", "is_internal")

    def __init__(self, name: str):
        self.name = name
        self.size = 0
        #: Callees reached by plain ``call`` (their unwinds propagate).
        self.direct_callees: list[str] = []
        #: Callees reached by ``invoke`` (their unwinds are caught here).
        self.invoked_callees: list[str] = []
        self.has_indirect_calls = False
        self.reads_globals: list[str] = []
        self.writes_globals: list[str] = []
        self.unwinds_locally = False
        self.is_declaration = False
        self.is_internal = False

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "size": self.size,
            "calls": self.direct_callees,
            "invokes": self.invoked_callees,
            "indirect": self.has_indirect_calls,
            "reads": self.reads_globals,
            "writes": self.writes_globals,
            "unwinds": self.unwinds_locally,
            "declaration": self.is_declaration,
            "internal": self.is_internal,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionSummary":
        summary = cls(payload["name"])
        summary.size = payload["size"]
        summary.direct_callees = list(payload["calls"])
        summary.invoked_callees = list(payload["invokes"])
        summary.has_indirect_calls = payload["indirect"]
        summary.reads_globals = list(payload["reads"])
        summary.writes_globals = list(payload["writes"])
        summary.unwinds_locally = payload["unwinds"]
        summary.is_declaration = payload["declaration"]
        summary.is_internal = payload["internal"]
        return summary


def summarize_function(function: Function) -> FunctionSummary:
    """Compute one function's summary from its body."""
    summary = FunctionSummary(function.name)
    summary.is_declaration = function.is_declaration
    summary.is_internal = function.is_internal
    if function.is_declaration:
        return summary
    summary.size = function.instruction_count()
    callees: dict[str, None] = {}
    invoked: dict[str, None] = {}
    reads: dict[str, None] = {}
    writes: dict[str, None] = {}
    for inst in function.instructions():
        if isinstance(inst, UnwindInst):
            summary.unwinds_locally = True
        elif isinstance(inst, (CallInst, InvokeInst)):
            callee = inst.operands[0]
            if isinstance(callee, Function):
                if isinstance(inst, CallInst):
                    callees.setdefault(callee.name)
                else:
                    invoked.setdefault(callee.name)
            elif isinstance(inst, CallInst):
                # An indirect *invoke* catches its callee's unwind; an
                # indirect call propagates who-knows-what.
                summary.has_indirect_calls = True
        elif isinstance(inst, LoadInst):
            base, _ = resolve_base(inst.pointer)
            if isinstance(base, GlobalVariable):
                reads.setdefault(base.name)
        elif isinstance(inst, StoreInst):
            base, _ = resolve_base(inst.pointer)
            if isinstance(base, GlobalVariable):
                writes.setdefault(base.name)
    summary.direct_callees = list(callees)
    summary.invoked_callees = list(invoked)
    summary.reads_globals = list(reads)
    summary.writes_globals = list(writes)
    return summary


class ModuleSummaries:
    """All function summaries of a module, plus derived whole-program
    queries (the facts the link-time passes otherwise rescan for)."""

    def __init__(self, summaries: dict[str, FunctionSummary]):
        self.summaries = summaries

    @classmethod
    def compute(cls, module: Module) -> "ModuleSummaries":
        return cls({
            function.name: summarize_function(function)
            for function in module.functions.values()
        })

    # -- serialization (the "attached to the bytecode" sidecar) ---------------

    def to_json(self) -> str:
        return json.dumps(
            {"functions": [s.to_dict() for s in self.summaries.values()]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ModuleSummaries":
        payload = json.loads(text)
        summaries = {
            entry["name"]: FunctionSummary.from_dict(entry)
            for entry in payload["functions"]
        }
        return cls(summaries)

    # -- derived whole-program facts -------------------------------------------

    def may_unwind(self, known_no_unwind: frozenset = frozenset()) -> dict[str, bool]:
        """Per-function may-unwind, from summaries alone (the input
        prune-eh needs).  Matches a direct body scan."""
        from .callgraph import strongly_connected_components

        result: dict[str, bool] = {}
        for name, summary in self.summaries.items():
            if summary.is_declaration:
                result[name] = name not in known_no_unwind
            else:
                result[name] = summary.unwinds_locally
        # Bottom-up over the SCC condensation: callees settle before
        # callers, so each SCC needs at most |SCC| local sweeps instead
        # of iterating the whole program to a global fixpoint.
        edges = {name: summary.direct_callees
                 for name, summary in self.summaries.items()}
        for component in strongly_connected_components(edges):
            changed = True
            while changed:
                changed = False
                for name in component:
                    summary = self.summaries[name]
                    if summary.is_declaration or result[name]:
                        continue
                    if summary.has_indirect_calls:
                        escalate = True
                    else:
                        escalate = any(
                            result.get(callee, True)
                            for callee in summary.direct_callees
                        )
                    if escalate:
                        result[name] = True
                        changed = True
        return result

    def _all_callees(self, summary: FunctionSummary) -> list[str]:
        return summary.direct_callees + summary.invoked_callees

    def transitive_global_writes(self, name: str) -> Optional[set[str]]:
        """Globals a call to ``name`` may write, or None for 'unknown'
        (indirect calls / external callees in the closure)."""
        seen: set[str] = set()
        writes: set[str] = set()
        worklist = [name]
        while worklist:
            current = worklist.pop()
            if current in seen:
                continue
            seen.add(current)
            summary = self.summaries.get(current)
            if summary is None or summary.is_declaration or \
                    summary.has_indirect_calls:
                return None
            writes.update(summary.writes_globals)
            worklist.extend(self._all_callees(summary))
        return writes

    def call_graph_edges(self) -> dict[str, list[str]]:
        return {
            name: self._all_callees(summary)
            for name, summary in self.summaries.items()
        }
