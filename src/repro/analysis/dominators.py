"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy "engineered" iterative dominator
algorithm over reverse postorder, plus Cytron et al.'s dominance
frontier computation — the ingredients of SSA construction (the
``mem2reg`` stack-promotion pass) and of the verifier's SSA rule
("each use of a register is dominated by its definition").
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.basicblock import BasicBlock
from ..core.module import Function
from .cfg import reverse_postorder


class DominatorTree:
    """Immediate-dominator tree for the reachable blocks of a function."""

    def __init__(self, function: Function):
        self.function = function
        self._rpo = reverse_postorder(function)
        self._index = {id(b): i for i, b in enumerate(self._rpo)}
        self._idom: dict[int, Optional[BasicBlock]] = {}
        self._children: dict[int, list[BasicBlock]] = {id(b): [] for b in self._rpo}
        self._compute()
        self._dfs_in: dict[int, int] = {}
        self._dfs_out: dict[int, int] = {}
        self._number()

    # -- construction -------------------------------------------------------

    def _compute(self) -> None:
        entry = self._rpo[0]
        idom: dict[int, BasicBlock] = {id(entry): entry}
        changed = True
        while changed:
            changed = False
            for block in self._rpo[1:]:
                new_idom: Optional[BasicBlock] = None
                for pred in block.unique_predecessors():
                    if id(pred) not in self._index:
                        continue  # unreachable predecessor
                    if id(pred) in idom:
                        if new_idom is None:
                            new_idom = pred
                        else:
                            new_idom = self._intersect(pred, new_idom, idom)
                if new_idom is not None and idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True
        self._idom[id(entry)] = None
        for block in self._rpo[1:]:
            dominator = idom[id(block)]
            self._idom[id(block)] = dominator
            self._children[id(dominator)].append(block)

    def _intersect(self, a: BasicBlock, b: BasicBlock,
                   idom: dict[int, BasicBlock]) -> BasicBlock:
        index = self._index
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] > index[id(a)]:
                b = idom[id(b)]
        return a

    def _number(self) -> None:
        """DFS-number the dominator tree for O(1) dominance queries."""
        clock = 0
        stack: list[tuple[BasicBlock, bool]] = [(self._rpo[0], False)]
        while stack:
            block, done = stack.pop()
            if done:
                self._dfs_out[id(block)] = clock
                clock += 1
                continue
            self._dfs_in[id(block)] = clock
            clock += 1
            stack.append((block, True))
            for child in reversed(self._children[id(block)]):
                stack.append((child, False))

    # -- queries -----------------------------------------------------------------

    @property
    def root(self) -> BasicBlock:
        return self._rpo[0]

    def is_reachable(self, block: BasicBlock) -> bool:
        return id(block) in self._index

    def idom(self, block: BasicBlock) -> Optional[BasicBlock]:
        """The immediate dominator of ``block`` (None for the entry)."""
        return self._idom[id(block)]

    def children(self, block: BasicBlock) -> list[BasicBlock]:
        """Blocks immediately dominated by ``block``."""
        return self._children[id(block)]

    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Whether ``a`` dominates ``b`` (reflexive)."""
        if not self.is_reachable(a) or not self.is_reachable(b):
            return False
        return (self._dfs_in[id(a)] <= self._dfs_in[id(b)]
                and self._dfs_out[id(b)] <= self._dfs_out[id(a)])

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates_block(a, b)

    def preorder(self) -> Iterator[BasicBlock]:
        """Dominator-tree preorder traversal."""
        stack = [self.root]
        while stack:
            block = stack.pop()
            yield block
            stack.extend(reversed(self._children[id(block)]))

    def depth(self, block: BasicBlock) -> int:
        depth = 0
        current = self._idom[id(block)]
        while current is not None:
            depth += 1
            current = self._idom[id(current)]
        return depth


class DominanceFrontiers:
    """Per-block dominance frontiers (Cytron et al.).

    ``DF(b)`` is the set of blocks where ``b``'s dominance stops — the
    join points where phi nodes are needed for definitions in ``b``.
    """

    def __init__(self, function: Function, domtree: Optional[DominatorTree] = None):
        self.domtree = domtree or DominatorTree(function)
        self._frontiers: dict[int, list[BasicBlock]] = {}
        self._compute(function)

    def _compute(self, function: Function) -> None:
        domtree = self.domtree
        frontier_sets: dict[int, dict[int, BasicBlock]] = {
            id(b): {} for b in function.blocks if domtree.is_reachable(b)
        }
        for block in function.blocks:
            if not domtree.is_reachable(block):
                continue
            preds = [p for p in block.unique_predecessors() if domtree.is_reachable(p)]
            # Walk every incoming edge (not just join points): a block
            # with a self-loop is in its own frontier even with a single
            # predecessor.
            idom = domtree.idom(block)
            for pred in preds:
                runner = pred
                while runner is not idom and runner is not None:
                    frontier_sets[id(runner)].setdefault(id(block), block)
                    runner = domtree.idom(runner)
        self._frontiers = {key: list(vals.values()) for key, vals in frontier_sets.items()}

    def frontier(self, block: BasicBlock) -> list[BasicBlock]:
        return self._frontiers.get(id(block), [])
