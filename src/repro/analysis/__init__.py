"""Program analyses: CFG, dominators, loops, call graph, alias analysis,
Mod/Ref, and Data Structure Analysis (DSA)."""

from .alias import AliasResult, alias
from .callgraph import CallGraph, CallGraphNode
from .dominators import DominanceFrontiers, DominatorTree
from .dsa import DataStructureAnalysis, DSNode, TypedAccessReport
from .loops import Loop, LoopInfo
from .modref import ModRefAnalysis, ModRefInfo
from .summaries import FunctionSummary, ModuleSummaries, summarize_function

__all__ = [
    "AliasResult", "alias", "CallGraph", "CallGraphNode",
    "DominanceFrontiers", "DominatorTree", "DataStructureAnalysis",
    "DSNode", "TypedAccessReport", "Loop", "LoopInfo", "ModRefAnalysis",
    "ModRefInfo", "FunctionSummary", "ModuleSummaries",
    "summarize_function",
]
