"""Verified numeric abstract interpretation over the SSA IR.

Two domains — signed/unsigned intervals and known-bits tri-state
bitvectors — with per-opcode transfer functions whose soundness is
machine-checked against the concrete semantics in
:mod:`repro.core.constfold` (``lc-absint --self-check``), solved
sparsely with widening/narrowing at loop heads by
:func:`analyze_function`.

Consumers: the ``rangeopt`` transform pass, the range-driven lint
checkers, the interprocedural return-range summaries, and the fuzz
oracle that cross-checks every interpreted value against its computed
fact.
"""

from .domains import (
    BOOL_SHAPE,
    Interval,
    KnownBits,
    NarrowInt,
    Shape,
    exact_binary_range,
    from_pattern,
    interval_binary,
    interval_cast,
    interval_from_kb,
    interval_shift,
    kb_binary,
    kb_cast,
    kb_from_interval,
    kb_shift,
    reduce_pair,
    shape_bounds,
    shape_of,
    to_pattern,
)
from .engine import (
    AbsValue,
    RangeDumpPass,
    ValueFacts,
    abstract_of_constant,
    analyze_function,
    analyze_module,
)
from .selfcheck import run_self_check

__all__ = [
    "AbsValue",
    "RangeDumpPass",
    "BOOL_SHAPE",
    "Interval",
    "KnownBits",
    "NarrowInt",
    "Shape",
    "ValueFacts",
    "abstract_of_constant",
    "analyze_function",
    "analyze_module",
    "exact_binary_range",
    "from_pattern",
    "interval_binary",
    "interval_cast",
    "interval_from_kb",
    "interval_shift",
    "kb_binary",
    "kb_cast",
    "kb_from_interval",
    "kb_shift",
    "reduce_pair",
    "run_self_check",
    "shape_bounds",
    "shape_of",
    "to_pattern",
]
