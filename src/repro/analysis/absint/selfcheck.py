"""Machine-checked soundness of every abstract transformer.

The check enumerates *abstract* inputs and, for each, every *concrete*
member of their concretizations, runs the real concrete semantics
(:mod:`repro.core.constfold` — the same code the interpreter and the
constant folder execute), and asserts the concrete result is admitted
by the transformer's output.  Trapping executions (division/remainder
by zero) produce no value and are exempt.

The escalation ladder follows lc-synth's narrow-width discipline:

* **4-bit, exhaustive**: every interval (136) and every known-bits
  element (81) on both sides, every opcode, both signednesses — plus
  3- and 6-bit shapes for casts, and the 1-bit bool shape.  Interval
  containment is convex, so checking the min and max of the concrete
  results over the operand box is checking every member.
* **8-bit, exhaustive singletons**: all 65 536 concrete operand pairs
  per opcode/signedness through singleton abstract values (the case
  constant folding and rangeopt rely on), plus seeded non-singleton
  samples.
* **16/32/64-bit, boundary + seeded sampling**: abstract inputs built
  from :func:`repro.tvalid.evaluate.argument_domain`'s boundary window
  (the tvalid input discipline), concrete probes at interval endpoints
  plus seeded interior members.

``lc-absint --self-check`` runs the full ladder and is gated in CI; the
fast mode keeps the unit suite quick.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ...core import types
from ...core.constfold import (
    ArithmeticFault,
    eval_binary,
    eval_cast,
    eval_shift,
)
from ...core.instructions import COMPARISON_OPCODES, Opcode
from ...tvalid.evaluate import argument_domain
from .domains import (
    BOOL_SHAPE,
    Interval,
    KnownBits,
    NarrowInt,
    Shape,
    from_pattern,
    interval_binary,
    interval_cast,
    interval_from_kb,
    interval_shift,
    kb_binary,
    kb_cast,
    kb_from_interval,
    kb_shift,
    reduce_pair,
    shape_bounds,
    to_pattern,
)

#: Binary opcodes with an integral result of the operand shape.
ARITH_OPCODES = (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
                 Opcode.AND, Opcode.OR, Opcode.XOR)
CMP_OPCODES = tuple(sorted(COMPARISON_OPCODES, key=lambda op: op.value))
ALL_BINARY = ARITH_OPCODES + CMP_OPCODES
SHIFT_OPCODES = (Opcode.SHL, Opcode.SHR)

_REAL_TYPES = {
    (8, True): types.SBYTE, (8, False): types.UBYTE,
    (16, True): types.SHORT, (16, False): types.USHORT,
    (32, True): types.INT, (32, False): types.UINT,
    (64, True): types.LONG, (64, False): types.ULONG,
}


def type_for_shape(shape: Shape):
    """A concrete type object carrying ``shape``'s semantics: the real
    LC type when one exists, a :class:`NarrowInt` stand-in otherwise."""
    if shape == BOOL_SHAPE:
        return types.BOOL
    real = _REAL_TYPES.get(shape)
    return real if real is not None else NarrowInt(*shape)


def _concrete(shape: Shape, numeric: int):
    """The representation constfold expects for a numeric value."""
    return bool(numeric) if shape == BOOL_SHAPE else numeric


def all_intervals(shape: Shape) -> List[Interval]:
    lo, hi = shape_bounds(shape)
    return [Interval(a, b)
            for a in range(lo, hi + 1) for b in range(a, hi + 1)]


def all_knownbits(bits: int) -> List[KnownBits]:
    size = 1 << bits
    return [KnownBits(bits, zeros, ones)
            for zeros in range(size) for ones in range(size)
            if not zeros & ones]


def kb_members(shape: Shape, kb: KnownBits) -> List[int]:
    return [from_pattern(shape, p) for p in range(1 << kb.bits)
            if kb.contains_pattern(p)]


# ---------------------------------------------------------------------------
# Binary opcodes
# ---------------------------------------------------------------------------

def _binary_table(opcode: Opcode, shape: Shape):
    """``table[x - lo][y - lo]`` = numeric result, or None on a trap."""
    ty = type_for_shape(shape)
    lo, hi = shape_bounds(shape)
    table = []
    for x in range(lo, hi + 1):
        cx = _concrete(shape, x)
        row = []
        for y in range(lo, hi + 1):
            try:
                row.append(int(eval_binary(opcode, ty, cx,
                                           _concrete(shape, y))))
            except ArithmeticFault:
                row.append(None)
        table.append(row)
    return table


def _box_extremes(table, lo0: int, a: Interval, b: Interval):
    """Min/max concrete result over the operand box, or None when every
    execution in the box traps."""
    cmin = cmax = None
    left = b.lo - lo0
    right = b.hi - lo0 + 1
    for xi in range(a.lo - lo0, a.hi - lo0 + 1):
        segment = [v for v in table[xi][left:right] if v is not None]
        if not segment:
            continue
        low, high = min(segment), max(segment)
        if cmin is None or low < cmin:
            cmin = low
        if cmax is None or high > cmax:
            cmax = high
    if cmin is None:
        return None
    return cmin, cmax


def check_interval_binary_exhaustive(opcode: Opcode, shape: Shape,
                                     problems: List[str],
                                     intervals: Optional[list] = None) -> None:
    table = _binary_table(opcode, shape)
    lo0 = shape_bounds(shape)[0]
    intervals = intervals if intervals is not None else all_intervals(shape)
    for a in intervals:
        for b in intervals:
            result = interval_binary(opcode, shape, a, b)
            extremes = _box_extremes(table, lo0, a, b)
            if extremes is None:
                continue
            cmin, cmax = extremes
            if not (result.lo <= cmin and cmax <= result.hi):
                problems.append(
                    f"interval {opcode.value} {shape}: {a} x {b} -> "
                    f"{result} misses concrete [{cmin}, {cmax}]")
                return  # one witness per transformer keeps reports short


def check_kb_binary_exhaustive(opcode: Opcode, shape: Shape,
                               problems: List[str],
                               kbs: Optional[list] = None) -> None:
    table = _binary_table(opcode, shape)
    lo0 = shape_bounds(shape)[0]
    result_shape = BOOL_SHAPE if opcode in COMPARISON_OPCODES else shape
    kbs = kbs if kbs is not None else all_knownbits(shape[0])
    members = [kb_members(shape, kb) for kb in kbs]
    for a, xs in zip(kbs, members):
        for b, ys in zip(kbs, members):
            result = kb_binary(opcode, shape, a, b)
            for x in xs:
                row = table[x - lo0]
                for y in ys:
                    value = row[y - lo0]
                    if value is None:
                        continue
                    if not result.contains_pattern(
                            to_pattern(result_shape, value)):
                        problems.append(
                            f"knownbits {opcode.value} {shape}: {a} x {b} "
                            f"-> {result} misses {value} (from {x}, {y})")
                        return


def check_binary_singletons(opcode: Opcode, shape: Shape,
                            problems: List[str], stride: int = 1) -> None:
    """Exhaustive concrete pairs through singleton abstract values."""
    ty = type_for_shape(shape)
    lo, hi = shape_bounds(shape)
    result_shape = BOOL_SHAPE if opcode in COMPARISON_OPCODES else shape
    for x in range(lo, hi + 1, stride):
        cx = _concrete(shape, x)
        a_iv = Interval.const(x)
        a_kb = KnownBits.const(shape, x)
        for y in range(lo, hi + 1, stride):
            try:
                value = int(eval_binary(opcode, ty, cx, _concrete(shape, y)))
            except ArithmeticFault:
                continue
            b_iv = Interval.const(y)
            b_kb = KnownBits.const(shape, y)
            iv = interval_binary(opcode, shape, a_iv, b_iv)
            if not iv.contains(value):
                problems.append(
                    f"interval {opcode.value} {shape} singleton: "
                    f"{x} op {y} = {value} not in {iv}")
                return
            kb = kb_binary(opcode, shape, a_kb, b_kb)
            if not kb.contains_pattern(to_pattern(result_shape, value)):
                problems.append(
                    f"knownbits {opcode.value} {shape} singleton: "
                    f"{x} op {y} = {value} not in {kb}")
                return


def check_binary_sampled(opcode: Opcode, shape: Shape, problems: List[str],
                         rng: random.Random, rounds: int,
                         probes: int = 8) -> None:
    """Boundary + seeded sampling for wide shapes: abstract inputs from
    the tvalid argument window, concrete probes at endpoints + seeded
    interior members."""
    ty = type_for_shape(shape)
    result_shape = BOOL_SHAPE if opcode in COMPARISON_OPCODES else shape
    domain = argument_domain(ty) or []
    lo, hi = shape_bounds(shape)

    def random_interval() -> Interval:
        kind = rng.randrange(3)
        if kind == 0:
            v = rng.choice(domain)
            return Interval(v, v)
        a, b = rng.choice(domain), rng.choice(domain)
        if kind == 1:
            a, b = rng.randrange(lo, hi + 1), rng.randrange(lo, hi + 1)
        return Interval(min(a, b), max(a, b))

    def probes_of(interval: Interval) -> list:
        values = {interval.lo, interval.hi}
        for _ in range(probes):
            values.add(rng.randrange(interval.lo, interval.hi + 1))
        return sorted(values)

    for _ in range(rounds):
        a, b = random_interval(), random_interval()
        iv = interval_binary(opcode, shape, a, b)
        a_kb, b_kb = kb_from_interval(shape, a), kb_from_interval(shape, b)
        kb = kb_binary(opcode, shape, a_kb, b_kb)
        for x in probes_of(a):
            for y in probes_of(b):
                try:
                    value = int(eval_binary(opcode, ty, _concrete(shape, x),
                                            _concrete(shape, y)))
                except ArithmeticFault:
                    continue
                if not iv.contains(value):
                    problems.append(
                        f"interval {opcode.value} {shape} sampled: "
                        f"{a} x {b} -> {iv} misses {value} ({x}, {y})")
                    return
                if not kb.contains_pattern(to_pattern(result_shape, value)):
                    problems.append(
                        f"knownbits {opcode.value} {shape} sampled: "
                        f"{a_kb} x {b_kb} -> {kb} misses {value} ({x}, {y})")
                    return


# ---------------------------------------------------------------------------
# Shifts
# ---------------------------------------------------------------------------

def _shift_table(opcode: Opcode, shape: Shape):
    """``table[x - lo][k]`` over every ubyte amount ``k``."""
    ty = type_for_shape(shape)
    lo, hi = shape_bounds(shape)
    return [[int(eval_shift(opcode, ty, x, k)) for k in range(256)]
            for x in range(lo, hi + 1)]


def _amount_intervals(bits: int) -> List[Interval]:
    marks = sorted(set(list(range(bits + 2)) + [63, 64, 255]))
    return [Interval(a, b) for a in marks for b in marks if a <= b]


def check_shift_exhaustive(opcode: Opcode, shape: Shape,
                           problems: List[str],
                           intervals: Optional[list] = None) -> None:
    table = _shift_table(opcode, shape)
    lo0 = shape_bounds(shape)[0]
    bits = shape[0]
    intervals = intervals if intervals is not None else all_intervals(shape)
    amounts = _amount_intervals(bits)
    for a in intervals:
        rows = table[a.lo - lo0:a.hi - lo0 + 1]
        for amt in amounts:
            result = interval_shift(opcode, shape, a, amt)
            cmin = min(min(row[amt.lo:amt.hi + 1]) for row in rows)
            cmax = max(max(row[amt.lo:amt.hi + 1]) for row in rows)
            if not (result.lo <= cmin and cmax <= result.hi):
                problems.append(
                    f"interval {opcode.value} {shape}: {a} by {amt} -> "
                    f"{result} misses concrete [{cmin}, {cmax}]")
                return
    # Known-bits: every value element against every fully-known amount
    # (the transformer returns top for partially-known amounts, checked
    # by construction) plus the top amount.
    known_amounts = [KnownBits.const(SHIFT_SHAPE, k)
                     for k in sorted({0, 1, 2, bits - 1, bits, bits + 1, 255})]
    kbs = all_knownbits(bits)
    for a in kbs:
        xs = kb_members(shape, a)
        for amt_kb in known_amounts + [KnownBits.top(8)]:
            result = kb_shift(opcode, shape, a, amt_kb)
            amounts_concrete = [amt_kb.known_pattern] \
                if amt_kb.is_fully_known else [0, 1, bits, 255]
            for x in xs:
                for k in amounts_concrete:
                    value = table[x - lo0][k]
                    if not result.contains_pattern(to_pattern(shape, value)):
                        problems.append(
                            f"knownbits {opcode.value} {shape}: {a} by "
                            f"{amt_kb} -> {result} misses {value} "
                            f"({x} by {k})")
                        return


SHIFT_SHAPE: Shape = (8, False)


# ---------------------------------------------------------------------------
# Casts
# ---------------------------------------------------------------------------

def check_cast_exhaustive(src: Shape, dst: Shape,
                          problems: List[str]) -> None:
    src_ty = type_for_shape(src)
    dst_ty = type_for_shape(dst)
    lo, hi = shape_bounds(src)
    table = [int(eval_cast(src_ty, dst_ty, _concrete(src, v)))
             for v in range(lo, hi + 1)]
    for a in all_intervals(src):
        result = interval_cast(src, dst, a)
        segment = table[a.lo - lo:a.hi - lo + 1]
        cmin, cmax = min(segment), max(segment)
        if not (result.lo <= cmin and cmax <= result.hi):
            problems.append(
                f"interval cast {src}->{dst}: {a} -> {result} misses "
                f"concrete [{cmin}, {cmax}]")
            return
    for a in all_knownbits(src[0]):
        result = kb_cast(src, dst, a)
        for x in kb_members(src, a):
            value = table[x - lo]
            if not result.contains_pattern(to_pattern(dst, value)):
                problems.append(
                    f"knownbits cast {src}->{dst}: {a} -> {result} "
                    f"misses {value} (from {x})")
                return


# ---------------------------------------------------------------------------
# The reduction operator
# ---------------------------------------------------------------------------

def check_reduction(shape: Shape, problems: List[str]) -> None:
    """``reduce_pair`` must keep every value admitted by *both* inputs,
    and the domain conversions must individually over-approximate."""
    lo, hi = shape_bounds(shape)
    kbs = all_knownbits(shape[0])
    for interval in all_intervals(shape):
        kb_view = kb_from_interval(shape, interval)
        for v in range(interval.lo, interval.hi + 1):
            if not kb_view.contains(shape, v):
                problems.append(
                    f"kb_from_interval {shape}: {interval} -> {kb_view} "
                    f"misses {v}")
                return
    for kb in kbs:
        iv_view = interval_from_kb(shape, kb)
        for v in kb_members(shape, kb):
            if not iv_view.contains(v):
                problems.append(
                    f"interval_from_kb {shape}: {kb} -> {iv_view} "
                    f"misses {v}")
                return
    for interval in all_intervals(shape):
        for kb in kbs:
            new_iv, new_kb = reduce_pair(shape, interval, kb)
            for v in range(interval.lo, interval.hi + 1):
                if kb.contains(shape, v) and not (
                        new_iv.contains(v) and new_kb.contains(shape, v)):
                    problems.append(
                        f"reduce_pair {shape}: ({interval}, {kb}) -> "
                        f"({new_iv}, {new_kb}) drops {v}")
                    return


# ---------------------------------------------------------------------------
# The ladder
# ---------------------------------------------------------------------------

def run_self_check(full: bool = True, seed: int = 0x5eed,
                   log: Optional[Callable[[str], None]] = None) -> List[str]:
    """Run the soundness ladder; returns the list of violations (empty
    means every transformer proved sound at every probed width)."""
    problems: List[str] = []
    rng = random.Random(seed)

    def say(message: str) -> None:
        if log is not None:
            log(message)

    narrow_bits = 4 if full else 3
    narrow_shapes = [(narrow_bits, False), (narrow_bits, True)]

    say(f"[1/5] {narrow_bits}-bit exhaustive: binary opcodes over both "
        f"domains, both signednesses")
    for shape in narrow_shapes:
        for opcode in ALL_BINARY:
            check_interval_binary_exhaustive(opcode, shape, problems)
            check_kb_binary_exhaustive(opcode, shape, problems)
    for opcode in (Opcode.AND, Opcode.OR, Opcode.XOR) + CMP_OPCODES:
        check_interval_binary_exhaustive(opcode, BOOL_SHAPE, problems)
        check_kb_binary_exhaustive(opcode, BOOL_SHAPE, problems)

    say(f"[2/5] {narrow_bits}-bit exhaustive: shifts (saturating "
        f"amounts included)")
    for shape in narrow_shapes:
        for opcode in SHIFT_OPCODES:
            check_shift_exhaustive(opcode, shape, problems)

    say("[3/5] cast matrix over narrow shapes + bool")
    cast_shapes = [(3, False), (3, True), (narrow_bits, False),
                   (narrow_bits, True), (6, False), (6, True), BOOL_SHAPE] \
        if full else [(3, False), (3, True), BOOL_SHAPE]
    for src in cast_shapes:
        for dst in cast_shapes:
            check_cast_exhaustive(src, dst, problems)

    say("[4/5] reduced product: conversions and reduce_pair")
    for shape in narrow_shapes:
        check_reduction(shape, problems)

    if full:
        say("[5/5] 8-bit exhaustive singletons; 16/32/64-bit boundary "
            "+ seeded sampling")
        for shape in ((8, False), (8, True)):
            for opcode in ALL_BINARY:
                check_binary_singletons(opcode, shape, problems)
        for bits in (16, 32, 64):
            for signed in (False, True):
                for opcode in ALL_BINARY:
                    check_binary_sampled(opcode, (bits, signed), problems,
                                         rng, rounds=40)
    else:
        say("[5/5] 8-bit strided singletons (fast mode)")
        for shape in ((8, False), (8, True)):
            for opcode in ALL_BINARY:
                check_binary_singletons(opcode, shape, problems, stride=7)
        for opcode in ALL_BINARY:
            check_binary_sampled(opcode, (32, True), problems, rng,
                                 rounds=6, probes=4)

    return problems
