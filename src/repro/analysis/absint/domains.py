"""The two numeric abstract domains and their per-opcode transformers.

Everything here is *parametric in the width*: a value's "shape" is the
pair ``(bits, signed)``, with ``bool`` treated as a 1-bit unsigned
integer.  That is what makes the soundness story machine-checkable —
the same transformer code path that runs on ``int``/``long`` values in
the compiler runs on 3- and 4-bit shapes in the self-check, where
enumerating *every* abstract element and *every* concrete member of its
concretization is tractable (the lc-synth narrow-width discipline,
applied to transfer functions instead of rewrite rules).

Domains:

* :class:`Interval` — a non-empty, inclusive range ``[lo, hi]`` in the
  shape's *numeric* space (signed shapes use signed values, unsigned
  shapes non-negative ones).  Wrapping semantics are handled at the
  transformer level: an operation whose exact result range does not fit
  the shape goes to the full range rather than guessing how the wrap
  folds.
* :class:`KnownBits` — a tri-state bitvector ``(zeros, ones)`` over the
  shape's bit pattern: bit *i* of ``zeros`` set means bit *i* of the
  value is proven 0, and likewise for ``ones``; both clear means
  unknown.  ``zeros & ones == 0`` is an invariant.

The concrete semantics the transformers must over-approximate are
exactly :mod:`repro.core.constfold`'s (the interpreter's and constant
folder's single source of truth); the self-check enumerates against
``eval_binary``/``eval_shift``/``eval_cast`` directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...core import types
from ...core.instructions import COMPARISON_OPCODES, Opcode

#: A value's numeric shape: (bits, signed).  Bool is (1, False).
Shape = Tuple[int, bool]

#: The shape of comparison results and other booleans.
BOOL_SHAPE: Shape = (1, False)

#: The shape of shift amounts (``ubyte`` by the IR's typing rule).
SHIFT_AMOUNT_SHAPE: Shape = (8, False)


def shape_of(ty: types.Type) -> Optional[Shape]:
    """The shape of an integral first-class type, or None for
    pointers/floats/aggregates (values the domains do not track)."""
    if ty.is_bool:
        return BOOL_SHAPE
    if ty.is_integer:
        return (ty.bits, ty.signed)  # type: ignore[attr-defined]
    return None


def shape_bounds(shape: Shape) -> Tuple[int, int]:
    bits, signed = shape
    if signed:
        return (-(1 << (bits - 1)), (1 << (bits - 1)) - 1)
    return (0, (1 << bits) - 1)


def shape_wrap(shape: Shape, value: int) -> int:
    """Two's-complement wrap of ``value`` into the shape's numeric space."""
    bits, signed = shape
    pattern = value & ((1 << bits) - 1)
    if signed and pattern >= (1 << (bits - 1)):
        return pattern - (1 << bits)
    return pattern


def to_pattern(shape: Shape, value: int) -> int:
    """The raw bit pattern of a numeric value of this shape."""
    return int(value) & ((1 << shape[0]) - 1)


def from_pattern(shape: Shape, pattern: int) -> int:
    """The numeric value whose bit pattern is ``pattern``."""
    bits, signed = shape
    if signed and pattern >= (1 << (bits - 1)):
        return pattern - (1 << bits)
    return pattern


class NarrowInt:
    """A duck-typed stand-in for :class:`repro.core.types.IntegerType`
    at widths the uniqued type system does not provide (3, 4, 6 bits).

    Carries exactly the attributes ``constfold.eval_binary`` /
    ``eval_shift`` / ``eval_cast`` touch, so the self-check can run the
    *real* concrete semantics at enumeration-tractable widths.
    """

    is_floating = False
    is_bool = False
    is_integer = True
    is_pointer = False

    def __init__(self, bits: int, signed: bool):
        self.bits = bits
        self.signed = signed

    @property
    def min_value(self) -> int:
        return shape_bounds((self.bits, self.signed))[0]

    @property
    def max_value(self) -> int:
        return shape_bounds((self.bits, self.signed))[1]

    def wrap(self, value: int) -> int:
        return shape_wrap((self.bits, self.signed), value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{'s' if self.signed else 'u'}int{self.bits}"


# ---------------------------------------------------------------------------
# Interval
# ---------------------------------------------------------------------------

class Interval:
    """A non-empty inclusive numeric range of one shape."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int):
        assert lo <= hi, (lo, hi)
        self.lo = lo
        self.hi = hi

    @staticmethod
    def top(shape: Shape) -> "Interval":
        lo, hi = shape_bounds(shape)
        return Interval(lo, hi)

    @staticmethod
    def const(value: int) -> "Interval":
        return Interval(value, value)

    def is_top(self, shape: Shape) -> bool:
        lo, hi = shape_bounds(shape)
        return self.lo <= lo and self.hi >= hi

    @property
    def is_singleton(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Interval)
                and self.lo == other.lo and self.hi == other.hi)

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


# ---------------------------------------------------------------------------
# KnownBits
# ---------------------------------------------------------------------------

class KnownBits:
    """Tri-state bit knowledge over one shape's bit pattern."""

    __slots__ = ("bits", "zeros", "ones")

    def __init__(self, bits: int, zeros: int, ones: int):
        assert zeros & ones == 0, (bin(zeros), bin(ones))
        self.bits = bits
        self.zeros = zeros
        self.ones = ones

    @staticmethod
    def top(bits: int) -> "KnownBits":
        return KnownBits(bits, 0, 0)

    @staticmethod
    def const(shape: Shape, value: int) -> "KnownBits":
        bits = shape[0]
        pattern = to_pattern(shape, value)
        mask = (1 << bits) - 1
        return KnownBits(bits, mask & ~pattern, pattern)

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    @property
    def is_fully_known(self) -> bool:
        return (self.zeros | self.ones) == self.mask

    @property
    def known_pattern(self) -> int:
        """The single pattern, valid only when ``is_fully_known``."""
        return self.ones

    def is_top(self) -> bool:
        return self.zeros == 0 and self.ones == 0

    def contains_pattern(self, pattern: int) -> bool:
        return (pattern & self.zeros) == 0 and \
            (pattern & self.ones) == self.ones

    def contains(self, shape: Shape, value: int) -> bool:
        return self.contains_pattern(to_pattern(shape, value))

    def join(self, other: "KnownBits") -> "KnownBits":
        """Union of concretizations: keep only commonly-known bits."""
        return KnownBits(self.bits, self.zeros & other.zeros,
                         self.ones & other.ones)

    def intersect(self, other: "KnownBits") -> Optional["KnownBits"]:
        """Conjunction of constraints; None when contradictory."""
        zeros = self.zeros | other.zeros
        ones = self.ones | other.ones
        if zeros & ones:
            return None
        return KnownBits(self.bits, zeros, ones)

    def trailing_known_zeros(self) -> int:
        count = 0
        while count < self.bits and (self.zeros >> count) & 1:
            count += 1
        return count

    def __eq__(self, other) -> bool:
        return (isinstance(other, KnownBits) and self.bits == other.bits
                and self.zeros == other.zeros and self.ones == other.ones)

    def __hash__(self) -> int:
        return hash((self.bits, self.zeros, self.ones))

    def __repr__(self) -> str:
        digits = []
        for i in reversed(range(self.bits)):
            if (self.zeros >> i) & 1:
                digits.append("0")
            elif (self.ones >> i) & 1:
                digits.append("1")
            else:
                digits.append("?")
        return "0b" + "".join(digits)


# ---------------------------------------------------------------------------
# Conversions between the domains (the reduced-product operators)
# ---------------------------------------------------------------------------

def kb_from_interval(shape: Shape, interval: Interval) -> KnownBits:
    """Bits every member of the interval agrees on.

    When all members share a sign, their patterns form one contiguous
    pattern range, so the common leading prefix of the endpoint patterns
    is known; mixed-sign intervals fix nothing.
    """
    bits = shape[0]
    if shape[1] and interval.lo < 0 <= interval.hi:
        return KnownBits.top(bits)
    pa = to_pattern(shape, interval.lo)
    pb = to_pattern(shape, interval.hi)
    differing = pa ^ pb
    prefix = ((1 << bits) - 1) ^ ((1 << differing.bit_length()) - 1)
    return KnownBits(bits, prefix & ~pa, prefix & pa)


def interval_from_kb(shape: Shape, kb: KnownBits) -> Interval:
    """The numeric hull of a known-bits pattern set."""
    bits, signed = shape
    mask = (1 << bits) - 1
    if not signed:
        return Interval(kb.ones, mask & ~kb.zeros)
    sign_bit = 1 << (bits - 1)
    # Minimum: make the value as negative as allowed (sign bit 1 unless
    # proven 0), every other unknown bit 0.
    min_pattern = kb.ones
    if not kb.zeros & sign_bit:
        min_pattern |= sign_bit
    # Maximum: sign bit 0 unless proven 1, every other unknown bit 1.
    max_pattern = mask & ~kb.zeros
    if not kb.ones & sign_bit:
        max_pattern &= ~sign_bit
    return Interval(from_pattern(shape, min_pattern),
                    from_pattern(shape, max_pattern))


def reduce_pair(shape: Shape,
                interval: Interval,
                kb: KnownBits) -> Tuple[Interval, KnownBits]:
    """Mutually refine the two domains (sound reduced product):
    the result concretizations each contain the intersection of the
    inputs' concretizations."""
    narrowed = interval.intersect(interval_from_kb(shape, kb))
    if narrowed is not None:
        interval = narrowed
    sharpened = kb.intersect(kb_from_interval(shape, interval))
    if sharpened is not None:
        kb = sharpened
    return interval, kb


# ---------------------------------------------------------------------------
# Interval transformers
# ---------------------------------------------------------------------------

def _fit(shape: Shape, lo: int, hi: int) -> Interval:
    """The interval when the exact result range fits the shape, else the
    full range (the wrap may fold the range arbitrarily)."""
    smin, smax = shape_bounds(shape)
    if smin <= lo and hi <= smax:
        return Interval(lo, hi)
    return Interval(smin, smax)


def _tdiv(n: int, d: int) -> int:
    """C division: truncation toward zero."""
    q = abs(n) // abs(d)
    return -q if (n < 0) != (d < 0) else q


def exact_binary_range(opcode: Opcode, a: Interval,
                       b: Interval) -> Optional[Tuple[int, int]]:
    """The exact mathematical (pre-wrap) result range of add/sub/mul.

    Used by the ``definite-overflow`` checker: when this entire range
    falls outside the shape's representable values, *every* execution
    of the instruction wraps.
    """
    if opcode == Opcode.ADD:
        return (a.lo + b.lo, a.hi + b.hi)
    if opcode == Opcode.SUB:
        return (a.lo - b.hi, a.hi - b.lo)
    if opcode == Opcode.MUL:
        corners = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
        return (min(corners), max(corners))
    return None


def _interval_divide(shape: Shape, a: Interval, b: Interval) -> Interval:
    # Executions with a zero divisor trap and produce no value, so the
    # candidate divisors exclude 0.  Truncating division is monotone in
    # the numerator for a fixed divisor and monotone in the divisor on
    # each sign side, so endpoint/near-zero corners bound the result.
    divisors = {d for d in (b.lo, b.hi, 1, -1)
                if b.lo <= d <= b.hi and d != 0}
    if not divisors:
        return Interval.top(shape)  # every execution traps
    quotients = [_tdiv(n, d) for n in (a.lo, a.hi) for d in divisors]
    return _fit(shape, min(quotients), max(quotients))


def _interval_remainder(shape: Shape, a: Interval, b: Interval) -> Interval:
    if b.lo == 0 and b.hi == 0:
        return Interval.top(shape)  # every execution traps
    magnitude = max(abs(b.lo), abs(b.hi)) - 1
    # The remainder takes the dividend's sign and |r| <= min(|n|, |d|-1).
    lo = max(-magnitude, min(a.lo, 0))
    hi = min(magnitude, max(a.hi, 0))
    result = Interval(lo, hi)
    # x % d == x whenever 0 <= x < d on every execution.
    if a.lo >= 0 and b.lo > a.hi:
        result = a
    return result


def _interval_bitwise(opcode: Opcode, shape: Shape, a: Interval,
                      b: Interval) -> Interval:
    # Primary bound through the bit domain; sharpen the common
    # both-non-negative case with the classic magnitude bounds.
    kb = kb_binary(opcode, shape,
                   kb_from_interval(shape, a), kb_from_interval(shape, b))
    result = interval_from_kb(shape, kb)
    if a.lo >= 0 and b.lo >= 0:
        if opcode == Opcode.AND:
            bound = Interval(0, min(a.hi, b.hi))
        else:
            width = max(a.hi.bit_length(), b.hi.bit_length())
            upper = (1 << width) - 1
            lo = max(a.lo, b.lo) if opcode == Opcode.OR else 0
            bound = Interval(lo, upper)
        sharpened = result.intersect(bound)
        if sharpened is not None:
            result = sharpened
    return result


def _interval_compare(opcode: Opcode, a: Interval, b: Interval) -> Interval:
    def tri(true_when: bool, false_when: bool) -> Interval:
        if true_when:
            return Interval(1, 1)
        if false_when:
            return Interval(0, 0)
        return Interval(0, 1)

    if opcode == Opcode.SETEQ:
        return tri(a.is_singleton and b.is_singleton and a.lo == b.lo,
                   a.hi < b.lo or b.hi < a.lo)
    if opcode == Opcode.SETNE:
        return tri(a.hi < b.lo or b.hi < a.lo,
                   a.is_singleton and b.is_singleton and a.lo == b.lo)
    if opcode == Opcode.SETLT:
        return tri(a.hi < b.lo, a.lo >= b.hi)
    if opcode == Opcode.SETLE:
        return tri(a.hi <= b.lo, a.lo > b.hi)
    if opcode == Opcode.SETGT:
        return tri(a.lo > b.hi, a.hi <= b.lo)
    if opcode == Opcode.SETGE:
        return tri(a.lo >= b.hi, a.hi < b.lo)
    raise ValueError(f"not a comparison: {opcode}")


def interval_binary(opcode: Opcode, shape: Shape, a: Interval,
                    b: Interval) -> Interval:
    """Transfer a binary opcode over operand intervals of ``shape``.

    Comparison results are intervals of :data:`BOOL_SHAPE`.
    """
    if opcode in COMPARISON_OPCODES:
        return _interval_compare(opcode, a, b)
    if opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL):
        lo, hi = exact_binary_range(opcode, a, b)  # type: ignore[misc]
        return _fit(shape, lo, hi)
    if opcode == Opcode.DIV:
        return _interval_divide(shape, a, b)
    if opcode == Opcode.REM:
        return _interval_remainder(shape, a, b)
    if opcode in (Opcode.AND, Opcode.OR, Opcode.XOR):
        return _interval_bitwise(opcode, shape, a, b)
    raise ValueError(f"not a scalar binary opcode: {opcode}")


def interval_shift(opcode: Opcode, shape: Shape, a: Interval,
                   amount: Interval) -> Interval:
    """Transfer ``shl``/``shr``; ``amount`` has :data:`SHIFT_AMOUNT_SHAPE`."""
    bits = shape[0]
    if opcode == Opcode.SHL:
        if amount.lo >= bits:
            return Interval.const(0)  # deterministic saturation
        if amount.hi >= bits:
            return Interval.top(shape)
        corners = [v << k for v in (a.lo, a.hi)
                   for k in (amount.lo, amount.hi)]
        return _fit(shape, min(corners), max(corners))
    if opcode == Opcode.SHR:
        # Python's ``>>`` is an arithmetic shift with natural saturation
        # at large amounts (floor toward -1/0), which matches eval_shift
        # for signed shapes exactly and for unsigned shapes too (their
        # values are non-negative).  Monotone in each argument, so the
        # corners bound the result.
        corners = [v >> min(k, bits) for v in (a.lo, a.hi)
                   for k in (amount.lo, amount.hi)]
        return Interval(min(corners), max(corners))
    raise ValueError(f"not a shift opcode: {opcode}")


def interval_cast(src_shape: Shape, dst_shape: Shape,
                  a: Interval) -> Interval:
    """Transfer ``cast`` between integral shapes."""
    if dst_shape == BOOL_SHAPE and src_shape != BOOL_SHAPE:
        if not a.contains(0):
            return Interval(1, 1)
        if a.is_singleton:
            return Interval(0, 0)
        return Interval(0, 1)
    # eval_cast wraps the numeric value into the destination; when every
    # member is already representable the wrap is the identity.
    dmin, dmax = shape_bounds(dst_shape)
    if dmin <= a.lo and a.hi <= dmax:
        return Interval(a.lo, a.hi)
    return Interval.top(dst_shape)


# ---------------------------------------------------------------------------
# KnownBits transformers
# ---------------------------------------------------------------------------

def _kb_add(bits: int, a: KnownBits, b: KnownBits,
            carry_in: int) -> KnownBits:
    """Exact bitwise carry propagation for addition.

    Walks the ripple adder tracking the set of possible carries; a
    result bit is known when every (a-bit, b-bit, carry) combination
    produces the same sum bit.  ``carry_in`` seeds the carry set
    (1 for subtraction encoded as ``a + ~b + 1``).
    """
    zeros = 0
    ones = 0
    carries = {carry_in}
    for i in range(bits):
        a_bits = _possible_bits(a, i)
        b_bits = _possible_bits(b, i)
        sums = set()
        next_carries = set()
        for x in a_bits:
            for y in b_bits:
                for c in carries:
                    total = x + y + c
                    sums.add(total & 1)
                    next_carries.add(total >> 1)
        if sums == {0}:
            zeros |= 1 << i
        elif sums == {1}:
            ones |= 1 << i
        carries = next_carries
    return KnownBits(bits, zeros, ones)


def _possible_bits(kb: KnownBits, i: int) -> tuple:
    bit = 1 << i
    if kb.zeros & bit:
        return (0,)
    if kb.ones & bit:
        return (1,)
    return (0, 1)


def _kb_not(kb: KnownBits) -> KnownBits:
    return KnownBits(kb.bits, kb.ones, kb.zeros)


def _kb_mul(bits: int, a: KnownBits, b: KnownBits) -> KnownBits:
    if a.is_fully_known and b.is_fully_known:
        mask = (1 << bits) - 1
        product = (a.known_pattern * b.known_pattern) & mask
        return KnownBits(bits, mask & ~product, product)
    # a = a' * 2^i and b = b' * 2^j force i+j trailing zeros in the
    # product; when a' and b' are both odd, the bit above them is 1.
    tza = a.trailing_known_zeros()
    tzb = b.trailing_known_zeros()
    low = min(tza + tzb, bits)
    zeros = (1 << low) - 1
    ones = 0
    if low < bits and (a.ones >> tza) & 1 and (b.ones >> tzb) & 1:
        ones = 1 << low
    return KnownBits(bits, zeros, ones)


def _kb_divrem(opcode: Opcode, shape: Shape, a: KnownBits,
               b: KnownBits) -> KnownBits:
    bits = shape[0]
    if a.is_fully_known and b.is_fully_known:
        divisor = from_pattern(shape, b.known_pattern)
        if divisor != 0:
            lhs = from_pattern(shape, a.known_pattern)
            result = _tdiv(lhs, divisor) if opcode == Opcode.DIV \
                else lhs - _tdiv(lhs, divisor) * divisor
            return KnownBits.const(shape, shape_wrap(shape, result))
        return KnownBits.top(bits)  # every execution traps
    if opcode == Opcode.REM and b.is_fully_known:
        divisor_pattern = b.known_pattern
        divisor = from_pattern(shape, divisor_pattern)
        sign_bit = 1 << (bits - 1)
        non_negative = (not shape[1]) or bool(a.zeros & sign_bit)
        if divisor > 0 and divisor & (divisor - 1) == 0 and non_negative:
            # Non-negative x % 2^k == x & (2^k - 1).
            low = divisor - 1
            mask = (1 << bits) - 1
            return KnownBits(bits, (mask & ~low) | (a.zeros & low),
                             a.ones & low)
    return KnownBits.top(bits)


def _kb_compare(opcode: Opcode, shape: Shape, a: KnownBits,
                b: KnownBits) -> KnownBits:
    def verdict(value: Optional[bool]) -> KnownBits:
        if value is None:
            return KnownBits.top(1)
        return KnownBits.const(BOOL_SHAPE, int(value))

    conflict = (a.ones & b.zeros) | (a.zeros & b.ones)
    if a.is_fully_known and b.is_fully_known:
        lhs = from_pattern(shape, a.known_pattern)
        rhs = from_pattern(shape, b.known_pattern)
        outcome = {
            Opcode.SETEQ: lhs == rhs, Opcode.SETNE: lhs != rhs,
            Opcode.SETLT: lhs < rhs, Opcode.SETGT: lhs > rhs,
            Opcode.SETLE: lhs <= rhs, Opcode.SETGE: lhs >= rhs,
        }[opcode]
        return verdict(outcome)
    if conflict:
        if opcode == Opcode.SETEQ:
            return verdict(False)
        if opcode == Opcode.SETNE:
            return verdict(True)
    return KnownBits.top(1)


def kb_binary(opcode: Opcode, shape: Shape, a: KnownBits,
              b: KnownBits) -> KnownBits:
    """Transfer a binary opcode over operand known-bits of ``shape``.

    Comparison results are 1-bit (:data:`BOOL_SHAPE`).
    """
    bits = shape[0]
    if opcode in COMPARISON_OPCODES:
        return _kb_compare(opcode, shape, a, b)
    if opcode == Opcode.AND:
        return KnownBits(bits, a.zeros | b.zeros, a.ones & b.ones)
    if opcode == Opcode.OR:
        return KnownBits(bits, a.zeros & b.zeros, a.ones | b.ones)
    if opcode == Opcode.XOR:
        zeros = (a.zeros & b.zeros) | (a.ones & b.ones)
        ones = (a.zeros & b.ones) | (a.ones & b.zeros)
        return KnownBits(bits, zeros, ones)
    if opcode == Opcode.ADD:
        return _kb_add(bits, a, b, 0)
    if opcode == Opcode.SUB:
        return _kb_add(bits, a, _kb_not(b), 1)
    if opcode == Opcode.MUL:
        return _kb_mul(bits, a, b)
    if opcode in (Opcode.DIV, Opcode.REM):
        return _kb_divrem(opcode, shape, a, b)
    raise ValueError(f"not a scalar binary opcode: {opcode}")


def kb_shift(opcode: Opcode, shape: Shape, a: KnownBits,
             amount: KnownBits) -> KnownBits:
    """Transfer ``shl``/``shr`` over known bits."""
    bits = shape[0]
    mask = (1 << bits) - 1
    if not amount.is_fully_known:
        return KnownBits.top(bits)
    k = amount.known_pattern  # the amount is unsigned (ubyte)
    if opcode == Opcode.SHL:
        if k >= bits:
            return KnownBits(bits, mask, 0)  # saturates to 0
        return KnownBits(bits, ((a.zeros << k) | ((1 << k) - 1)) & mask,
                         (a.ones << k) & mask)
    if opcode == Opcode.SHR:
        sign_bit = 1 << (bits - 1)
        if not shape[1]:
            if k >= bits:
                return KnownBits(bits, mask, 0)
            return KnownBits(bits, (a.zeros >> k) | (mask ^ (mask >> k)),
                             a.ones >> k)
        # Arithmetic: vacated bits copy the sign bit.
        k = min(k, bits)  # >= bits saturates to all-sign
        zeros = 0
        ones = 0
        for i in range(bits):
            source = min(i + k, bits - 1)
            if a.zeros & (1 << source):
                zeros |= 1 << i
            elif a.ones & (1 << source):
                ones |= 1 << i
        return KnownBits(bits, zeros, ones)
    raise ValueError(f"not a shift opcode: {opcode}")


def kb_cast(src_shape: Shape, dst_shape: Shape, a: KnownBits) -> KnownBits:
    """Transfer ``cast`` between integral shapes over known bits."""
    src_bits, src_signed = src_shape
    dst_bits = dst_shape[0]
    dst_mask = (1 << dst_bits) - 1
    if dst_shape == BOOL_SHAPE and src_shape != BOOL_SHAPE:
        if a.ones:
            return KnownBits.const(BOOL_SHAPE, 1)  # some bit is set
        if a.zeros == a.mask:
            return KnownBits.const(BOOL_SHAPE, 0)
        return KnownBits.top(1)
    if dst_bits <= src_bits:
        return KnownBits(dst_bits, a.zeros & dst_mask, a.ones & dst_mask)
    # Widening extends by the *source* signedness.
    high = dst_mask & ~a.mask
    zeros = a.zeros
    ones = a.ones
    if not src_signed:
        zeros |= high
    else:
        sign_bit = 1 << (src_bits - 1)
        if a.zeros & sign_bit:
            zeros |= high
        elif a.ones & sign_bit:
            ones |= high
    return KnownBits(dst_bits, zeros, ones)
