"""The abstract interpretation engine: a sparse SSA solver over the
reduced product of the interval and known-bits domains.

``analyze_function`` runs an SCCP-style optimistic fixpoint on the
existing sparse dataflow engine (:mod:`repro.sanalysis.dataflow`):
every instruction starts *undefined* and information flows along
def-use edges only.  Interval ascent through loop-carried phis is
accelerated by widening (after a bounded number of grow events the
moving bound jumps to the shape extreme) and then sharpened by two
narrowing sweeps that intersect each fact with its freshly recomputed
transfer — the intersection of two sound over-approximations is sound.

The result is a :class:`ValueFacts` oracle: per-SSA-value intervals and
known bits that rangeopt, the lint checkers, the interprocedural
summaries, and the fuzz oracle all query.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ...core import types
from ...core.instructions import (
    BinaryOperator,
    CallInst,
    CastInst,
    Instruction,
    InvokeInst,
    LoadInst,
    Opcode,
    PhiNode,
    ShiftInst,
    VAArgInst,
)
from ...core.values import (
    Argument,
    ConstantBool,
    ConstantInt,
    UndefValue,
    Value,
)
from ...sanalysis.dataflow import SparseAnalysis, solve_sparse
from ..cfg import reverse_postorder
from ..loops import LoopInfo
from .domains import (
    BOOL_SHAPE,
    Interval,
    KnownBits,
    Shape,
    from_pattern,
    interval_binary,
    interval_cast,
    interval_shift,
    kb_binary,
    kb_cast,
    kb_shift,
    reduce_pair,
    shape_bounds,
    shape_of,
)


class _Sentinel:
    __slots__ = ("_label",)

    def __init__(self, label: str):
        self._label = label

    def __repr__(self) -> str:
        return self._label


#: Solver-top: "no execution reaches this definition yet".  A distinct
#: object (never ``None`` — the sparse solver's cache treats ``None`` as
#: a miss).
UNDEF = _Sentinel("<undef>")

#: Values the domains do not track (pointers, floats, aggregates).
NOINFO = _Sentinel("<noinfo>")

#: Loop-header phis tolerate this many grow events before widening.
WIDEN_AFTER = 8

#: Any phi (irreducible-CFG backstop) widens after this many.
WIDEN_BACKSTOP = 32


class AbsValue:
    """One SSA value's fact: an interval and known bits of one shape,
    kept mutually reduced."""

    __slots__ = ("shape", "interval", "kb")

    def __init__(self, shape: Shape, interval: Interval, kb: KnownBits):
        self.shape = shape
        self.interval = interval
        self.kb = kb

    @staticmethod
    def make(shape: Shape, interval: Interval, kb: KnownBits) -> "AbsValue":
        interval, kb = reduce_pair(shape, interval, kb)
        return AbsValue(shape, interval, kb)

    @staticmethod
    def top(shape: Shape) -> "AbsValue":
        return AbsValue(shape, Interval.top(shape), KnownBits.top(shape[0]))

    @staticmethod
    def const(shape: Shape, value: int) -> "AbsValue":
        return AbsValue(shape, Interval.const(value),
                        KnownBits.const(shape, value))

    def is_top(self) -> bool:
        return self.interval.is_top(self.shape) and self.kb.is_top()

    def join(self, other: "AbsValue") -> "AbsValue":
        return AbsValue.make(self.shape, self.interval.join(other.interval),
                             self.kb.join(other.kb))

    def intersect(self, other: "AbsValue") -> Optional["AbsValue"]:
        interval = self.interval.intersect(other.interval)
        kb = self.kb.intersect(other.kb)
        if interval is None or kb is None:
            return None
        return AbsValue.make(self.shape, interval, kb)

    def singleton(self) -> Optional[int]:
        """The single concrete value, when there is exactly one."""
        if self.interval.is_singleton:
            return self.interval.lo
        if self.kb.is_fully_known:
            return from_pattern(self.shape, self.kb.known_pattern)
        return None

    def contains(self, value: int) -> bool:
        return self.interval.contains(value) and \
            self.kb.contains(self.shape, value)

    def __eq__(self, other) -> bool:
        return (isinstance(other, AbsValue) and self.shape == other.shape
                and self.interval == other.interval and self.kb == other.kb)

    def __hash__(self) -> int:
        return hash((self.shape, self.interval, self.kb))

    def __repr__(self) -> str:
        return f"{self.interval} {self.kb}"


#: Optional hook giving call results an interval: maps a call/invoke
#: instruction to ``(lo, hi)`` (either end may be None for unbounded)
#: or None for no information.
CallRangeHook = Callable[[Instruction], Optional[tuple]]


def _clamp_hook_range(shape: Shape, rng: Optional[tuple]) -> Interval:
    top = Interval.top(shape)
    if rng is None:
        return top
    lo = top.lo if rng[0] is None else max(int(rng[0]), top.lo)
    hi = top.hi if rng[1] is None else min(int(rng[1]), top.hi)
    if lo > hi:  # contradictory summary — fall back to top
        return top
    return Interval(lo, hi)


class _RangeAnalysis(SparseAnalysis):
    """The transfer functions, bridged onto the sparse solver."""

    def __init__(self, function, call_range: Optional[CallRangeHook]):
        self.function = function
        self.call_range = call_range
        self._phi_state: Dict[int, AbsValue] = {}
        self._phi_grows: Dict[int, int] = {}
        self._header_blocks: Optional[set] = None
        #: When False (narrowing sweeps), phi transfers are plain joins.
        self.widening_enabled = True

    # -- solver interface ---------------------------------------------------

    def top(self):
        return UNDEF

    def initial(self, value: Value):
        return abstract_of_constant(value) or self._initial_opaque(value)

    def _initial_opaque(self, value: Value):
        shape = shape_of(value.type)
        if shape is None:
            return NOINFO
        if isinstance(value, (Argument, UndefValue, Instruction)):
            return AbsValue.top(shape)
        return AbsValue.top(shape)

    def meet(self, a, b):  # pragma: no cover - solver never calls it
        if a is UNDEF:
            return b
        if b is UNDEF or a is NOINFO or b is NOINFO:
            return a
        return a.join(b)

    # -- transfer -----------------------------------------------------------

    def transfer(self, inst: Instruction, get):
        result_shape = shape_of(inst.type)
        if result_shape is None:
            return NOINFO

        if isinstance(inst, PhiNode):
            return self._transfer_phi(inst, get, result_shape)
        if isinstance(inst, BinaryOperator):
            return self._transfer_binary(inst, get, result_shape)
        if isinstance(inst, ShiftInst):
            return self._transfer_shift(inst, get, result_shape)
        if isinstance(inst, CastInst):
            return self._transfer_cast(inst, get, result_shape)
        if isinstance(inst, (CallInst, InvokeInst)):
            if self.call_range is not None:
                interval = _clamp_hook_range(result_shape,
                                             self.call_range(inst))
                return AbsValue(result_shape, interval,
                                KnownBits.top(result_shape[0]))
            return AbsValue.top(result_shape)
        if isinstance(inst, (LoadInst, VAArgInst)):
            return AbsValue.top(result_shape)
        return AbsValue.top(result_shape)

    def _operand(self, value: Value, get, shape: Shape):
        """The operand's fact: an AbsValue of ``shape``, or UNDEF when
        the operand is still optimistically undefined."""
        element = get(value)
        if element is UNDEF:
            return UNDEF
        if element is NOINFO or element.shape != shape:
            return AbsValue.top(shape)
        return element

    def _transfer_binary(self, inst, get, result_shape):
        operand_shape = shape_of(inst.lhs.type)
        if operand_shape is None:
            # Comparison of pointers/floats: all we know is "a bool".
            return AbsValue.top(result_shape)
        a = self._operand(inst.lhs, get, operand_shape)
        b = self._operand(inst.rhs, get, operand_shape)
        if a is UNDEF or b is UNDEF:
            return UNDEF
        interval = interval_binary(inst.opcode, operand_shape,
                                   a.interval, b.interval)
        kb = kb_binary(inst.opcode, operand_shape, a.kb, b.kb)
        return AbsValue.make(result_shape, interval, kb)

    def _transfer_shift(self, inst, get, result_shape):
        amount_shape = shape_of(inst.amount.type)
        a = self._operand(inst.value, get, result_shape)
        amount = self._operand(inst.amount, get, amount_shape)
        if a is UNDEF or amount is UNDEF:
            return UNDEF
        interval = interval_shift(inst.opcode, result_shape,
                                  a.interval, amount.interval)
        kb = kb_shift(inst.opcode, result_shape, a.kb, amount.kb)
        return AbsValue.make(result_shape, interval, kb)

    def _transfer_cast(self, inst, get, result_shape):
        src_shape = shape_of(inst.value.type)
        if src_shape is None:
            return AbsValue.top(result_shape)  # pointer/float source
        a = self._operand(inst.value, get, src_shape)
        if a is UNDEF:
            return UNDEF
        interval = interval_cast(src_shape, result_shape, a.interval)
        kb = kb_cast(src_shape, result_shape, a.kb)
        return AbsValue.make(result_shape, interval, kb)

    def _transfer_phi(self, inst, get, result_shape):
        joined = None
        for value, _block in inst.incoming:
            element = self._operand(value, get, result_shape)
            if element is UNDEF:
                continue  # optimistic: undefined edges contribute nothing
            joined = element if joined is None else joined.join(element)
        if joined is None:
            return UNDEF
        if not self.widening_enabled:
            return joined
        previous = self._phi_state.get(id(inst))
        if previous is not None and joined != previous:
            grows = self._phi_grows.get(id(inst), 0) + 1
            self._phi_grows[id(inst)] = grows
            limit = WIDEN_AFTER if self._in_loop_header(inst) \
                else WIDEN_BACKSTOP
            if grows >= limit:
                smin, smax = shape_bounds(result_shape)
                lo = joined.interval.lo
                hi = joined.interval.hi
                if lo < previous.interval.lo:
                    lo = smin
                if hi > previous.interval.hi:
                    hi = smax
                joined = AbsValue(result_shape, Interval(lo, hi), joined.kb)
        self._phi_state[id(inst)] = joined
        return joined

    def _in_loop_header(self, inst: Instruction) -> bool:
        if self._header_blocks is None:
            info = LoopInfo(self.function)
            self._header_blocks = {id(loop.header)
                                   for loop in info.all_loops()}
        return id(inst.parent) in self._header_blocks


def abstract_of_constant(value: Value) -> Optional[AbsValue]:
    """The exact fact of an integral constant, else None."""
    if isinstance(value, ConstantInt):
        shape = shape_of(value.type)
        if shape is not None:
            return AbsValue.const(shape, value.value)
    if isinstance(value, ConstantBool):
        return AbsValue.const(BOOL_SHAPE, int(value.value))
    return None


class ValueFacts:
    """The queryable result of analyzing one function."""

    def __init__(self, function, elements: Dict[Value, object]):
        self.function = function
        self._elements = elements

    def abs_of(self, value: Value) -> Optional[AbsValue]:
        """The fact for ``value``, or None when nothing is known (not
        integral, untracked, or never reached by the solver)."""
        constant = abstract_of_constant(value)
        if constant is not None:
            return constant
        element = self._elements.get(value)
        if isinstance(element, AbsValue):
            return element
        return None

    def interval_of(self, value: Value) -> Optional[Interval]:
        fact = self.abs_of(value)
        return fact.interval if fact is not None else None

    def knownbits_of(self, value: Value) -> Optional[KnownBits]:
        fact = self.abs_of(value)
        return fact.kb if fact is not None else None

    def is_unreached(self, value: Value) -> bool:
        """True when the solver proved no execution defines ``value``."""
        element = self._elements.get(value)
        if element is UNDEF:
            return True
        # The sparse solver only seeds instructions in CFG-reachable
        # blocks; an instruction it never saw sits in dead code.
        return element is None and isinstance(value, Instruction)

    def contains(self, value: Value, concrete) -> bool:
        """Whether an observed concrete value is admitted by the fact.

        True when nothing is known.  Used by the fuzz oracle: a False
        here is a soundness bug in a transfer function or the solver.
        """
        fact = self.abs_of(value)
        if fact is None:
            return True
        return fact.contains(int(concrete))

    def dump(self) -> list:
        """Human-readable per-value lines, in program order."""
        lines = []
        for block in self.function.blocks:
            for inst in block.instructions:
                fact = self.abs_of(inst)
                if fact is None and not self.is_unreached(inst):
                    continue
                name = inst.name or f"<{inst.opcode.value}>"
                loc = f"  (line {inst.loc})" if inst.loc is not None else ""
                body = "unreached" if self.is_unreached(inst) else (
                    f"{fact.interval} bits={fact.kb}")
                lines.append(f"  %{name}: {body}{loc}")
        return lines


def analyze_function(function, call_range: Optional[CallRangeHook] = None,
                     narrowing_sweeps: int = 2) -> ValueFacts:
    """Run the engine over one function and return its facts."""
    analysis = _RangeAnalysis(function, call_range)
    result = solve_sparse(analysis, function)
    elements = dict(result.values)

    # Narrowing: recompute every transfer against the (post-widening)
    # fixpoint and keep the intersection.  Each sweep is sound on its
    # own, so a fixed small number of sweeps needs no convergence check.
    analysis.widening_enabled = False

    def get(value: Value):
        existing = elements.get(value)
        if existing is not None:
            return existing
        element = analysis.initial(value)
        elements[value] = element
        return element

    for _ in range(max(0, narrowing_sweeps)):
        for block in reverse_postorder(function):
            for inst in block.instructions:
                old = elements.get(inst)
                if not isinstance(old, AbsValue):
                    continue
                new = analysis.transfer(inst, get)
                if isinstance(new, AbsValue):
                    refined = old.intersect(new)
                    elements[inst] = refined if refined is not None else new

    return ValueFacts(function, elements)


class RangeDumpPass:
    """An analysis "pass" (``lc-opt -p ranges`` / ``-analyze ranges``)
    printing every value's interval and known bits with source locs, so
    lint findings and rangeopt folds are debuggable."""

    name = "ranges"

    def __init__(self, stream=None):
        self.stream = stream

    def run_on_function(self, function) -> bool:
        import sys

        stream = self.stream if self.stream is not None else sys.stderr
        facts = analyze_function(function)
        print(f"; value facts for {function.name!r}", file=stream)
        for line in facts.dump():
            print(line, file=stream)
        return False


def analyze_module(module, call_range_for=None) -> Dict[str, ValueFacts]:
    """Facts for every function with a body.

    ``call_range_for(function)`` may supply a per-function
    :data:`CallRangeHook` (e.g. from interprocedural summaries).
    """
    facts = {}
    for function in module.defined_functions():
        hook = call_range_for(function) if call_range_for is not None else None
        facts[function.name] = analyze_function(function, call_range=hook)
    return facts
