"""Call graph construction over a module.

Direct calls produce precise edges; indirect calls (through function
pointers) conservatively edge to every address-taken function of a
compatible type.  The linker/IPO passes (paper section 3.3) consult
this for inlining order, dead-function detection, and Mod/Ref.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.instructions import CallInst, Instruction, InvokeInst, Opcode
from ..core.module import Function, Module
from ..core.values import Constant, ConstantExpr, User


class CallGraphNode:
    """One function's calls and callers."""

    def __init__(self, function: Function):
        self.function = function
        self.callees: list[Function] = []
        self.callers: list[Function] = []
        #: True when the node may be called in ways the graph cannot see
        #: (address taken, external linkage in an open module).
        self.has_unknown_callers = False
        #: True when the function makes calls the graph cannot resolve.
        self.calls_unknown = False


class CallGraph:
    """The module's call graph."""

    def __init__(self, module: Module, assume_closed: bool = False):
        """``assume_closed``: treat the module as a whole program whose
        only outside entry point is ``main`` (the link-time situation of
        paper section 3.3)."""
        self.module = module
        self.nodes: dict[str, CallGraphNode] = {}
        self._address_taken: set[str] = set()
        self._build(assume_closed)

    def _build(self, assume_closed: bool) -> None:
        for function in self.module.functions.values():
            self.nodes[function.name] = CallGraphNode(function)
        for function in self.module.functions.values():
            self._scan_address_taken(function)
        for global_var in self.module.globals.values():
            initializer = global_var.initializer
            if initializer is not None:
                self._scan_constant(initializer)
        for function in self.module.functions.values():
            node = self.nodes[function.name]
            if function.is_declaration:
                node.calls_unknown = True  # body unknown
            for inst in function.instructions():
                if isinstance(inst, (CallInst, InvokeInst)):
                    callee = _direct_callee(inst.callee)
                    if callee is not None and callee.name in self.nodes:
                        self._add_edge(function, callee)
                    else:
                        node.calls_unknown = True
                        # Conservative edges to every address-taken
                        # function with a matching signature.
                        for target_name in self._address_taken:
                            target = self.module.functions.get(target_name)
                            if target is not None and _signature_compatible(
                                inst, target
                            ):
                                self._add_edge(function, target)
        for function in self.module.functions.values():
            node = self.nodes[function.name]
            if function.name in self._address_taken:
                node.has_unknown_callers = True
            if not function.is_internal and not (
                assume_closed and function.name != "main"
            ):
                node.has_unknown_callers = True
        if assume_closed:
            main = self.module.functions.get("main")
            if main is not None:
                self.nodes[main.name].has_unknown_callers = True

    def _scan_address_taken(self, function: Function) -> None:
        for inst in function.instructions():
            for index, operand in enumerate(inst.operands):
                if isinstance(operand, Function):
                    is_callee = (
                        inst.opcode in (Opcode.CALL, Opcode.INVOKE) and index == 0
                    )
                    if not is_callee:
                        self._address_taken.add(operand.name)
                elif isinstance(operand, ConstantExpr):
                    self._scan_constant(operand)

    def _scan_constant(self, constant: Constant) -> None:
        worklist: list[Constant] = [constant]
        while worklist:
            current = worklist.pop()
            if isinstance(current, Function):
                self._address_taken.add(current.name)
                continue
            for operand in getattr(current, "operands", ()):
                if isinstance(operand, Constant):
                    worklist.append(operand)

    def _add_edge(self, caller: Function, callee: Function) -> None:
        caller_node = self.nodes[caller.name]
        callee_node = self.nodes[callee.name]
        if callee not in caller_node.callees:
            caller_node.callees.append(callee)
        if caller not in callee_node.callers:
            callee_node.callers.append(caller)

    # -- queries --------------------------------------------------------------

    def node(self, function: Function) -> CallGraphNode:
        return self.nodes[function.name]

    def is_address_taken(self, function: Function) -> bool:
        return function.name in self._address_taken

    def post_order(self) -> list[Function]:
        """Functions in callee-before-caller order (cycles broken arbitrarily).

        The natural order for bottom-up transforms like inlining.
        """
        visited: set[str] = set()
        order: list[Function] = []
        for root in self.module.functions.values():
            if root.name in visited:
                continue
            stack: list[tuple[Function, Iterator[Function]]] = []
            visited.add(root.name)
            stack.append((root, iter(self.nodes[root.name].callees)))
            while stack:
                function, callees = stack[-1]
                advanced = False
                for callee in callees:
                    if callee.name not in visited:
                        visited.add(callee.name)
                        stack.append((callee, iter(self.nodes[callee.name].callees)))
                        advanced = True
                        break
                if not advanced:
                    order.append(function)
                    stack.pop()
        return order


def strongly_connected_components(edges: dict) -> list[list]:
    """Tarjan's SCC over a name graph, callee-first (reverse topological).

    ``edges`` maps a node to its successors; successors that are not
    themselves keys (external/unknown targets) are ignored.  The output
    order is the natural schedule for bottom-up interprocedural work:
    by the time an SCC is processed, every callee SCC already was.
    Iterative, so pathological call chains cannot blow the recursion
    limit.
    """
    index: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    components: list[list] = []
    counter = [0]

    def strongconnect(root) -> None:
        work = [(root, iter(edges.get(root, ())))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in edges:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(edges.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is node or member == node:
                        break
                components.append(component)

    for node in edges:
        if node not in index:
            strongconnect(node)
    return components


def _direct_callee(callee) -> Optional[Function]:
    if isinstance(callee, Function):
        return callee
    if isinstance(callee, ConstantExpr) and callee.opcode == "cast":
        inner = callee.operands[0]
        if isinstance(inner, Function):
            return inner
    return None


def _signature_compatible(call_site, function: Function) -> bool:
    fn_ty = function.function_type
    args = call_site.args
    if fn_ty.is_vararg:
        return len(args) >= len(fn_ty.params)
    if len(args) != len(fn_ty.params):
        return False
    return all(a.type is p for a, p in zip(args, fn_ty.params))
