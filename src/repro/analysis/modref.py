"""Mod/Ref analysis: which memory a call may read or write.

Sits on top of the call graph and DSA (paper section 3.3 lists
"Mod/Ref analysis" among the link-time interprocedural analyses):
a function's Mod and Ref sets are the DSA nodes it stores to / loads
from, closed transitively over callees; unknown callees mod/ref
everything.
"""

from __future__ import annotations

from typing import Optional

from ..core.instructions import (
    CallInst, FreeInst, InvokeInst, LoadInst, StoreInst,
)
from ..core.module import Function, Module
from .callgraph import CallGraph
from .dsa import DataStructureAnalysis


class ModRefInfo:
    __slots__ = ("mods", "refs", "mod_unknown", "ref_unknown")

    def __init__(self):
        #: DSNodes (stored by representative at insert time; queries
        #: re-resolve through find() so later unifications stay sound).
        self.mods: dict[int, object] = {}
        self.refs: dict[int, object] = {}
        self.mod_unknown = False
        self.ref_unknown = False


class ModRefAnalysis:
    """Per-function Mod/Ref node sets for one module."""

    def __init__(self, module: Module,
                 dsa: Optional[DataStructureAnalysis] = None):
        self.module = module
        self.dsa = dsa or DataStructureAnalysis(module)
        self.info: dict[str, ModRefInfo] = {}
        self._compute()

    def _compute(self) -> None:
        callgraph = CallGraph(self.module)
        for function in self.module.functions.values():
            info = ModRefInfo()
            if function.is_declaration:
                info.mod_unknown = True
                info.ref_unknown = True
            self.info[function.name] = info
        for function in self.module.defined_functions():
            info = self.info[function.name]
            for inst in function.instructions():
                if isinstance(inst, StoreInst):
                    node = self._node_of(inst.pointer)
                    info.mods[node.node_id] = node
                elif isinstance(inst, LoadInst):
                    node = self._node_of(inst.pointer)
                    info.refs[node.node_id] = node
                elif isinstance(inst, FreeInst):
                    node = self._node_of(inst.pointer)
                    info.mods[node.node_id] = node
        # Transitive closure over the call graph, to a fixpoint.
        changed = True
        while changed:
            changed = False
            for function in self.module.defined_functions():
                info = self.info[function.name]
                node = callgraph.node(function)
                if node.calls_unknown and not (info.mod_unknown and info.ref_unknown):
                    info.mod_unknown = True
                    info.ref_unknown = True
                    changed = True
                for callee in node.callees:
                    callee_info = self.info[callee.name]
                    before = (len(info.mods), len(info.refs),
                              info.mod_unknown, info.ref_unknown)
                    info.mods.update(callee_info.mods)
                    info.refs.update(callee_info.refs)
                    info.mod_unknown |= callee_info.mod_unknown
                    info.ref_unknown |= callee_info.ref_unknown
                    after = (len(info.mods), len(info.refs),
                             info.mod_unknown, info.ref_unknown)
                    if before != after:
                        changed = True

    def _node_of(self, pointer):
        return self.dsa._cell_of(pointer).node.find()

    def _hits(self, pointer, nodes: dict[int, object]) -> bool:
        target = self._node_of(pointer)
        return any(node.find() is target for node in nodes.values())

    # -- queries ------------------------------------------------------------

    def may_modify(self, function: Function, pointer) -> bool:
        """May a call to ``function`` write the memory ``pointer`` names?"""
        info = self.info[function.name]
        if info.mod_unknown:
            return True
        return self._hits(pointer, info.mods)

    def may_reference(self, function: Function, pointer) -> bool:
        """May a call to ``function`` read the memory ``pointer`` names?"""
        info = self.info[function.name]
        if info.ref_unknown:
            return True
        return self._hits(pointer, info.refs)
