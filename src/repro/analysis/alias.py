"""Basic alias analysis: cheap, local, IR-structural rules.

The fast path used by scalar transforms when a full DSA solve is not
warranted.  Pointers are resolved to (base object, byte offset) by
walking pointer casts and constant-index GEPs; two accesses with the
same base and disjoint constant ranges cannot alias, distinct
identified objects (allocations, globals) never alias, and null
aliases nothing.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..core.datalayout import DataLayout, DEFAULT
from ..core.instructions import (
    AllocationInst, CastInst, GetElementPtrInst,
)
from ..core.module import GlobalVariable
from ..core.values import ConstantInt, ConstantPointerNull, Value


class AliasResult(enum.Enum):
    NO_ALIAS = "no"
    MAY_ALIAS = "may"
    MUST_ALIAS = "must"


def resolve_base(pointer: Value,
                 layout: DataLayout = DEFAULT) -> tuple[Value, Optional[int]]:
    """Strip pointer casts and GEPs down to (base, byte offset).

    The offset is None when any step uses a variable index.
    """
    offset: Optional[int] = 0
    depth = 0
    while depth < 64:
        depth += 1
        if isinstance(pointer, CastInst) and pointer.value.type.is_pointer:
            pointer = pointer.value
            continue
        if isinstance(pointer, GetElementPtrInst):
            if offset is not None:
                step = _gep_byte_offset(pointer, layout)
                offset = None if step is None else offset + step
            pointer = pointer.pointer
            continue
        return pointer, offset
    return pointer, None


def _gep_byte_offset(gep: GetElementPtrInst,
                     layout: DataLayout) -> Optional[int]:
    total = 0
    current = gep.pointer.type.pointee
    for position, index in enumerate(gep.indices):
        if not isinstance(index, ConstantInt):
            return None
        if position == 0:
            total += index.value * layout.size_of(current)
        elif current.is_struct:
            total += layout.field_offset(current, index.value)
            current = current.fields[index.value]
        else:
            total += index.value * layout.size_of(current.element)
            current = current.element
    return total


def _is_identified_object(value: Value) -> bool:
    """An object whose address is unique: allocation or global."""
    return isinstance(value, (AllocationInst, GlobalVariable))


def _access_size(pointer: Value, layout: DataLayout) -> int:
    pointee = pointer.type.pointee
    if pointee.is_first_class:
        return layout.size_of(pointee)
    return 1  # aggregates: byte-level conservatism on range checks


def alias(a: Value, b: Value, layout: DataLayout = DEFAULT) -> AliasResult:
    """May the two pointers address overlapping memory?"""
    if a is b:
        return AliasResult.MUST_ALIAS
    if isinstance(a, ConstantPointerNull) or isinstance(b, ConstantPointerNull):
        return AliasResult.NO_ALIAS
    base_a, offset_a = resolve_base(a, layout)
    base_b, offset_b = resolve_base(b, layout)
    if base_a is base_b:
        if offset_a is None or offset_b is None:
            return AliasResult.MAY_ALIAS
        if offset_a == offset_b:
            size_a = _access_size(a, layout)
            size_b = _access_size(b, layout)
            return (AliasResult.MUST_ALIAS if size_a == size_b
                    else AliasResult.MAY_ALIAS)
        size_a = _access_size(a, layout)
        size_b = _access_size(b, layout)
        if offset_a + size_a <= offset_b or offset_b + size_b <= offset_a:
            return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS
    # Two different identified objects cannot overlap; and nothing
    # escapes into a *fresh* allocation's address before it exists.
    if _is_identified_object(base_a) and _is_identified_object(base_b):
        return AliasResult.NO_ALIAS
    return AliasResult.MAY_ALIAS
