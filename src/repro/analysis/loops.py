"""Natural loop detection: back edges, loop bodies, and the nesting forest.

Used by LICM, the profiling instrumenter (the paper's code generator
inserts light-weight instrumentation to detect frequently executed
*loop regions*), and the trace-formation runtime optimizer.
"""

from __future__ import annotations

from typing import Optional

from ..core.basicblock import BasicBlock
from ..core.module import Function
from .dominators import DominatorTree


class Loop:
    """One natural loop: a header plus the blocks of all its back edges."""

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: list[BasicBlock] = [header]
        self._block_ids: set[int] = {id(header)}
        self.parent: Optional[Loop] = None
        self.children: list[Loop] = []
        #: Source blocks of back edges (latches).
        self.latches: list[BasicBlock] = []

    def contains(self, block: BasicBlock) -> bool:
        return id(block) in self._block_ids

    def add_block(self, block: BasicBlock) -> None:
        if id(block) not in self._block_ids:
            self._block_ids.add(id(block))
            self.blocks.append(block)

    @property
    def depth(self) -> int:
        depth = 1
        current = self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    def exit_edges(self) -> list[tuple[BasicBlock, BasicBlock]]:
        """Edges leaving the loop: (inside block, outside successor)."""
        result = []
        for block in self.blocks:
            for succ in block.successors():
                if not self.contains(succ):
                    result.append((block, succ))
        return result

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header whose only
        successor is the header, if one exists."""
        outside = [p for p in self.header.unique_predecessors() if not self.contains(p)]
        if len(outside) == 1 and outside[0].successors() == [self.header]:
            return outside[0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop header={self.header.name!r} blocks={len(self.blocks)}>"


class LoopInfo:
    """The loop nesting forest of a function."""

    def __init__(self, function: Function, domtree: Optional[DominatorTree] = None):
        self.function = function
        self.domtree = domtree or DominatorTree(function)
        self.top_level: list[Loop] = []
        self._loop_of: dict[int, Loop] = {}  # innermost loop per block
        self._discover()

    def _discover(self) -> None:
        domtree = self.domtree
        headers: dict[int, Loop] = {}
        # Find back edges: an edge a->h where h dominates a.
        for block in domtree.preorder():
            for succ in block.successors():
                if domtree.dominates_block(succ, block):
                    loop = headers.get(id(succ))
                    if loop is None:
                        loop = Loop(succ)
                        headers[id(succ)] = loop
                    loop.latches.append(block)
        # Fill loop bodies: walk backwards from each latch to the header.
        for loop in headers.values():
            worklist = [l for l in loop.latches if l is not loop.header]
            while worklist:
                block = worklist.pop()
                if loop.contains(block):
                    continue
                loop.add_block(block)
                for pred in block.unique_predecessors():
                    if domtree.is_reachable(pred) and pred is not loop.header:
                        worklist.append(pred)
        # Build the nesting forest (smaller loops nest inside larger).
        loops = sorted(headers.values(), key=lambda l: len(l.blocks))
        for loop in loops:
            for block in loop.blocks:
                if id(block) not in self._loop_of:
                    self._loop_of[id(block)] = loop
        for loop in loops:
            header_owner = self._loop_of.get(id(loop.header))
            # The innermost loop of the header is this loop itself; the
            # parent is the innermost *other* loop containing the header.
            candidates = [
                other for other in loops
                if other is not loop and other.contains(loop.header)
            ]
            if candidates:
                parent = min(candidates, key=lambda l: len(l.blocks))
                loop.parent = parent
                parent.children.append(loop)
            else:
                self.top_level.append(loop)

    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing ``block``, if any."""
        return self._loop_of.get(id(block))

    def all_loops(self) -> list[Loop]:
        result = []
        worklist = list(self.top_level)
        while worklist:
            loop = worklist.pop()
            result.append(loop)
            worklist.extend(loop.children)
        return result

    def depth_of(self, block: BasicBlock) -> int:
        loop = self.loop_for(block)
        return loop.depth if loop is not None else 0
