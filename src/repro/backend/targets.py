"""Target descriptions and byte-accurate instruction encoders.

Two simulated targets, mirroring the paper's evaluation machines
(section 4.1.3 / Figure 5):

* **x86-like** — a CISC with a dense, variable-width encoding
  (two-address ALU operations, 1-byte ret, short immediate forms) and a
  small register file (8 registers, 6 allocatable);
* **sparc-like** — a classic 32-bit-fixed-width RISC with a large
  register file (24 allocatable) where wide immediates take a
  ``sethi``/``or`` pair, memory offsets beyond 13 bits need address
  arithmetic, and control transfers expose a delay slot (filled with a
  ``nop`` by this simple code generator).

The encoders produce deterministic byte sequences whose *lengths* model
the real ISAs; they are consumed by the Figure 5 size benchmark and the
object-file writer, not executed.
"""

from __future__ import annotations

from ..backend.machine import (
    MachineFunction, MachineInstr, MOp, is_phys, phys_number,
)
from .regalloc import FRAME_REG

_EAX = -1  # phys(0): the return-value register

_CC_CODES = {"eq": 0, "ne": 1, "lt": 2, "gt": 3, "le": 4, "ge": 5,
             # Unsigned flavours (x86 jb/ja/jbe/jae, sparc bcs/bgu/...).
             "ult": 6, "ugt": 7, "ule": 8, "uge": 9,
             # Floating-point flavours (compare in the FP unit).
             "flt": 10, "fgt": 11, "fle": 12, "fge": 13}
_ALU_CODES = {"add": 0, "sub": 1, "mul": 2, "div": 3, "rem": 4,
              "and": 5, "or": 6, "xor": 7, "shl": 8, "shr": 9}


def _reg(reg: int) -> int:
    """Physical register number for encoding (frame pointer = 7/30)."""
    if reg == FRAME_REG:
        return 0x1E
    if is_phys(reg):
        return phys_number(reg)
    raise ValueError(f"unallocated virtual register v{reg} reached encoding")


class Target:
    """Base target interface."""

    name: str
    num_registers: int

    def encode_function(self, machine_fn: MachineFunction) -> bytes:
        body = bytearray()
        body += self.prologue(machine_fn)
        # Branch targets: two-pass (sizes first, then final bytes) would
        # be needed for exact displacements; both encoders use fixed
        # displacement widths, so one sizing pass suffices.  A jump to
        # the block laid out immediately after it is a fallthrough and
        # costs nothing.
        fallthrough: dict[int, int] = {}
        for position, block in enumerate(machine_fn.blocks[:-1]):
            if block.instructions:
                last = block.instructions[-1]
                if (last.op == MOp.JMP
                        and last.block is machine_fn.blocks[position + 1]):
                    fallthrough[id(last)] = position
        offsets: dict[int, int] = {}
        cursor = len(body)
        sizes: list[int] = []
        for block in machine_fn.blocks:
            offsets[id(block)] = cursor
            for instr in block.instructions:
                if id(instr) in fallthrough:
                    size = 0
                else:
                    size = len(self.encode_instr(instr, 0))
                sizes.append(size)
                cursor += size
        index = 0
        for block in machine_fn.blocks:
            for instr in block.instructions:
                if id(instr) in fallthrough:
                    index += 1
                    continue
                target_offset = 0
                if instr.block is not None:
                    target_offset = offsets[id(instr.block)] - (len(body) + sizes[index])
                encoded = self.encode_instr(instr, target_offset)
                assert len(encoded) == sizes[index], "unstable encoding size"
                body += encoded
                index += 1
        body += self.epilogue(machine_fn)
        return bytes(body)

    def prologue(self, machine_fn: MachineFunction) -> bytes:
        raise NotImplementedError

    def epilogue(self, machine_fn: MachineFunction) -> bytes:
        raise NotImplementedError

    def encode_instr(self, instr: MachineInstr, displacement: int) -> bytes:
        raise NotImplementedError


def _fits(value: int, bits: int) -> bool:
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


class X86LikeTarget(Target):
    """Variable-width CISC encoding (sizes modelled on IA-32)."""

    name = "x86"
    num_registers = 8  # 5 allocatable + 3 scratch; FP/SP live outside
    #: Reg-mem instruction forms: spilled operands fold into the
    #: consuming instruction (see LinearScanAllocator).
    folds_memory = True

    # Encoding helpers: the byte *contents* are synthetic, the *lengths*
    # follow IA-32 conventions.

    def prologue(self, machine_fn: MachineFunction) -> bytes:
        # push ebp; mov ebp, esp; sub esp, frame
        out = b"\x55" + b"\x89\xe5"
        if machine_fn.frame_size:
            if _fits(machine_fn.frame_size, 8):
                out += b"\x83\xec" + bytes([machine_fn.frame_size & 0xFF])
            else:
                out += b"\x81\xec" + machine_fn.frame_size.to_bytes(4, "little", signed=True)
        return out

    def epilogue(self, machine_fn: MachineFunction) -> bytes:
        return b"\xc9\xc3"  # leave; ret

    def encode_instr(self, instr: MachineInstr, displacement: int) -> bytes:
        encoded = self._encode_core(instr, displacement)
        if instr.mem_src is not None:
            # A folded memory operand turns a reg-reg form into reg-mem:
            # same opcode/modrm, plus the frame displacement bytes.
            disp = instr.mem_src[1]
            encoded += b"\x00" if _fits(disp, 8) else b"\x00\x00\x00\x00"
        return encoded

    def _encode_core(self, instr: MachineInstr, displacement: int) -> bytes:
        op = instr.op
        if op == MOp.MOV:
            return bytes([0x89, _modrm(instr.dst, instr.srcs[0])])
        if op == MOp.LI:
            if _fits(instr.imm, 32):
                return bytes([0xB8 + (_reg(instr.dst) & 7)]) + _imm32(instr.imm)
            return b"\x48" + bytes([0xB8 + (_reg(instr.dst) & 7)]) + _imm64(instr.imm)
        if op == MOp.LF:
            # movsd xmm, [rip+disp32]: 8 bytes + pool entry accounted in data
            return b"\xf2\x0f\x10" + b"\x05" + b"\x00\x00\x00\x00"
        if op == MOp.LA:
            return bytes([0xB8 + (_reg(instr.dst) & 7)]) + b"\x00\x00\x00\x00"
        if op == MOp.ALU:
            # Two-address machine: mov dst, a (2 bytes) when dst != a,
            # then op dst, b (2 bytes; mul/div are longer).
            base = b"" if instr.dst == instr.srcs[0] else bytes(
                [0x89, _modrm(instr.dst, instr.srcs[0])]
            )
            if instr.sub in ("mul", "div", "rem"):
                return base + bytes([0x0F, 0xAF, _modrm(instr.dst, instr.srcs[1])])
            if instr.sub in ("shl", "shr"):
                return base + bytes([0xD3, _modrm(instr.dst, instr.srcs[1])])
            return base + bytes([0x01 + _ALU_CODES[instr.sub],
                                 _modrm(instr.dst, instr.srcs[1])])
        if op == MOp.ALUI:
            base = b"" if instr.dst == instr.srcs[0] else bytes(
                [0x89, _modrm(instr.dst, instr.srcs[0])]
            )
            if _fits(instr.imm, 8):
                return base + bytes([0x83, _modrm(instr.dst, instr.dst),
                                     instr.imm & 0xFF])
            return base + bytes([0x81, _modrm(instr.dst, instr.dst)]) + _imm32(instr.imm)
        if op == MOp.CVT:
            src_desc, dst_desc = instr.sub.split(":")
            if "f" in (src_desc[0], dst_desc[0]):
                # cvtsi2sd/cvttsd2si/cvtss2sd family: prefix + 0F escape
                # + opcode + modrm (+ REX.W for 64-bit integer halves).
                return b"\x48\xf2\x0f\x2a" + bytes(
                    [_modrm(instr.dst, instr.srcs[0])])
            if int(dst_desc[1]) > int(src_desc[1]):
                # movsx/movzx r64, r/m: REX.W + 0F BE/B6 + modrm.
                widen = 0xBE if src_desc[0] == "s" else 0xB6
                return b"\x48\x0f" + bytes(
                    [widen, _modrm(instr.dst, instr.srcs[0])])
            # Narrowing / same-width resign: movzx/movsx from the
            # subregister (no REX needed below 64 bits).
            widen = 0xBE if dst_desc[0] == "s" else 0xB6
            return bytes([0x0F, widen, _modrm(instr.dst, instr.srcs[0])])
        if op == MOp.LOAD:
            return self._memory(0x8B, instr.dst, instr.srcs[0], instr.imm)
        if op == MOp.STORE:
            return self._memory(0x89, instr.srcs[0], instr.srcs[1], instr.imm)
        if op == MOp.LOADG:
            # mov reg, [disp32]: opcode + modrm + abs32
            return bytes([0x8B, (_reg(instr.dst) & 7) << 3 | 0x05]) + _imm32(instr.imm)
        if op == MOp.STOREG:
            return bytes([0x89, (_reg(instr.srcs[0]) & 7) << 3 | 0x05]) + _imm32(instr.imm)
        if op == MOp.LOADX:
            return self._sib_memory(0x8B, instr.dst, instr.srcs[0],
                                    instr.srcs[1], int(instr.sub), instr.imm)
        if op == MOp.STOREX:
            return self._sib_memory(0x89, instr.srcs[0], instr.srcs[1],
                                    instr.srcs[2], int(instr.sub), instr.imm)
        if op == MOp.SETCC:
            # cmp a, b (2) + setcc dst (3) + movzx (3)
            return (bytes([0x39, _modrm(instr.srcs[0], instr.srcs[1])])
                    + bytes([0x0F, 0x90 + _CC_CODES[instr.sub], 0xC0])
                    + bytes([0x0F, 0xB6, 0xC0]))
        if op == MOp.CMPBR:
            # cmp a, b (2) + jcc rel32 (6)
            return (bytes([0x39, _modrm(instr.srcs[0], instr.srcs[1])])
                    + bytes([0x0F, 0x80 + _CC_CODES[instr.sub]])
                    + _imm32(displacement))
        if op == MOp.JMP:
            return b"\xE9" + _imm32(displacement)
        if op == MOp.ARG:
            return bytes([0x50 + (_reg(instr.srcs[0]) & 7)])  # push reg
        if op == MOp.GETARG:
            # mov reg, [ebp + 8 + 8*i]
            return self._memory(0x8B, instr.dst, FRAME_REG, 8 + 8 * instr.imm)
        if op == MOp.CALL:
            return b"\xE8\x00\x00\x00\x00"
        if op == MOp.CALLR:
            return bytes([0xFF, 0xD0 + (_reg(instr.srcs[0]) & 7)])
        if op == MOp.GETRET:
            return bytes([0x89, _modrm(instr.dst, _EAX)])  # mov dst, eax
        if op == MOp.SETRET:
            return bytes([0x89, _modrm(_EAX, instr.srcs[0])])  # mov eax, src
        if op == MOp.RET:
            return b"\xc9\xc3"  # leave; ret
        if op == MOp.UNWIND:
            return b"\xE8\x00\x00\x00\x00"
        raise ValueError(f"cannot encode {instr!r}")

    def _memory(self, opcode: int, reg: int, base: int, disp: int) -> bytes:
        head = bytes([opcode, _modrm(reg, base)])
        if disp == 0:
            return head
        if _fits(disp, 8):
            return head + bytes([disp & 0xFF])
        return head + _imm32(disp)

    def _sib_memory(self, opcode: int, reg: int, base: int, index: int,
                    scale: int, disp: int) -> bytes:
        scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[scale]
        sib = (scale_bits << 6) | ((_reg(index) & 7) << 3) | (_reg(base) & 7)
        head = bytes([opcode, ((_reg(reg) & 7) << 3) | 0x04, sib])
        if disp == 0:
            return head
        if _fits(disp, 8):
            return head + bytes([disp & 0xFF])
        return head + _imm32(disp)


def _modrm(a, b) -> int:
    return 0xC0 | ((_reg(a) & 7) << 3) | (_reg(b) & 7)


def _imm32(value: int) -> bytes:
    return (value & 0xFFFFFFFF).to_bytes(4, "little")


def _imm64(value: int) -> bytes:
    return (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")


class SparcLikeTarget(Target):
    """Fixed 32-bit-word RISC encoding with delay slots."""

    name = "sparc"
    num_registers = 26  # 24 allocatable + 2 scratch

    _WORD = 4

    def _word(self, *fields: int) -> bytes:
        value = 0
        for field in fields:
            value = (value << 8) ^ (field & 0xFF)
        return (value & 0xFFFFFFFF).to_bytes(4, "big")

    def _words(self, count: int, tag: int) -> bytes:
        return b"".join(self._word(tag, i, 0, 0) for i in range(count))

    def prologue(self, machine_fn: MachineFunction) -> bytes:
        # save %sp, -frame, %sp — plus an extra add when the frame is
        # too large for the 13-bit immediate.
        if machine_fn.frame_size and not _fits(-machine_fn.frame_size - 96, 13):
            return self._words(3, 0x9D)
        return self._word(0x9D, 0xE3, 0xBF, 0x98)

    def epilogue(self, machine_fn: MachineFunction) -> bytes:
        return b""  # ret/restore emitted by RET

    def encode_instr(self, instr: MachineInstr, displacement: int) -> bytes:
        op = instr.op
        if op == MOp.MOV:
            return self._word(0x01, _reg(instr.dst), _reg(instr.srcs[0]), 0)
        if op == MOp.LI:
            if _fits(instr.imm, 13):
                return self._word(0x02, _reg(instr.dst), instr.imm & 0xFF,
                                  (instr.imm >> 8) & 0xFF)
            if _fits(instr.imm, 32):
                return self._words(2, 0x03)  # sethi + or
            return self._words(6, 0x04)      # full 64-bit materialisation
        if op == MOp.LF:
            # sethi+or address, then load: 3 words.
            return self._words(3, 0x05)
        if op == MOp.LA:
            return self._words(2, 0x06)  # sethi + or against relocation
        if op == MOp.ALU:
            code = _ALU_CODES[instr.sub]
            if instr.sub in ("div", "rem"):
                # wr %y + divide + (rem: extra mul/sub): 3-4 words.
                return self._words(4 if instr.sub == "rem" else 3, 0x10 + code)
            return self._word(0x10 + code, _reg(instr.dst),
                              _reg(instr.srcs[0]), _reg(instr.srcs[1]))
        if op == MOp.ALUI:
            code = _ALU_CODES[instr.sub]
            if instr.sub in ("div", "rem"):
                extra = 4 if instr.sub == "rem" else 3
                if not _fits(instr.imm, 13):
                    extra += 2
                return self._words(extra, 0x20 + code)
            if _fits(instr.imm, 13):
                return self._word(0x20 + code, _reg(instr.dst),
                                  _reg(instr.srcs[0]), instr.imm & 0xFF)
            if instr.sub == "mul":
                return self._words(3, 0x20 + code)  # sethi+or+mul
            return self._words(3, 0x20 + code)
        if op == MOp.CVT:
            # Integer resize: shift-pair (sll+sra/srl); FP converts go
            # through the FP unit (move + fitod/fdtoi): 2 words either way.
            tag = 0x71 if "f" in instr.sub else 0x70
            return self._words(2, tag)
        if op == MOp.LOAD:
            if _fits(instr.imm, 13):
                return self._word(0x30, _reg(instr.dst), _reg(instr.srcs[0]),
                                  instr.imm & 0xFF)
            return self._words(3, 0x31)  # sethi/or/ld
        if op == MOp.STORE:
            if _fits(instr.imm, 13):
                return self._word(0x32, _reg(instr.srcs[0]),
                                  _reg(instr.srcs[1]), instr.imm & 0xFF)
            return self._words(3, 0x33)
        if op in (MOp.LOADG, MOp.STOREG):
            # sethi %hi(sym), r; ld/st [r + %lo(sym+disp)]: 2 words.
            return self._words(2, 0x34)
        if op in (MOp.LOADX, MOp.STOREX):
            # scale shift (unless x1) + optional disp add + ld/st [r+r].
            words = 2 if instr.sub != "1" else 1
            if instr.imm:
                words += 1
            return self._words(words, 0x35)
        if op == MOp.SETCC:
            # subcc + two conditional moves: 3 words.
            return self._words(3, 0x40 + _CC_CODES[instr.sub])
        if op == MOp.CMPBR:
            # subcc + bcc + delay-slot nop: 3 words.
            return self._words(3, 0x50 + _CC_CODES[instr.sub])
        if op == MOp.JMP:
            # ba + delay slot: 2 words.
            return self._words(2, 0x60)
        if op == MOp.ARG:
            return self._word(0x61, _reg(instr.srcs[0]), instr.imm & 0xFF, 0)
        if op == MOp.GETARG:
            return self._word(0x62, _reg(instr.dst), instr.imm & 0xFF, 0)
        if op == MOp.CALL:
            return self._words(2, 0x63)  # call + delay slot
        if op == MOp.CALLR:
            return self._words(2, 0x64)  # jmpl + delay slot
        if op == MOp.GETRET:
            return self._word(0x65, _reg(instr.dst), 0, 0)
        if op == MOp.SETRET:
            return self._word(0x66, _reg(instr.srcs[0]), 0, 0)
        if op == MOp.RET:
            return self._words(2, 0x67)  # ret + restore
        if op == MOp.UNWIND:
            return self._words(2, 0x68)
        raise ValueError(f"cannot encode {instr!r}")


X86 = X86LikeTarget()
SPARC = SparcLikeTarget()
