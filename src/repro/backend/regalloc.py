"""Linear-scan register allocation over machine IR.

Live intervals are computed on the linearised instruction order (one
interval per vreg, from first def to last use — conservative across
loops by extending intervals that cross backward branches to the loop
end).  Allocation follows Poletto–Sarkar linear scan: spill the active
interval with the furthest end when pressure exceeds the register file.
Spilled vregs get frame slots; every use/def is rewritten through one
of two reserved scratch registers.
"""

from __future__ import annotations

from typing import Optional

from .machine import MachineFunction, MachineInstr, MOp, phys


class _Interval:
    __slots__ = ("vreg", "start", "end", "assigned", "slot")

    def __init__(self, vreg: int, start: int):
        self.vreg = vreg
        self.start = start
        self.end = start
        self.assigned: Optional[int] = None  # physical register number
        self.slot: Optional[int] = None      # frame slot if spilled


class LinearScanAllocator:
    """Allocates one machine function against a register budget."""

    #: Operations whose *last* register source may read straight from a
    #: frame slot on a CISC target (x86 reg-mem instruction forms).
    FOLDABLE = (MOp.ALU, MOp.ALUI, MOp.SETCC, MOp.CMPBR, MOp.MOV,
                MOp.SETRET, MOp.ARG)

    def __init__(self, num_registers: int, fold_memory_operands: bool = False):
        if num_registers < 4:
            raise ValueError("need at least 4 registers (3 reserved for spills)")
        #: Three registers are reserved as spill scratch (a store with a
        #: scaled-index addressing mode has three register sources).
        self.allocatable = num_registers - 3
        self.scratch = (num_registers - 3, num_registers - 2, num_registers - 1)
        #: CISC targets read one spilled operand per instruction directly
        #: from memory instead of reloading through a scratch register.
        self.fold_memory_operands = fold_memory_operands

    def run(self, machine_fn: MachineFunction) -> None:
        order: list[MachineInstr] = []
        block_spans: list[tuple[int, int]] = []
        for block in machine_fn.blocks:
            start = len(order)
            order.extend(block.instructions)
            block_spans.append((start, len(order)))

        intervals = self._build_intervals(machine_fn, order, block_spans)
        spilled = self._allocate(intervals)
        self._rewrite(machine_fn, intervals, spilled)

    # -- intervals -----------------------------------------------------------

    def _build_intervals(self, machine_fn: MachineFunction,
                         order: list[MachineInstr],
                         block_spans: list[tuple[int, int]]) -> dict[int, _Interval]:
        intervals: dict[int, _Interval] = {}
        for index, instr in enumerate(order):
            for reg in instr.registers():
                interval = intervals.get(reg)
                if interval is None:
                    intervals[reg] = _Interval(reg, index)
                else:
                    interval.end = index
        # Loop-safety: a vreg live across a backward branch must stay
        # live through the whole loop body.  Find backward edges and
        # extend any interval overlapping [target, branch] to the branch.
        block_starts = {
            id(machine_fn.blocks[i]): span[0]
            for i, span in enumerate(block_spans)
        }
        for index, instr in enumerate(order):
            if instr.block is not None:
                target_start = block_starts.get(id(instr.block))
                if target_start is not None and target_start <= index:
                    # Any value live anywhere inside [target, branch] may
                    # be read again on the next trip around the loop, so
                    # its register must stay untouched until the branch.
                    # That includes intervals *starting* inside the span:
                    # a phi copy materialised in a block the layout put
                    # after the loop head starts mid-loop yet is carried
                    # across the back edge.
                    for interval in intervals.values():
                        if interval.start <= index and interval.end >= target_start:
                            interval.end = max(interval.end, index)
        return intervals

    # -- allocation ------------------------------------------------------------

    def _allocate(self, intervals: dict[int, _Interval]) -> list[_Interval]:
        ordered = sorted(intervals.values(), key=lambda i: i.start)
        free = list(range(self.allocatable))
        active: list[_Interval] = []
        spilled: list[_Interval] = []
        next_slot = 0
        for interval in ordered:
            still_active = []
            for candidate in active:
                if candidate.end >= interval.start:
                    still_active.append(candidate)
                else:
                    free.append(candidate.assigned)
            active = still_active
            if free:
                interval.assigned = free.pop()
                active.append(interval)
                continue
            victim = max(active, key=lambda a: a.end)
            if victim.end > interval.end:
                interval.assigned = victim.assigned
                victim.assigned = None
                victim.slot = next_slot
                next_slot += 1
                spilled.append(victim)
                active.remove(victim)
                active.append(interval)
            else:
                interval.slot = next_slot
                next_slot += 1
                spilled.append(interval)
        return spilled

    # -- rewriting ----------------------------------------------------------------

    def _rewrite(self, machine_fn: MachineFunction,
                 intervals: dict[int, _Interval],
                 spilled: list[_Interval]) -> None:
        slot_of = {interval.vreg: interval.slot for interval in spilled}
        alloc_of = {
            interval.vreg: interval.assigned
            for interval in intervals.values()
            if interval.assigned is not None
        }
        spill_base = machine_fn.frame_size
        machine_fn.frame_size = spill_base + 8 * len(spilled)

        for block in machine_fn.blocks:
            rewritten: list[MachineInstr] = []
            for instr in block.instructions:
                scratch_iter = iter(self.scratch)
                loads: list[MachineInstr] = []
                stores: list[MachineInstr] = []
                new_srcs = []
                folded_index = None
                if self.fold_memory_operands and instr.op in self.FOLDABLE:
                    # Fold the last spilled source into a memory operand.
                    for position in range(len(instr.srcs) - 1, -1, -1):
                        if instr.srcs[position] in slot_of:
                            folded_index = position
                            break
                for position, reg in enumerate(instr.srcs):
                    if reg in slot_of:
                        disp = spill_base + 8 * slot_of[reg]
                        if position == folded_index:
                            instr.mem_src = (position, disp)
                            new_srcs.append(phys(self.scratch[0]))
                            continue
                        scratch_reg = phys(next(scratch_iter))
                        loads.append(MachineInstr(
                            MOp.LOAD, dst=scratch_reg, srcs=(FRAME_REG,),
                            imm=disp, size=8,
                        ))
                        new_srcs.append(scratch_reg)
                    else:
                        new_srcs.append(phys(alloc_of[reg]))
                instr.srcs = tuple(new_srcs)
                if instr.dst is not None:
                    if instr.dst in slot_of:
                        scratch_reg = phys(self.scratch[0])
                        stores.append(MachineInstr(
                            MOp.STORE, srcs=(scratch_reg, FRAME_REG),
                            imm=spill_base + 8 * slot_of[instr.dst], size=8,
                        ))
                        instr.dst = scratch_reg
                    else:
                        instr.dst = phys(alloc_of[instr.dst])
                rewritten.extend(loads)
                rewritten.append(instr)
                rewritten.extend(stores)
            block.instructions = rewritten


#: The frame pointer in rewritten code: a reserved pseudo-physical
#: register that encoders map to their target's frame register.
FRAME_REG = phys(1000)
