"""Machine IR: the target-independent form between isel and encoding.

Machine functions hold machine basic blocks of :class:`MachineInstr`.
Registers are virtual (non-negative integers) until register allocation
rewrites them to physical registers (encoded as negative numbers
``-(phys + 1)`` so the two spaces cannot collide).
"""

from __future__ import annotations

import enum
from typing import Optional


class MOp(enum.Enum):
    """Generic machine opcodes shared by both targets."""

    MOV = "mov"        # dst, src
    LI = "li"          # dst, imm (integer immediate)
    LF = "lf"          # dst, fpimm (floating immediate; materialised via pool)
    LA = "la"          # dst, symbol (address of global/function)
    ALU = "alu"        # sub=op, dst, a, b
    ALUI = "alui"      # sub=op, dst, a, imm
    CVT = "cvt"        # sub="<src>:<dst>" value conversion (widen/narrow/fp)
    LOAD = "load"      # dst, [base + off], size
    STORE = "store"    # src, [base + off], size
    LOADG = "loadg"    # dst, [symbol + off], size (global direct)
    STOREG = "storeg"  # src, [symbol + off], size
    LOADX = "loadx"    # dst, [base + index*scale + off], size (sub=scale)
    STOREX = "storex"  # src, [base + index*scale + off], size
    SETCC = "setcc"    # sub=cc, dst, a, b
    CMPBR = "cmpbr"    # sub=cc, a, b, block
    JMP = "jmp"        # block
    ARG = "arg"        # outgoing argument: src, index
    GETARG = "getarg"  # dst, index (incoming argument)
    CALL = "call"      # symbol, nargs
    CALLR = "callr"    # reg, nargs (indirect)
    GETRET = "getret"  # dst
    SETRET = "setret"  # src
    RET = "ret"
    UNWIND = "unwind"  # lowered to a runtime call by encoding


class MachineInstr:
    __slots__ = ("op", "sub", "dst", "srcs", "imm", "symbol", "block",
                 "size", "kind", "mem_src")

    def __init__(self, op: MOp, sub: Optional[str] = None,
                 dst: Optional[int] = None, srcs: tuple = (),
                 imm=None, symbol: Optional[str] = None,
                 block: Optional["MachineBlock"] = None, size: int = 8,
                 kind: Optional[str] = None):
        self.op = op
        self.sub = sub
        self.dst = dst
        self.srcs = tuple(srcs)
        self.imm = imm
        self.symbol = symbol
        self.block = block
        self.size = size  # access size for load/store, operand width for ALU
        #: Value interpretation for ALU/memory ops: "s"igned int,
        #: "u"nsigned int (also pointers), "f"loat, "b"ool; None for
        #: untyped moves (register-width copies, spill traffic).
        self.kind = kind
        #: CISC memory-operand folding: (source index, frame disp) of a
        #: spilled operand read directly from memory (no reload instr).
        self.mem_src: Optional[tuple[int, int]] = None

    def registers(self) -> list[int]:
        regs = list(self.srcs)
        if self.dst is not None:
            regs.append(self.dst)
        return regs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        if self.sub:
            parts.append(self.sub)
        if self.dst is not None:
            parts.append(f"d{self.dst}")
        parts.extend(f"s{s}" for s in self.srcs)
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.symbol:
            parts.append(self.symbol)
        if self.block is not None:
            parts.append(f"->{self.block.name}")
        return f"<{' '.join(map(str, parts))}>"


class MachineBlock:
    def __init__(self, name: str):
        self.name = name
        self.instructions: list[MachineInstr] = []

    def append(self, instr: MachineInstr) -> MachineInstr:
        self.instructions.append(instr)
        return instr


class MachineFunction:
    def __init__(self, name: str):
        self.name = name
        self.blocks: list[MachineBlock] = []
        self.next_vreg = 0
        #: Stack frame size in bytes (allocas + spills), set by regalloc.
        self.frame_size = 0

    def new_vreg(self) -> int:
        reg = self.next_vreg
        self.next_vreg += 1
        return reg

    def new_block(self, name: str) -> MachineBlock:
        block = MachineBlock(name)
        self.blocks.append(block)
        return block

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)


def phys(reg_number: int) -> int:
    """Encode a physical register number."""
    return -(reg_number + 1)


def is_phys(reg: int) -> bool:
    return reg < 0


def phys_number(reg: int) -> int:
    return -reg - 1
