"""Instruction selection: lower IR functions to machine IR.

Performs phi elimination (after splitting critical edges), then a
straightforward one-to-many lowering of each IR instruction.  Typed
``getelementptr`` is where the lowering earns its keep: the machine has
no notion of struct fields, so field offsets become literal address
arithmetic here — and only here, everything above this level kept the
type information (paper section 2.2).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.cfg import is_critical_edge, split_critical_edge
from ..core import types
from ..core.basicblock import BasicBlock
from ..core.datalayout import DataLayout
from ..core.instructions import (
    AllocaInst, BinaryOperator, BranchInst, CallInst, CastInst, FreeInst,
    GetElementPtrInst, Instruction, InvokeInst, LoadInst, MallocInst,
    Opcode, PhiNode, ReturnInst, ShiftInst, StoreInst, SwitchInst,
    UnwindInst, VAArgInst,
)
from ..core.module import Function, GlobalVariable, Module
from ..core.values import (
    Argument, Constant, ConstantBool, ConstantExpr, ConstantFP,
    ConstantInt, ConstantPointerNull, UndefValue, Value,
)
from .machine import MachineBlock, MachineFunction, MachineInstr, MOp

_ALU_FROM_OPCODE = {
    Opcode.ADD: "add", Opcode.SUB: "sub", Opcode.MUL: "mul",
    Opcode.DIV: "div", Opcode.REM: "rem", Opcode.AND: "and",
    Opcode.OR: "or", Opcode.XOR: "xor", Opcode.SHL: "shl",
    Opcode.SHR: "shr",
}
_CC_FROM_OPCODE = {
    Opcode.SETEQ: "eq", Opcode.SETNE: "ne", Opcode.SETLT: "lt",
    Opcode.SETGT: "gt", Opcode.SETLE: "le", Opcode.SETGE: "ge",
}
_NEGATED_CC = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
               "gt": "le", "le": "gt",
               "ult": "uge", "uge": "ult", "ugt": "ule", "ule": "ugt",
               "flt": "fge", "fge": "flt", "fgt": "fle", "fle": "fgt"}


def _cc_for(opcode: Opcode, operand_type: types.Type) -> str:
    """Condition code for a comparison, honouring operand signedness.

    Equality is representation-agnostic, but the ordered compares must
    pick the signed, unsigned, or floating flavour from the *type* —
    the machine's compare instruction cannot see signedness on its own
    (the IR keeps it in the type, paper section 2.1).
    """
    cc = _CC_FROM_OPCODE[opcode]
    if cc in ("eq", "ne"):
        return cc
    if operand_type.is_floating:
        return "f" + cc
    if (operand_type.is_pointer or operand_type.is_bool
            or not operand_type.signed):  # type: ignore[attr-defined]
        return "u" + cc
    return cc


def _type_desc(ty: types.Type) -> str:
    """Compact value descriptor (kind + byte width) for CVT subs."""
    if ty.is_bool:
        return "b1"
    if ty.is_pointer:
        return "p8"
    if ty.is_floating:
        return "f4" if ty.bits == 32 else "f8"  # type: ignore[attr-defined]
    sign = "s" if ty.signed else "u"  # type: ignore[attr-defined]
    return sign + str(ty.bits // 8)  # type: ignore[attr-defined]


def _value_tags(ty: types.Type) -> tuple[str, int]:
    """(kind, size) pair describing how a register value of ``ty`` is
    interpreted by the executing backend."""
    if ty.is_bool:
        return "b", 1
    if ty.is_pointer:
        return "u", 8
    if ty.is_floating:
        return "f", ty.bits // 8  # type: ignore[attr-defined]
    sign = "s" if ty.signed else "u"  # type: ignore[attr-defined]
    return sign, ty.bits // 8  # type: ignore[attr-defined]


def _raw_compatible(src_ty: types.Type, dst_ty: types.Type) -> bool:
    """True when a cast is a register-width no-op (same 64-bit pattern):
    pointer<->pointer and 64-bit-integer<->pointer reinterpretations."""
    return _type_desc(src_ty) in ("s8", "u8", "p8") and \
        _type_desc(dst_ty) in ("s8", "u8", "p8")


class InstructionSelector:
    """Lowers one function at a time."""

    def __init__(self, module: Module):
        self.module = module
        self.layout = module.data_layout

    def select_function(self, function: Function) -> MachineFunction:
        # Lower a detached clone: phi elimination inserts machine-level
        # pseudo-instructions that must not leak into the analysable IR.
        clone = Function(function.function_type, function.name,
                         function.linkage, [a.name for a in function.args])
        value_map: dict[int, Value] = {}
        for old_arg, new_arg in zip(function.args, clone.args):
            value_map[id(old_arg)] = new_arg
        from ..transforms.cloning import clone_body

        clone_body(function.blocks, clone, value_map)
        function = clone
        _eliminate_phis(function)
        machine_fn = MachineFunction(function.name)
        self._vreg_of: dict[int, int] = {}
        self._group_vregs: dict[int, int] = {}
        self._machine_fn = machine_fn
        self._block_map: dict[int, MachineBlock] = {}
        for block in function.blocks:
            self._block_map[id(block)] = machine_fn.new_block(block.name or "bb")
        entry = self._block_map[id(function.entry_block)]
        for index, arg in enumerate(function.args):
            entry.append(MachineInstr(MOp.GETARG, dst=self._vreg(arg), imm=index))
        for block in function.blocks:
            self._current = self._block_map[id(block)]
            for inst in block.instructions:
                self._select(inst)
        # Phi-elimination mutated the IR; callers that need the original
        # must lower a clone.  (The copies are harmless to re-runs.)
        return machine_fn

    # -- helpers -----------------------------------------------------------

    def _vreg(self, value: Value) -> int:
        reg = self._vreg_of.get(id(value))
        if reg is None:
            reg = self._machine_fn.new_vreg()
            self._vreg_of[id(value)] = reg
        return reg

    def _group_vreg(self, group: int) -> int:
        reg = self._group_vregs.get(group)
        if reg is None:
            reg = self._machine_fn.new_vreg()
            self._group_vregs[group] = reg
        return reg

    def _emit(self, *args, **kwargs) -> MachineInstr:
        return self._current.append(MachineInstr(*args, **kwargs))

    def _operand(self, value: Value) -> int:
        """Materialise an operand into a vreg."""
        if isinstance(value, (Instruction, Argument)):
            return self._vreg(value)
        reg = self._machine_fn.new_vreg()
        if isinstance(value, ConstantInt):
            self._emit(MOp.LI, dst=reg, imm=value.value)
        elif isinstance(value, ConstantBool):
            self._emit(MOp.LI, dst=reg, imm=int(value.value))
        elif isinstance(value, ConstantFP):
            self._emit(MOp.LF, dst=reg, imm=value.value)
        elif isinstance(value, ConstantPointerNull):
            self._emit(MOp.LI, dst=reg, imm=0)
        elif isinstance(value, UndefValue):
            self._emit(MOp.LI, dst=reg, imm=0)
        elif isinstance(value, (GlobalVariable, Function)):
            self._emit(MOp.LA, dst=reg, symbol=value.name)
        elif isinstance(value, ConstantExpr):
            self._materialize_constexpr(value, reg)
        else:
            raise TypeError(f"cannot materialise operand {value!r}")
        return reg

    def _materialize_constexpr(self, expr: ConstantExpr, reg: int) -> None:
        if expr.opcode == "cast":
            inner = self._operand(expr.operands[0])
            src_ty = expr.operands[0].type
            if _raw_compatible(src_ty, expr.type):
                self._emit(MOp.MOV, dst=reg, srcs=(inner,))
            else:
                self._emit(MOp.CVT,
                           sub=f"{_type_desc(src_ty)}:{_type_desc(expr.type)}",
                           dst=reg, srcs=(inner,))
            return
        base = self._operand(expr.operands[0])
        offset = 0
        current = expr.operands[0].type.pointee
        for position, index in enumerate(expr.operands[1:]):
            value = index.value  # type: ignore[attr-defined]
            if position == 0:
                offset += value * self.layout.size_of(current)
            elif current.is_struct:
                offset += self.layout.field_offset(current, value)
                current = current.fields[value]
            else:
                offset += value * self.layout.size_of(current.element)
                current = current.element
        self._emit(MOp.ALUI, sub="add", dst=reg, srcs=(base,), imm=offset)

    # -- per-instruction lowering --------------------------------------------------

    def _select(self, inst: Instruction) -> None:
        opcode = inst.opcode
        if isinstance(inst, BinaryOperator):
            if opcode in _CC_FROM_OPCODE:
                if _fuses_into_branch(inst):
                    return  # materialised by the branch (CMPBR)
                self._emit(MOp.SETCC,
                           sub=_cc_for(opcode, inst.operands[0].type),
                           dst=self._vreg(inst),
                           srcs=(self._operand(inst.operands[0]),
                                 self._operand(inst.operands[1])))
                return
            self._select_alu(inst, _ALU_FROM_OPCODE[opcode])
            return
        if isinstance(inst, ShiftInst):
            self._select_alu(inst, _ALU_FROM_OPCODE[opcode])
            return
        if isinstance(inst, _CopyMarker):
            if inst.phi_group is not None and inst.is_join:
                # The phi itself: read the group register.
                self._emit(MOp.MOV, dst=self._vreg(inst),
                           srcs=(self._group_vreg(inst.phi_group),))
            elif inst.phi_group is not None:
                # A predecessor copy: write the group register.
                self._emit(MOp.MOV, dst=self._group_vreg(inst.phi_group),
                           srcs=(self._operand(inst.operands[0]),))
            else:
                self._emit(MOp.MOV, dst=self._vreg(inst),
                           srcs=(self._operand(inst.operands[0]),))
            return
        if isinstance(inst, LoadInst):
            self._select_memory(inst, self._vreg(inst), None,
                                self.layout.size_of(inst.type),
                                _value_tags(inst.type)[0])
            return
        if isinstance(inst, StoreInst):
            self._select_memory(inst, None, self._operand(inst.value),
                                self.layout.size_of(inst.value.type),
                                _value_tags(inst.value.type)[0])
            return
        if isinstance(inst, GetElementPtrInst):
            if self._gep_is_foldable(inst) and _only_memory_uses(inst):
                return  # folded into the addressing mode of each access
            self._select_gep(inst)
            return
        if isinstance(inst, CastInst):
            src_ty = inst.value.type
            if _raw_compatible(src_ty, inst.type):
                # Full-register reinterpretation: a plain move.
                self._emit(MOp.MOV, dst=self._vreg(inst),
                           srcs=(self._operand(inst.value),))
            else:
                # Width or representation change: the machine must
                # truncate / sign- or zero-extend / convert, so the
                # conversion survives as an instruction of its own.
                self._emit(MOp.CVT,
                           sub=f"{_type_desc(src_ty)}:{_type_desc(inst.type)}",
                           dst=self._vreg(inst),
                           srcs=(self._operand(inst.value),))
            return
        if isinstance(inst, (CallInst, InvokeInst)):
            self._select_call(inst)
            return
        if isinstance(inst, ReturnInst):
            if inst.return_value is not None:
                self._emit(MOp.SETRET, srcs=(self._operand(inst.return_value),))
            self._emit(MOp.RET)
            return
        if isinstance(inst, BranchInst):
            if inst.is_conditional:
                condition = inst.condition
                # Compare-and-branch fusion: a single-use comparison
                # feeding the branch folds into one conditional jump.
                if (isinstance(condition, BinaryOperator)
                        and _fuses_into_branch(condition)):
                    self._emit(MOp.CMPBR,
                               sub=_cc_for(condition.opcode,
                                           condition.operands[0].type),
                               srcs=(self._operand(condition.operands[0]),
                                     self._operand(condition.operands[1])),
                               block=self._block_map[id(inst.operands[1])])
                else:
                    cond = self._operand(condition)
                    zero = self._machine_fn.new_vreg()
                    self._emit(MOp.LI, dst=zero, imm=0)
                    self._emit(MOp.CMPBR, sub="ne", srcs=(cond, zero),
                               block=self._block_map[id(inst.operands[1])])
                self._emit(MOp.JMP, block=self._block_map[id(inst.operands[2])])
            else:
                self._emit(MOp.JMP, block=self._block_map[id(inst.operands[0])])
            return
        if isinstance(inst, SwitchInst):
            selector = self._operand(inst.value)
            for case_value, dest in inst.cases:
                case_reg = self._operand(case_value)
                self._emit(MOp.CMPBR, sub="eq", srcs=(selector, case_reg),
                           block=self._block_map[id(dest)])
            self._emit(MOp.JMP, block=self._block_map[id(inst.default_dest)])
            return
        if isinstance(inst, (MallocInst, AllocaInst)):
            size = self.layout.size_of(inst.allocated_type)
            size_reg = self._machine_fn.new_vreg()
            if inst.array_size is not None:
                count = self._operand(inst.array_size)
                self._emit(MOp.ALUI, sub="mul", dst=size_reg, srcs=(count,),
                           imm=size)
            else:
                self._emit(MOp.LI, dst=size_reg, imm=size)
            self._emit(MOp.ARG, srcs=(size_reg,), imm=0)
            runtime = "malloc" if isinstance(inst, MallocInst) else "alloca"
            self._emit(MOp.CALL, symbol=f"__rt_{runtime}", imm=1)
            self._emit(MOp.GETRET, dst=self._vreg(inst))
            return
        if isinstance(inst, FreeInst):
            self._emit(MOp.ARG, srcs=(self._operand(inst.pointer),), imm=0)
            self._emit(MOp.CALL, symbol="__rt_free", imm=1)
            return
        if isinstance(inst, UnwindInst):
            self._emit(MOp.CALL, symbol="__rt_unwind", imm=0)
            return
        if isinstance(inst, VAArgInst):
            base = self._operand(inst.valist)
            offset = 0
            cursor = self._machine_fn.new_vreg()
            self._emit(MOp.LOAD, dst=cursor, srcs=(base,), imm=offset, size=8)
            self._emit(MOp.LOAD, dst=self._vreg(inst), srcs=(cursor,), imm=0,
                       size=self.layout.size_of(inst.type),
                       kind=_value_tags(inst.type)[0])
            advanced = self._machine_fn.new_vreg()
            self._emit(MOp.ALUI, sub="add", dst=advanced, srcs=(cursor,), imm=8)
            self._emit(MOp.STORE, srcs=(advanced, base), imm=offset, size=8)
            return
        raise TypeError(f"cannot select {inst!r}")

    def _select_alu(self, inst: Instruction, operation: str) -> None:
        lhs, rhs = inst.operands
        kind, size = _value_tags(inst.type)
        if isinstance(rhs, ConstantInt) and -(1 << 31) <= rhs.value < (1 << 31):
            self._emit(MOp.ALUI, sub=operation, dst=self._vreg(inst),
                       srcs=(self._operand(lhs),), imm=rhs.value,
                       kind=kind, size=size)
            return
        self._emit(MOp.ALU, sub=operation, dst=self._vreg(inst),
                   srcs=(self._operand(lhs), self._operand(rhs)),
                   kind=kind, size=size)

    def _select_memory(self, inst: Instruction, dst: Optional[int],
                       src: Optional[int], size: int,
                       kind: str = "u") -> None:
        """Emit a load or store, folding the pointer's GEP into the
        richest addressing mode the machine has:

        * ``[symbol + disp]`` for constant-indexed global accesses;
        * ``[base + index*scale + disp]`` for single-variable-index GEPs
          (the x86 SIB form; the RISC encoder pays extra instructions);
        * ``[base + disp]`` otherwise.
        """
        pointer = inst.operands[-1] if src is not None else inst.operands[0]
        mode = self._addressing_mode(pointer)
        if mode[0] == "global":
            _, symbol, disp = mode
            if src is None:
                self._emit(MOp.LOADG, dst=dst, symbol=symbol, imm=disp,
                           size=size, kind=kind)
            else:
                self._emit(MOp.STOREG, srcs=(src,), symbol=symbol, imm=disp,
                           size=size, kind=kind)
            return
        if mode[0] == "indexed":
            _, base, index, scale, disp = mode
            if src is None:
                self._emit(MOp.LOADX, sub=str(scale), dst=dst,
                           srcs=(base, index), imm=disp, size=size, kind=kind)
            else:
                self._emit(MOp.STOREX, sub=str(scale), srcs=(src, base, index),
                           imm=disp, size=size, kind=kind)
            return
        _, base, disp = mode
        if src is None:
            self._emit(MOp.LOAD, dst=dst, srcs=(base,), imm=disp, size=size,
                       kind=kind)
        else:
            self._emit(MOp.STORE, srcs=(src, base), imm=disp, size=size,
                       kind=kind)

    def _addressing_mode(self, pointer: Value):
        if (isinstance(pointer, GetElementPtrInst) and pointer.parent is not None
                and self._gep_is_foldable(pointer)):
            base_pointer = pointer.pointer
            if pointer.has_all_constant_indices():
                offset = self._static_gep_offset(pointer)
                if isinstance(base_pointer, (GlobalVariable, Function)):
                    return ("global", base_pointer.name, offset)
                return ("plain", self._operand(base_pointer), offset)
            return self._match_indexed(pointer)
        if isinstance(pointer, (GlobalVariable, Function)):
            return ("global", pointer.name, 0)
        return ("plain", self._operand(pointer), 0)

    def _gep_is_foldable(self, gep: GetElementPtrInst) -> bool:
        """Structural check matching what _addressing_mode can fold."""
        if gep.has_all_constant_indices():
            offset = self._static_gep_offset(gep)
            return offset is not None and -(1 << 31) <= offset < (1 << 31)
        disp = 0
        variable_scale = None
        current = gep.pointer.type.pointee
        for position, index in enumerate(gep.indices):
            if position == 0:
                step = self.layout.size_of(current)
            elif current.is_struct:
                if not isinstance(index, ConstantInt):
                    return False
                current = current.fields[index.value]
                continue
            else:
                current = current.element
                step = self.layout.size_of(current)
            if isinstance(index, ConstantInt):
                continue
            if variable_scale is not None or step not in (1, 2, 4, 8):
                return False
            variable_scale = step
        return variable_scale is not None

    def _match_indexed(self, gep: GetElementPtrInst):
        """Match GEPs with exactly one variable index into base+idx*scale."""
        disp = 0
        scale = None
        variable = None
        current = gep.pointer.type.pointee
        for position, index in enumerate(gep.indices):
            if position == 0:
                element = current
                step = self.layout.size_of(element)
            elif current.is_struct:
                if not isinstance(index, ConstantInt):
                    return None
                disp += self.layout.field_offset(current, index.value)
                current = current.fields[index.value]
                continue
            else:
                current = current.element
                step = self.layout.size_of(current)
            if isinstance(index, ConstantInt):
                disp += index.value * step
                continue
            if variable is not None:
                return None  # two variable indices: give up
            if step not in (1, 2, 4, 8):
                return None
            variable = index
            scale = step
        if variable is None:
            return None
        base = self._operand(gep.pointer)
        index_reg = self._operand(variable)
        return ("indexed", base, index_reg, scale, disp)

    def _static_gep_offset(self, gep: GetElementPtrInst) -> Optional[int]:
        offset = 0
        current = gep.pointer.type.pointee
        for position, index in enumerate(gep.indices):
            value = index.value  # type: ignore[attr-defined]
            if position == 0:
                offset += value * self.layout.size_of(current)
            elif current.is_struct:
                offset += self.layout.field_offset(current, value)
                current = current.fields[value]
            else:
                offset += value * self.layout.size_of(current.element)
                current = current.element
        return offset

    def _select_gep(self, inst: GetElementPtrInst) -> None:
        static = (self._static_gep_offset(inst)
                  if inst.has_all_constant_indices() else None)
        base = self._operand(inst.pointer)
        if static is not None:
            self._emit(MOp.ALUI, sub="add", dst=self._vreg(inst),
                       srcs=(base,), imm=static)
            return
        # Dynamic indices: scale-and-accumulate.
        current = inst.pointer.type.pointee
        accumulator = base
        for position, index in enumerate(inst.indices):
            if position == 0:
                scale = self.layout.size_of(current)
            elif current.is_struct:
                field = index.value  # type: ignore[attr-defined]
                fixed = self.layout.field_offset(current, field)
                current = current.fields[field]
                next_acc = self._machine_fn.new_vreg()
                self._emit(MOp.ALUI, sub="add", dst=next_acc,
                           srcs=(accumulator,), imm=fixed)
                accumulator = next_acc
                continue
            else:
                scale = self.layout.size_of(current.element)
                current = current.element
            if isinstance(index, ConstantInt):
                if index.value:
                    next_acc = self._machine_fn.new_vreg()
                    self._emit(MOp.ALUI, sub="add", dst=next_acc,
                               srcs=(accumulator,), imm=index.value * scale)
                    accumulator = next_acc
                continue
            index_reg = self._operand(index)
            scaled = self._machine_fn.new_vreg()
            self._emit(MOp.ALUI, sub="mul", dst=scaled, srcs=(index_reg,),
                       imm=scale)
            next_acc = self._machine_fn.new_vreg()
            self._emit(MOp.ALU, sub="add", dst=next_acc,
                       srcs=(accumulator, scaled))
            accumulator = next_acc
        if accumulator == base:
            self._emit(MOp.MOV, dst=self._vreg(inst), srcs=(base,))
        else:
            self._emit(MOp.MOV, dst=self._vreg(inst), srcs=(accumulator,))

    def _select_call(self, inst: Instruction) -> None:
        args = (inst.operands[1:-2] if isinstance(inst, InvokeInst)
                else inst.operands[1:])
        for index, arg in enumerate(args):
            self._emit(MOp.ARG, srcs=(self._operand(arg),), imm=index)
        callee = inst.operands[0]
        if isinstance(callee, Function):
            self._emit(MOp.CALL, symbol=callee.name, imm=len(args))
        else:
            self._emit(MOp.CALLR, srcs=(self._operand(callee),), imm=len(args))
        if not inst.type.is_void:
            self._emit(MOp.GETRET, dst=self._vreg(inst))
        if isinstance(inst, InvokeInst):
            # The invoke's handler registration is a runtime-call pair in
            # real codegen; model the normal-path branch only.
            self._emit(MOp.JMP, block=self._block_map[id(inst.normal_dest)])


def _only_memory_uses(gep: GetElementPtrInst) -> bool:
    """Every use is as the *pointer* of a load/store (so every consumer
    folds the GEP into its addressing mode)."""
    for use in gep.uses:
        user = use.user
        if isinstance(user, LoadInst):
            continue
        if isinstance(user, StoreInst) and user.pointer is gep and user.value is not gep:
            continue
        return False
    return True


def _fuses_into_branch(comparison: BinaryOperator) -> bool:
    """True when a comparison's only consumer is the conditional branch
    directly following it in the same block (so it can be a CMPBR)."""
    if not comparison.is_comparison or len(comparison.uses) != 1:
        return False
    user = comparison.uses[0].user
    return (isinstance(user, BranchInst) and user.is_conditional
            and user.operands[0] is comparison
            and user.parent is comparison.parent)


class _CopyMarker(Instruction):
    """A pseudo-instruction inserted by phi elimination.

    A non-join marker copies its operand into the phi's shared group
    register (at the end of a predecessor); the join marker, placed
    where the phi was, reads the group register out.
    """

    __slots__ = ("phi_group", "is_join")

    def __init__(self, value: Value, name: str = "",
                 phi_group: Optional[int] = None, is_join: bool = False):
        super().__init__(Opcode.CAST, value.type, (value,), name)
        self.phi_group = phi_group
        self.is_join = is_join


def _eliminate_phis(function: Function) -> None:
    """Replace phis with group-register copies in predecessors."""
    # Split critical edges so each copy has an unambiguous home.
    changed = True
    while changed:
        changed = False
        for block in list(function.blocks):
            if not any(True for _ in block.phis()):
                continue
            for pred in list(block.unique_predecessors()):
                if is_critical_edge(pred, block):
                    split_critical_edge(pred, block)
                    changed = True
    group_counter = 0
    for block in function.blocks:
        for phi in list(block.phis()):
            group = group_counter
            group_counter += 1
            for value, pred in list(phi.incoming):
                copy = _CopyMarker(value, phi.name or "phicopy",
                                   phi_group=group)
                pred.insert_before_terminator(copy)
            join = _CopyMarker(phi.operands[0], phi.name or "phi",
                               phi_group=group, is_join=True)
            block.insert(block.first_non_phi_index(), join)
            phi.replace_all_uses_with(join)
            phi.erase_from_parent()
