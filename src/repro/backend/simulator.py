"""An executing backend: runs post-regalloc machine code.

The byte encoders in :mod:`repro.backend.targets` model code *size*
(Figure 5); this module makes the same machine functions *run*, so the
whole native path — phi elimination, instruction selection, addressing-
mode folding, linear-scan allocation, spilling, CISC memory-operand
folding — can be differentially tested against the IR interpreter
(``lc-fuzz``'s backend oracle).

Semantics deliberately mirror a 64-bit machine rather than the IR:

* every register holds a raw 64-bit pattern (Python floats stand in
  for FP-register contents), canonically the two's-complement encoding
  of the typed value that produced it;
* instructions carry only the width/signedness tags instruction
  selection gave them (``MachineInstr.kind``/``size``/``sub``) — if
  isel drops a semantic distinction the IR had, this simulator
  faithfully executes the wrong program, which is exactly the point;
* arithmetic is delegated to :mod:`repro.core.constfold`, the single
  source of truth shared with the interpreter and the folder, so a
  divergence always means a *lowering* bug, never a disagreement about
  what ``div`` means.

Memory, globals, externals, and function addresses are shared with the
execution engine: the simulator owns an :class:`Interpreter` purely as
the runtime context (its memory image and runtime library), and
executes machine code instead of IR.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import constfold, types
from ..core.instructions import Opcode
from ..core.module import Function, Module
from ..execution.interpreter import (
    ExecutionError, ExitCalled, Interpreter, StepLimitExceeded,
    UndefinedFunction, UnhandledUnwind,
)
from .isel import InstructionSelector
from .machine import MachineBlock, MachineFunction, MachineInstr, MOp
from .regalloc import FRAME_REG, LinearScanAllocator
from .targets import Target

_MASK64 = (1 << 64) - 1

_OPCODE_FROM_SUB = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
    "div": Opcode.DIV, "rem": Opcode.REM, "and": Opcode.AND,
    "or": Opcode.OR, "xor": Opcode.XOR, "shl": Opcode.SHL,
    "shr": Opcode.SHR,
}

_TYPE_FROM_TAGS = {
    ("s", 1): types.SBYTE, ("s", 2): types.SHORT,
    ("s", 4): types.INT, ("s", 8): types.LONG,
    ("u", 1): types.UBYTE, ("u", 2): types.USHORT,
    ("u", 4): types.UINT, ("u", 8): types.ULONG,
    ("f", 4): types.FLOAT, ("f", 8): types.DOUBLE,
    ("b", 1): types.BOOL,
}

_TYPE_FROM_DESC = {
    "s1": types.SBYTE, "s2": types.SHORT, "s4": types.INT, "s8": types.LONG,
    "u1": types.UBYTE, "u2": types.USHORT, "u4": types.UINT, "u8": types.ULONG,
    "f4": types.FLOAT, "f8": types.DOUBLE, "b1": types.BOOL,
    "p8": types.pointer(types.SBYTE),
}


def _signed64(pattern: int) -> int:
    return pattern - (1 << 64) if pattern >= (1 << 63) else pattern


def _decode(raw, ty: types.Type):
    """Raw register content -> typed value (the constfold domain)."""
    if ty.is_floating:
        return float(raw)
    if ty.is_bool:
        return bool(raw)
    if ty.is_pointer:
        return int(raw) & _MASK64
    return ty.wrap(int(raw))  # type: ignore[attr-defined]


def _encode(value, ty: types.Type):
    """Typed value -> raw register content (canonical 64-bit pattern)."""
    if ty.is_floating:
        return float(value)
    if ty.is_bool:
        return 1 if value else 0
    return int(value) & _MASK64


class MachineProgram:
    """A module lowered through isel + regalloc for one target."""

    def __init__(self, module: Module, target: Target):
        self.module = module
        self.target = target
        selector = InstructionSelector(module)
        allocator = LinearScanAllocator(
            target.num_registers,
            fold_memory_operands=getattr(target, "folds_memory", False),
        )
        self.machine_fns: dict[str, MachineFunction] = {}
        for function in module.functions.values():
            if function.is_declaration:
                continue
            machine_fn = selector.select_function(function)
            allocator.run(machine_fn)
            self.machine_fns[function.name] = machine_fn


class _Activation:
    __slots__ = ("machine_fn", "function", "block", "index", "regs",
                 "frame", "out_args", "args", "retval", "retval_out",
                 "allocas", "va_area")

    def __init__(self, machine_fn: MachineFunction, function: Function,
                 args: list):
        self.machine_fn = machine_fn
        self.function = function
        self.block: MachineBlock = machine_fn.blocks[0]
        self.index = 0
        #: Physical register file (keyed by the encoded register id).
        self.regs: dict[int, object] = {}
        #: Spill slots: frame displacement -> register content, verbatim.
        self.frame: dict[int, object] = {}
        self.out_args: dict[int, object] = {}
        self.args = args
        self.retval = None       # set by a completed call, read by GETRET
        self.retval_out = None   # set by SETRET, delivered on RET
        self.allocas: list[int] = []
        self.va_area = 0


class MachineSimulator:
    """Executes one target's machine code for a module.

    Shares its memory image, globals, externals, and function-address
    table with an embedded :class:`Interpreter` (never used to run IR),
    so pointer-identity across representations is exact and the runtime
    library needs no porting.
    """

    def __init__(self, module: Module, target: Target,
                 step_limit: int = 100_000_000,
                 extra_externals: Optional[dict] = None):
        self.module = module
        self.target = target
        self.program = MachineProgram(module, target)
        self.step_limit = step_limit
        self.steps = 0
        #: The runtime context: memory, initialized globals, externals.
        self.context = Interpreter(module, extra_externals=extra_externals)
        self.memory = self.context.memory
        self.output = self.context.output
        self.externals = self.context.externals
        #: Externals see the simulator as "the interpreter": it carries
        #: every attribute the runtime library touches.
        self.current_va_area = 0
        self.eh_state = None
        self._global_address = {
            gv.name: self.context.global_addresses[id(gv)]
            for gv in module.globals.values()
        }

    # -- entry point ---------------------------------------------------------

    def run(self, function_name: str = "main", args: Sequence = ()):
        function = self.module.functions.get(function_name)
        machine_fn = self.program.machine_fns.get(function_name)
        if function is None or machine_fn is None:
            raise ExecutionError(f"no compiled function {function_name!r}")
        params = function.function_type.params
        raw_args = [
            _encode(value, params[i]) if i < len(params) else value
            for i, value in enumerate(args)
        ]
        try:
            raw = self._run(function, machine_fn, raw_args)
        except ExitCalled as exit_call:
            return exit_call.code
        ret_ty = function.return_type
        if ret_ty.is_void or raw is None:
            return None
        return _decode(raw, ret_ty)

    # -- the machine loop ------------------------------------------------------

    def _run(self, function: Function, machine_fn: MachineFunction,
             raw_args: list):
        stack: list[_Activation] = [self._activate(function, machine_fn,
                                                   raw_args)]
        final = None
        while stack:
            act = stack[-1]
            if act.index >= len(act.block.instructions):
                raise ExecutionError(
                    f"fell off machine block {act.block.name!r} "
                    f"in {act.machine_fn.name}"
                )
            instr = act.block.instructions[act.index]
            self.steps += 1
            if self.steps > self.step_limit:
                raise StepLimitExceeded(
                    f"exceeded {self.step_limit} simulated instructions"
                )
            final = self._step(stack, act, instr)
        return final

    def _activate(self, function: Function, machine_fn: MachineFunction,
                  raw_args: list) -> _Activation:
        act = _Activation(machine_fn, function, raw_args)
        fixed = len(function.args)
        if function.is_vararg:
            extra = raw_args[fixed:]
            area = self.memory.allocate(max(8 * len(extra), 8), kind="stack")
            act.va_area = area
            for slot, raw in enumerate(extra):
                if isinstance(raw, float):
                    self.memory.store(area + 8 * slot, types.DOUBLE, raw)
                else:
                    self.memory.store(area + 8 * slot, types.ULONG,
                                      int(raw) & _MASK64)
            act.allocas.append(area)
        return act

    # -- operand plumbing --------------------------------------------------------

    def _src(self, act: _Activation, instr: MachineInstr, position: int):
        if instr.mem_src is not None and position == instr.mem_src[0]:
            return self._frame_read(act, instr.mem_src[1])
        reg = instr.srcs[position]
        try:
            return act.regs[reg]
        except KeyError:
            raise ExecutionError(
                f"read of unset register {reg} in {act.machine_fn.name} "
                f"at {instr!r}"
            ) from None

    def _frame_read(self, act: _Activation, disp: int):
        try:
            return act.frame[disp]
        except KeyError:
            raise ExecutionError(
                f"read of unset spill slot +{disp} in {act.machine_fn.name}"
            ) from None

    def _jump(self, act: _Activation, block: MachineBlock) -> None:
        act.block = block
        act.index = 0

    # -- instruction dispatch --------------------------------------------------

    def _step(self, stack: list[_Activation], act: _Activation,
              instr: MachineInstr):
        op = instr.op
        if op == MOp.MOV:
            act.regs[instr.dst] = self._src(act, instr, 0)
        elif op == MOp.LI:
            act.regs[instr.dst] = int(instr.imm) & _MASK64
        elif op == MOp.LF:
            act.regs[instr.dst] = float(instr.imm)
        elif op == MOp.LA:
            act.regs[instr.dst] = self._symbol_address(instr.symbol)
        elif op in (MOp.ALU, MOp.ALUI):
            act.regs[instr.dst] = self._alu(act, instr)
        elif op == MOp.CVT:
            src_desc, dst_desc = instr.sub.split(":")
            src_ty = _TYPE_FROM_DESC[src_desc]
            dst_ty = _TYPE_FROM_DESC[dst_desc]
            value = _decode(self._src(act, instr, 0), src_ty)
            act.regs[instr.dst] = _encode(
                constfold.eval_cast(src_ty, dst_ty, value), dst_ty
            )
        elif op == MOp.LOAD:
            if instr.srcs[0] == FRAME_REG:
                act.regs[instr.dst] = self._frame_read(act, instr.imm)
            else:
                base = int(self._src(act, instr, 0))
                act.regs[instr.dst] = self._load(
                    (base + instr.imm) & _MASK64, instr)
        elif op == MOp.STORE:
            value = self._src(act, instr, 0)
            if instr.srcs[1] == FRAME_REG:
                act.frame[instr.imm] = value
            else:
                base = int(self._src(act, instr, 1))
                self._store((base + instr.imm) & _MASK64, instr, value)
        elif op == MOp.LOADG:
            address = self._symbol_address(instr.symbol) + instr.imm
            act.regs[instr.dst] = self._load(address & _MASK64, instr)
        elif op == MOp.STOREG:
            address = self._symbol_address(instr.symbol) + instr.imm
            self._store(address & _MASK64, instr, self._src(act, instr, 0))
        elif op == MOp.LOADX:
            base = int(self._src(act, instr, 0))
            index = int(self._src(act, instr, 1))
            address = (base + index * int(instr.sub) + instr.imm) & _MASK64
            act.regs[instr.dst] = self._load(address, instr)
        elif op == MOp.STOREX:
            base = int(self._src(act, instr, 1))
            index = int(self._src(act, instr, 2))
            address = (base + index * int(instr.sub) + instr.imm) & _MASK64
            self._store(address, instr, self._src(act, instr, 0))
        elif op == MOp.SETCC:
            taken = self._compare(instr.sub, self._src(act, instr, 0),
                                  self._src(act, instr, 1))
            act.regs[instr.dst] = 1 if taken else 0
        elif op == MOp.CMPBR:
            if self._compare(instr.sub, self._src(act, instr, 0),
                             self._src(act, instr, 1)):
                self._jump(act, instr.block)
                return None
        elif op == MOp.JMP:
            self._jump(act, instr.block)
            return None
        elif op == MOp.ARG:
            act.out_args[instr.imm] = self._src(act, instr, 0)
        elif op == MOp.GETARG:
            act.regs[instr.dst] = act.args[instr.imm]
        elif op == MOp.CALL:
            return self._call(stack, act, instr.symbol, instr.imm)
        elif op == MOp.CALLR:
            address = int(self._src(act, instr, 0))
            callee = self.memory.function_at(address)
            return self._call(stack, act, callee.name, instr.imm)
        elif op == MOp.GETRET:
            act.regs[instr.dst] = act.retval
        elif op == MOp.SETRET:
            act.retval_out = self._src(act, instr, 0)
        elif op == MOp.RET:
            return self._return(stack)
        else:
            raise ExecutionError(f"cannot simulate {instr!r}")
        act.index += 1
        return None

    # -- arithmetic ----------------------------------------------------------------

    def _alu(self, act: _Activation, instr: MachineInstr):
        ty = _TYPE_FROM_TAGS[(instr.kind or "u", instr.size)]
        opcode = _OPCODE_FROM_SUB[instr.sub]
        lhs_raw = self._src(act, instr, 0)
        if instr.op == MOp.ALUI:
            rhs_value = instr.imm
        else:
            rhs_raw = self._src(act, instr, 1)
            rhs_value = None
        if opcode in (Opcode.SHL, Opcode.SHR):
            amount = (rhs_value if rhs_value is not None
                      else int(rhs_raw) & 0xFF)
            result = constfold.eval_shift(opcode, ty,
                                          _decode(lhs_raw, ty), amount)
            return _encode(result, ty)
        lhs = _decode(lhs_raw, ty)
        rhs = rhs_value if rhs_value is not None else _decode(rhs_raw, ty)
        result = constfold.eval_binary(opcode, ty, lhs, rhs)
        return _encode(result, ty)

    def _compare(self, cc: str, a, b) -> bool:
        if cc == "eq":
            return a == b
        if cc == "ne":
            return a != b
        if cc[0] == "u" or cc[0] == "f":
            base = cc[1:]
        else:
            # Signed: reinterpret the 64-bit patterns.
            a, b = _signed64(int(a)), _signed64(int(b))
            base = cc
        if base == "lt":
            return a < b
        if base == "gt":
            return a > b
        if base == "le":
            return a <= b
        if base == "ge":
            return a >= b
        raise ExecutionError(f"bad condition code {cc!r}")

    # -- memory ------------------------------------------------------------------

    def _access_type(self, instr: MachineInstr) -> types.Type:
        return _TYPE_FROM_TAGS[(instr.kind or "u", instr.size)]

    def _load(self, address: int, instr: MachineInstr):
        ty = self._access_type(instr)
        return _encode(self.memory.load(address, ty), ty)

    def _store(self, address: int, instr: MachineInstr, raw) -> None:
        ty = self._access_type(instr)
        self.memory.store(address, ty, _decode(raw, ty))

    def _symbol_address(self, symbol: str) -> int:
        address = self._global_address.get(symbol)
        if address is not None:
            return address
        function = self.module.functions.get(symbol)
        if function is not None:
            return self.memory.function_address(function)
        raise ExecutionError(f"unresolved symbol {symbol!r}")

    # -- calls --------------------------------------------------------------------

    def _call(self, stack: list[_Activation], act: _Activation,
              symbol: str, nargs: int):
        raw_args = [act.out_args.get(i) for i in range(nargs)]
        act.out_args.clear()
        if symbol.startswith("__rt_"):
            self._runtime_call(act, symbol, raw_args)
            act.index += 1
            return None
        machine_fn = self.program.machine_fns.get(symbol)
        function = self.module.functions.get(symbol)
        if machine_fn is not None and function is not None:
            stack.append(self._activate(function, machine_fn, raw_args))
            return None
        if function is None:
            raise ExecutionError(f"call to unknown symbol {symbol!r}")
        # External: cross back into the typed runtime-library domain.
        external = self.externals.get(symbol)
        if external is None:
            raise UndefinedFunction(
                f"call to undefined external {symbol!r}"
            )
        params = function.function_type.params
        decoded = [
            _decode(raw, params[i]) if i < len(params)
            else (raw if isinstance(raw, float) else _signed64(int(raw)))
            for i, raw in enumerate(raw_args)
        ]
        self.current_va_area = act.va_area
        result = external(self, decoded)
        ret_ty = function.return_type
        if not ret_ty.is_void and result is not None:
            act.retval = _encode(result, ret_ty)
        act.index += 1
        return None

    def _runtime_call(self, act: _Activation, symbol: str,
                      raw_args: list) -> None:
        if symbol == "__rt_malloc":
            size = int(raw_args[0])
            act.retval = self.memory.allocate(size, kind="heap")
            return
        if symbol == "__rt_alloca":
            size = int(raw_args[0])
            address = self.memory.allocate(size, kind="stack")
            act.allocas.append(address)
            act.retval = address
            return
        if symbol == "__rt_free":
            self.memory.free(int(raw_args[0]))
            return
        if symbol == "__rt_unwind":
            raise UnhandledUnwind(
                "unwind executed in machine code (no invoke handler model)"
            )
        raise ExecutionError(f"unknown runtime call {symbol!r}")

    def _return(self, stack: list[_Activation]):
        act = stack.pop()
        for address in act.allocas:
            self.memory.release(address)
        if not stack:
            return act.retval_out
        caller = stack[-1]
        caller.retval = act.retval_out
        caller.index += 1
        return None


def run_on_target(module: Module, target: Target,
                  function_name: str = "main", args: Sequence = (),
                  step_limit: int = 100_000_000):
    """Convenience wrapper: compile + simulate one entry point."""
    simulator = MachineSimulator(module, target, step_limit=step_limit)
    return simulator.run(function_name, args)
