"""Native code generation: isel, register allocation, and the x86-like /
sparc-like encoders used by the Figure 5 size comparison."""

from .codegen import (
    CodeGenerator, CompiledFunction, ExecutableImage, compile_for_size,
    print_machine_function,
)
from .isel import InstructionSelector
from .machine import MachineBlock, MachineFunction, MachineInstr, MOp
from .regalloc import LinearScanAllocator
from .targets import SPARC, SparcLikeTarget, Target, X86, X86LikeTarget

__all__ = [
    "CodeGenerator", "CompiledFunction", "ExecutableImage",
    "compile_for_size", "print_machine_function", "InstructionSelector",
    "MachineBlock", "MachineFunction", "MachineInstr", "MOp",
    "LinearScanAllocator", "SPARC", "SparcLikeTarget", "Target", "X86",
    "X86LikeTarget",
]
