"""The native code generator driver (paper section 3.4).

Runs instruction selection, linear-scan register allocation, and target
encoding over every defined function, and lays out an executable image:
header, code section, initialised-data section (zero-initialised
globals go to a bss size field, as in real executables), and a symbol
table of external names.  The total image size is what Figure 5
compares against the bytecode representation.
"""

from __future__ import annotations

from typing import Optional

from ..core import types
from ..core.module import Function, GlobalVariable, Module
from ..core.values import (
    Constant, ConstantAggregateZero, ConstantArray, ConstantBool,
    ConstantExpr, ConstantFP, ConstantInt, ConstantPointerNull,
    ConstantString, ConstantStruct, UndefValue,
)
from .isel import InstructionSelector
from .machine import MachineFunction, MOp
from .regalloc import LinearScanAllocator
from .targets import Target, X86, SPARC


class CompiledFunction:
    def __init__(self, name: str, code: bytes, machine_fn: MachineFunction):
        self.name = name
        self.code = code
        self.machine_fn = machine_fn

    @property
    def size(self) -> int:
        return len(self.code)


class ExecutableImage:
    """The laid-out native artifact for one module and target."""

    HEADER_SIZE = 64

    def __init__(self, target_name: str):
        self.target_name = target_name
        self.functions: list[CompiledFunction] = []
        self.data: bytes = b""
        self.bss_size: int = 0
        self.symbols: list[str] = []

    @property
    def code_size(self) -> int:
        return sum(f.size for f in self.functions)

    @property
    def symtab_size(self) -> int:
        # name bytes + 8-byte entry per symbol (address + info).
        return sum(len(s) + 1 + 8 for s in self.symbols)

    @property
    def total_size(self) -> int:
        return self.HEADER_SIZE + self.code_size + len(self.data) + self.symtab_size

    def to_bytes(self) -> bytes:
        header = (b"EXEC" + self.target_name.encode().ljust(12, b"\0")
                  + self.code_size.to_bytes(8, "little")
                  + len(self.data).to_bytes(8, "little")
                  + self.bss_size.to_bytes(8, "little"))
        header = header.ljust(self.HEADER_SIZE, b"\0")
        body = bytearray(header)
        for function in self.functions:
            body += function.code
        body += self.data
        for symbol in self.symbols:
            body += symbol.encode() + b"\0" + bytes(8)
        return bytes(body)


class CodeGenerator:
    """Compiles a module for one target."""

    def __init__(self, target: Target):
        self.target = target

    def compile_module(self, module: Module) -> ExecutableImage:
        image = ExecutableImage(self.target.name)
        selector = InstructionSelector(module)
        allocator = LinearScanAllocator(
            self.target.num_registers,
            fold_memory_operands=getattr(self.target, "folds_memory", False),
        )
        for function in module.functions.values():
            image.symbols.append(function.name)
            if function.is_declaration:
                continue
            machine_fn = selector.select_function(function)
            allocator.run(machine_fn)
            code = self.target.encode_function(machine_fn)
            image.functions.append(CompiledFunction(function.name, code, machine_fn))
        data = bytearray()
        for global_var in module.globals.values():
            image.symbols.append(global_var.name)
            initializer = global_var.initializer
            size = module.data_layout.size_of(global_var.value_type)
            if initializer is None or initializer.is_null_value():
                image.bss_size += size
            else:
                data += _serialize(initializer, module.data_layout, size)
        image.data = bytes(data)
        return image


def _serialize(constant: Constant, layout, size: int) -> bytes:
    """Flatten a constant initializer to its in-memory bytes (pointers
    to symbols become zero-filled relocation slots)."""
    buffer = bytearray(size)
    _serialize_into(buffer, 0, constant, layout)
    return bytes(buffer)


def _serialize_into(buffer: bytearray, offset: int, constant: Constant, layout) -> None:
    ty = constant.type
    if isinstance(constant, ConstantString):
        buffer[offset:offset + len(constant.data)] = constant.data
        return
    if isinstance(constant, (ConstantAggregateZero, UndefValue, ConstantPointerNull)):
        return
    if isinstance(constant, ConstantArray):
        element_size = layout.size_of(ty.element)  # type: ignore[attr-defined]
        for index, element in enumerate(constant.elements):
            _serialize_into(buffer, offset + index * element_size, element, layout)
        return
    if isinstance(constant, ConstantStruct):
        for index, field in enumerate(constant.fields_values):
            _serialize_into(buffer, offset + layout.field_offset(ty, index),
                            field, layout)
        return
    if isinstance(constant, ConstantInt):
        width = ty.bits // 8  # type: ignore[attr-defined]
        raw = constant.value & ((1 << ty.bits) - 1)  # type: ignore[attr-defined]
        buffer[offset:offset + width] = raw.to_bytes(width, "little")
        return
    if isinstance(constant, ConstantBool):
        buffer[offset] = 1 if constant.value else 0
        return
    if isinstance(constant, ConstantFP):
        import struct as _struct

        if ty.bits == 32:  # type: ignore[attr-defined]
            buffer[offset:offset + 4] = _struct.pack("<f", constant.value)
        else:
            buffer[offset:offset + 8] = _struct.pack("<d", constant.value)
        return
    # Symbol addresses and constant expressions: relocation slots.
    return


def compile_for_size(module: Module, target: Target) -> ExecutableImage:
    """Convenience wrapper used by the Figure 5 benchmark."""
    return CodeGenerator(target).compile_module(module)


def print_machine_function(machine_fn: MachineFunction) -> str:
    """Textual assembly listing (inspection/debugging aid)."""
    lines = [f"{machine_fn.name}:  ; frame={machine_fn.frame_size}"]
    for block in machine_fn.blocks:
        lines.append(f".{block.name}:")
        for instr in block.instructions:
            parts = [instr.op.value]
            if instr.sub:
                parts[0] += "." + instr.sub
            if instr.dst is not None:
                parts.append(_pretty_reg(instr.dst))
            parts.extend(_pretty_reg(s) for s in instr.srcs)
            if instr.imm is not None:
                parts.append(f"#{instr.imm}")
            if instr.symbol:
                parts.append(instr.symbol)
            if instr.block is not None:
                parts.append(f"-> .{instr.block.name}")
            lines.append("    " + " ".join(str(p) for p in parts))
    return "\n".join(lines) + "\n"


def _pretty_reg(reg: int) -> str:
    from .machine import is_phys, phys_number
    from .regalloc import FRAME_REG

    if reg == FRAME_REG:
        return "%fp"
    if is_phys(reg):
        return f"%r{phys_number(reg)}"
    return f"%v{reg}"
