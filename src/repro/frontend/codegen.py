"""LC AST → IR code generation.

Follows the front-end strategy of paper section 3.2:

* locals live in ``alloca`` slots accessed by load/store — the
  front-end performs **no SSA construction** (stack promotion and
  scalar expansion build SSA later);
* maximal type information is synthesized: structs become named struct
  types, field/array access becomes ``getelementptr``, allocation is
  the *typed* ``malloc``;
* ``try``/``catch``/``throw`` lower exactly as section 2.4 prescribes:
  calls inside a ``try`` become ``invoke`` with the catch block as the
  unwind destination, a ``throw`` inside a ``try`` is a direct branch
  to the handler, and a ``throw`` outside any ``try`` is ``unwind``.
"""

from __future__ import annotations

from typing import Optional

from ..core import types
from ..core.basicblock import BasicBlock
from ..core.builder import IRBuilder
from ..core.instructions import Opcode
from ..core.module import Function, GlobalVariable, Linkage, Module
from ..core.values import (
    Constant, ConstantAggregateZero, ConstantBool, ConstantExpr, ConstantFP,
    ConstantInt, ConstantPointerNull, ConstantString, Value, null_value,
)
from ..core import constfold
from . import astnodes as ast

_PRIMITIVES = {
    "void": types.VOID, "bool": types.BOOL,
    "char": types.SBYTE, "uchar": types.UBYTE,
    "short": types.SHORT, "ushort": types.USHORT,
    "int": types.INT, "uint": types.UINT,
    "long": types.LONG, "ulong": types.ULONG,
    "float": types.FLOAT, "double": types.DOUBLE,
}

_ARITH_OPS = {
    "+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL,
    "/": Opcode.DIV, "%": Opcode.REM,
    "&": Opcode.AND, "|": Opcode.OR, "^": Opcode.XOR,
}
_COMPARE_OPS = {
    "==": Opcode.SETEQ, "!=": Opcode.SETNE, "<": Opcode.SETLT,
    ">": Opcode.SETGT, "<=": Opcode.SETLE, ">=": Opcode.SETGE,
}


class CodeGenError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class _Scope:
    """A lexical scope mapping names to alloca slots (or globals)."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.entries: dict[str, Value] = {}

    def lookup(self, name: str) -> Optional[Value]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.entries:
                return scope.entries[name]
            scope = scope.parent
        return None

    def define(self, name: str, value: Value) -> None:
        self.entries[name] = value


class CodeGenerator:
    """Translates one LC translation unit into a fresh module."""

    def __init__(self, module_name: str = "lc_module"):
        self.module = Module(module_name)
        self.builder = IRBuilder()
        self.structs: dict[str, types.StructType] = {}
        self.struct_fields: dict[str, list[tuple[str, ast.TypeExpr]]] = {}
        self.typedefs: dict[str, ast.TypeExpr] = {}
        self.scope = _Scope()
        self.function: Optional[Function] = None
        self.string_cache: dict[bytes, GlobalVariable] = {}
        #: (break target, continue target) stack for loops/switches.
        self.loop_stack: list[tuple[BasicBlock, Optional[BasicBlock]]] = []
        #: Catch-handler block stack for try regions.
        self.try_stack: list[BasicBlock] = []
        self._string_counter = 0

    # ======================================================================
    # Types
    # ======================================================================

    def resolve_type(self, expr: ast.TypeExpr) -> types.Type:
        if isinstance(expr, ast.NamedType):
            if expr.is_struct:
                return self._struct_type(expr.name)
            if expr.name in _PRIMITIVES:
                return _PRIMITIVES[expr.name]
            if expr.name in self.typedefs:
                return self.resolve_type(self.typedefs[expr.name])
            if expr.name in self.structs:
                return self.structs[expr.name]
            raise CodeGenError(f"unknown type {expr.name!r}", expr.line)
        if isinstance(expr, ast.PointerType):
            return types.pointer(self.resolve_type(expr.base))
        if isinstance(expr, ast.ArrayTypeExpr):
            return types.array(self.resolve_type(expr.base), expr.count)
        if isinstance(expr, ast.FunctionPointerType):
            params = [self.resolve_type(p) for p in expr.params]
            ret = self.resolve_type(expr.return_type)
            return types.pointer(types.function(ret, params, expr.is_vararg))
        raise CodeGenError("unsupported type expression", expr.line)

    def _struct_type(self, name: str) -> types.StructType:
        existing = self.structs.get(name)
        if existing is not None:
            return existing
        created = types.named_struct(name)
        self.structs[name] = created
        self.module.add_named_type(created)
        return created

    def _field_index(self, struct_ty: types.StructType, field: str, line: int) -> int:
        fields = self.struct_fields.get(struct_ty.name or "", [])
        for index, (_, field_name) in enumerate(fields):
            if field_name == field:
                return index
        raise CodeGenError(
            f"struct {struct_ty.name!r} has no field {field!r}", line
        )

    # ======================================================================
    # Top level
    # ======================================================================

    def generate(self, program: ast.Program) -> Module:
        # First pass: type definitions, then function signatures (so
        # forward calls work), then globals, then bodies.
        for decl in program.declarations:
            if isinstance(decl, ast.Typedef):
                self.typedefs[decl.name] = decl.target
            elif isinstance(decl, ast.StructDecl):
                self._declare_struct(decl)
        for decl in program.declarations:
            if isinstance(decl, ast.FunctionDecl):
                self._declare_function(decl)
        for decl in program.declarations:
            if isinstance(decl, ast.GlobalDecl):
                self._define_global(decl)
        for decl in program.declarations:
            if isinstance(decl, ast.FunctionDecl) and decl.body is not None:
                self._define_function(decl)
        return self.module

    def _declare_struct(self, decl: ast.StructDecl) -> None:
        struct_ty = self._struct_type(decl.name)
        if not struct_ty.is_opaque:
            raise CodeGenError(f"struct {decl.name!r} redefined", decl.line)
        self.struct_fields[decl.name] = list(decl.fields)
        struct_ty.set_body([self.resolve_type(t) for t, _ in decl.fields])

    def _declare_function(self, decl: ast.FunctionDecl) -> Function:
        existing = self.module.functions.get(decl.name)
        params = [self.resolve_type(p.decl_type) for p in decl.params]
        ret = self.resolve_type(decl.return_type)
        fn_ty = types.function(ret, params, decl.is_vararg)
        if existing is not None:
            if existing.function_type is not fn_ty:
                raise CodeGenError(
                    f"function {decl.name!r} redeclared with a different type",
                    decl.line,
                )
            return existing
        linkage = Linkage.INTERNAL if decl.is_static else Linkage.EXTERNAL
        function = self.module.new_function(
            fn_ty, decl.name, linkage, [p.name for p in decl.params]
        )
        return function

    def _define_global(self, decl: ast.GlobalDecl) -> None:
        value_type = self.resolve_type(decl.decl_type)
        if decl.is_extern:
            self.module.new_global(value_type, decl.name, None)
            return
        initializer: Constant
        if decl.init is None:
            initializer = null_value(value_type)
        else:
            initializer = self._constant_expr(decl.init, value_type)
        linkage = Linkage.INTERNAL if decl.is_static else Linkage.EXTERNAL
        self.module.new_global(value_type, decl.name, initializer, linkage)

    def _constant_expr(self, expr: ast.Expr, target: types.Type) -> Constant:
        """Evaluate a global initializer expression to a constant."""
        if isinstance(expr, ast.IntLiteral):
            if target.is_integer:
                return ConstantInt(target, expr.value)  # type: ignore[arg-type]
            if target.is_floating:
                return ConstantFP(target, float(expr.value))  # type: ignore[arg-type]
            if target.is_pointer and expr.value == 0:
                return ConstantPointerNull(target)  # type: ignore[arg-type]
        if isinstance(expr, ast.FloatLiteral) and target.is_floating:
            return ConstantFP(target, expr.value)  # type: ignore[arg-type]
        if isinstance(expr, ast.BoolLiteral) and target.is_bool:
            return ConstantBool(expr.value)
        if isinstance(expr, ast.NullLiteral) and target.is_pointer:
            return ConstantPointerNull(target)  # type: ignore[arg-type]
        if isinstance(expr, ast.StringLiteral) and target.is_pointer:
            return self._string_pointer_constant(expr.data)
        if isinstance(expr, ast.Unary) and expr.op == "-":
            inner = self._constant_expr(expr.operand, target)
            if isinstance(inner, ConstantInt):
                return ConstantInt(inner.type, -inner.value)  # type: ignore[arg-type]
            if isinstance(inner, ConstantFP):
                return ConstantFP(inner.type, -inner.value)  # type: ignore[arg-type]
        if isinstance(expr, ast.Binary) and target.is_integer:
            lhs = self._constant_expr(expr.lhs, target)
            rhs = self._constant_expr(expr.rhs, target)
            if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
                folded = _fold_const_int(expr.op, lhs.value, rhs.value)
                if folded is not None:
                    return ConstantInt(target, folded)  # type: ignore[arg-type]
        if isinstance(expr, ast.Identifier):
            symbol = self.module.functions.get(expr.name)
            if symbol is not None:
                if symbol.type is target:
                    return symbol
                return ConstantExpr("cast", target, (symbol,))
        raise CodeGenError("unsupported constant initializer", expr.line)

    def _string_global(self, data: bytes) -> GlobalVariable:
        terminated = data if data.endswith(b"\0") else data + b"\0"
        cached = self.string_cache.get(terminated)
        if cached is None:
            self._string_counter += 1
            cached = self.module.new_global(
                types.array(types.SBYTE, len(terminated)),
                self.module.unique_symbol(f".str.{self._string_counter}"),
                ConstantString(terminated),
                linkage=Linkage.INTERNAL,
                is_constant=True,
            )
            self.string_cache[terminated] = cached
        return cached

    def _string_pointer_constant(self, data: bytes) -> Constant:
        global_var = self._string_global(data)
        zero = ConstantInt(types.LONG, 0)
        return ConstantExpr(
            "getelementptr", types.pointer(types.SBYTE), (global_var, zero, zero)
        )

    # ======================================================================
    # Function bodies
    # ======================================================================

    def _define_function(self, decl: ast.FunctionDecl) -> None:
        function = self.module.functions[decl.name]
        if function.blocks:
            raise CodeGenError(f"function {decl.name!r} redefined", decl.line)
        self.function = function
        entry = function.append_block("entry")
        self.builder.position_at_end(entry)
        self.builder.current_line = decl.line
        self.scope = _Scope()
        # Classic C front-end move: copy every parameter into a stack
        # slot; mem2reg promotes them back.
        for arg in function.args:
            slot = self.builder.alloca(arg.type, name=f"{arg.name}.addr")
            self.builder.store(arg, slot)
            self.scope.define(arg.name, slot)
        self.gen_block(decl.body)
        self._terminate_function(decl)
        self.function = None

    def _terminate_function(self, decl: ast.FunctionDecl) -> None:
        block = self.builder.block
        if block is not None and not block.is_terminated:
            ret_ty = self.function.return_type
            if ret_ty.is_void:
                self.builder.ret_void()
            else:
                self.builder.ret(null_value(ret_ty))

    # -- statements ---------------------------------------------------------------

    def gen_block(self, block: ast.Block) -> None:
        self.scope = _Scope(self.scope)
        for stmt in block.statements:
            self.gen_statement(stmt)
        self.scope = self.scope.parent  # type: ignore[assignment]

    def gen_statement(self, stmt: ast.Stmt) -> None:
        self.builder.current_line = stmt.line
        if self.builder.block is not None and self.builder.block.is_terminated:
            # Unreachable statement (code after return/break): emit into
            # a fresh dead block so the IR stays well-formed.
            dead = self.function.append_block("dead")
            self.builder.position_at_end(dead)
        if isinstance(stmt, ast.Block):
            self.gen_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.gen_expr(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            self._gen_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._gen_break(stmt)
        elif isinstance(stmt, ast.Continue):
            self._gen_continue(stmt)
        elif isinstance(stmt, ast.Switch):
            self._gen_switch(stmt)
        elif isinstance(stmt, ast.FreeStmt):
            pointer = self.gen_expr(stmt.pointer)
            if not pointer.type.is_pointer:
                raise CodeGenError("free of a non-pointer", stmt.line)
            self.builder.free(pointer)
        elif isinstance(stmt, ast.Try):
            self._gen_try(stmt)
        elif isinstance(stmt, ast.Throw):
            self._gen_throw(stmt)
        else:
            raise CodeGenError(f"unsupported statement {type(stmt).__name__}", stmt.line)

    def _gen_decl(self, stmt: ast.DeclStmt) -> None:
        value_type = self.resolve_type(stmt.decl_type)
        if value_type.is_void:
            raise CodeGenError("cannot declare a void variable", stmt.line)
        slot = self.builder.alloca(value_type, name=stmt.name)
        self.scope.define(stmt.name, slot)
        if stmt.init is not None:
            value = self.gen_expr(stmt.init)
            value = self.convert(value, value_type, stmt.line)
            self.builder.store(value, slot)

    def _gen_if(self, stmt: ast.If) -> None:
        cond = self._gen_condition(stmt.cond)
        then_block = self.function.append_block("if.then")
        merge_block = self.function.append_block("if.end")
        else_block = merge_block
        if stmt.otherwise is not None:
            else_block = self.function.append_block("if.else")
        self.builder.cond_br(cond, then_block, else_block)
        self.builder.position_at_end(then_block)
        self.gen_statement(stmt.then)
        if not self.builder.block.is_terminated:
            self.builder.br(merge_block)
        if stmt.otherwise is not None:
            self.builder.position_at_end(else_block)
            self.gen_statement(stmt.otherwise)
            if not self.builder.block.is_terminated:
                self.builder.br(merge_block)
        self.builder.position_at_end(merge_block)

    def _gen_while(self, stmt: ast.While) -> None:
        cond_block = self.function.append_block("while.cond")
        body_block = self.function.append_block("while.body")
        end_block = self.function.append_block("while.end")
        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        cond = self._gen_condition(stmt.cond)
        self.builder.cond_br(cond, body_block, end_block)
        self.builder.position_at_end(body_block)
        self.loop_stack.append((end_block, cond_block))
        self.gen_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(cond_block)
        self.builder.position_at_end(end_block)

    def _gen_do_while(self, stmt: ast.DoWhile) -> None:
        body_block = self.function.append_block("do.body")
        cond_block = self.function.append_block("do.cond")
        end_block = self.function.append_block("do.end")
        self.builder.br(body_block)
        self.builder.position_at_end(body_block)
        self.loop_stack.append((end_block, cond_block))
        self.gen_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        cond = self._gen_condition(stmt.cond)
        self.builder.cond_br(cond, body_block, end_block)
        self.builder.position_at_end(end_block)

    def _gen_for(self, stmt: ast.For) -> None:
        self.scope = _Scope(self.scope)
        if stmt.init is not None:
            self.gen_statement(stmt.init)
        cond_block = self.function.append_block("for.cond")
        body_block = self.function.append_block("for.body")
        step_block = self.function.append_block("for.step")
        end_block = self.function.append_block("for.end")
        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        if stmt.cond is not None:
            cond = self._gen_condition(stmt.cond)
            self.builder.cond_br(cond, body_block, end_block)
        else:
            self.builder.br(body_block)
        self.builder.position_at_end(body_block)
        self.loop_stack.append((end_block, step_block))
        self.gen_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(step_block)
        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self.gen_expr(stmt.step)
        self.builder.br(cond_block)
        self.builder.position_at_end(end_block)
        self.scope = self.scope.parent  # type: ignore[assignment]

    def _gen_return(self, stmt: ast.Return) -> None:
        ret_ty = self.function.return_type
        if stmt.value is None:
            if not ret_ty.is_void:
                raise CodeGenError("return without a value", stmt.line)
            self.builder.ret_void()
            return
        value = self.gen_expr(stmt.value)
        value = self.convert(value, ret_ty, stmt.line)
        self.builder.ret(value)

    def _gen_break(self, stmt: ast.Break) -> None:
        if not self.loop_stack:
            raise CodeGenError("break outside a loop or switch", stmt.line)
        self.builder.br(self.loop_stack[-1][0])

    def _gen_continue(self, stmt: ast.Continue) -> None:
        for target, continue_block in reversed(self.loop_stack):
            if continue_block is not None:
                self.builder.br(continue_block)
                return
        raise CodeGenError("continue outside a loop", stmt.line)

    def _gen_switch(self, stmt: ast.Switch) -> None:
        value = self.gen_expr(stmt.value)
        if not value.type.is_integer:
            raise CodeGenError("switch value must be an integer", stmt.line)
        end_block = self.function.append_block("switch.end")
        case_blocks = [
            self.function.append_block(f"case.{case_value}")
            for case_value, _ in stmt.cases
        ]
        default_block = end_block
        if stmt.default_body is not None:
            default_block = self.function.append_block("case.default")
        cases = [
            (ConstantInt(value.type, case_value), block)  # type: ignore[arg-type]
            for (case_value, _), block in zip(stmt.cases, case_blocks)
        ]
        self.builder.switch(value, default_block, cases)
        self.loop_stack.append((end_block, None))
        # Fallthrough order: each case block falls into the next, then
        # the default (matching C source order with default last).
        bodies = [body for _, body in stmt.cases]
        blocks = list(case_blocks)
        if stmt.default_body is not None:
            bodies.append(stmt.default_body)
            blocks.append(default_block)
        for index, (block, body) in enumerate(zip(blocks, bodies)):
            self.builder.position_at_end(block)
            for inner in body:
                self.gen_statement(inner)
            if not self.builder.block.is_terminated:
                next_block = blocks[index + 1] if index + 1 < len(blocks) else end_block
                self.builder.br(next_block)
        self.loop_stack.pop()
        self.builder.position_at_end(end_block)

    def _gen_try(self, stmt: ast.Try) -> None:
        handler_block = self.function.append_block("catch")
        end_block = self.function.append_block("try.end")
        self.try_stack.append(handler_block)
        self.gen_block(stmt.body)
        self.try_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(end_block)
        self.builder.position_at_end(handler_block)
        self.gen_block(stmt.handler)
        if not self.builder.block.is_terminated:
            self.builder.br(end_block)
        self.builder.position_at_end(end_block)

    def _gen_throw(self, stmt: ast.Throw) -> None:
        if self.try_stack:
            # Paper section 2.4: a throw inside the try block becomes an
            # explicit branch to the catch block.
            self.builder.br(self.try_stack[-1])
        else:
            self.builder.unwind()

    # ======================================================================
    # Expressions
    # ======================================================================

    def _gen_condition(self, expr: ast.Expr) -> Value:
        value = self.gen_expr(expr)
        return self._to_bool(value, expr.line)

    def _to_bool(self, value: Value, line: int) -> Value:
        if value.type.is_bool:
            return value
        if value.type.is_integer or value.type.is_floating:
            return self.builder.setne(value, null_value(value.type), "tobool")
        if value.type.is_pointer:
            return self.builder.setne(
                value, ConstantPointerNull(value.type), "tobool"
            )
        raise CodeGenError(f"cannot use {value.type} as a condition", line)

    def gen_expr(self, expr: ast.Expr) -> Value:
        method = getattr(self, "_gen_" + type(expr).__name__.lower(), None)
        if method is None:
            raise CodeGenError(f"unsupported expression {type(expr).__name__}", expr.line)
        self.builder.current_line = expr.line
        return method(expr)

    # -- literals --------------------------------------------------------------

    def _gen_intliteral(self, expr: ast.IntLiteral) -> Value:
        if types.INT.min_value <= expr.value <= types.INT.max_value:
            return ConstantInt(types.INT, expr.value)
        return ConstantInt(types.LONG, expr.value)

    def _gen_floatliteral(self, expr: ast.FloatLiteral) -> Value:
        return ConstantFP(types.DOUBLE, expr.value)

    def _gen_boolliteral(self, expr: ast.BoolLiteral) -> Value:
        return ConstantBool(expr.value)

    def _gen_nullliteral(self, expr: ast.NullLiteral) -> Value:
        return ConstantPointerNull(types.pointer(types.SBYTE))

    def _gen_charliteral(self, expr: ast.CharLiteral) -> Value:
        return ConstantInt(types.SBYTE, expr.value)

    def _gen_stringliteral(self, expr: ast.StringLiteral) -> Value:
        global_var = self._string_global(expr.data)
        zero = ConstantInt(types.LONG, 0)
        return self.builder.gep(global_var, [zero, zero], "str")

    def _gen_identifier(self, expr: ast.Identifier) -> Value:
        address = self._lookup(expr.name, expr.line)
        if isinstance(address, Function):
            return address
        pointee = address.type.pointee
        if pointee.is_array:
            # Array-to-pointer decay.
            zero = ConstantInt(types.LONG, 0)
            return self.builder.gep(address, [zero, zero], f"{expr.name}.decay")
        if pointee.is_struct:
            raise CodeGenError(
                f"struct value {expr.name!r} used where a scalar is needed "
                "(take a field or its address)", expr.line)
        return self.builder.load(address, expr.name)

    def _lookup(self, name: str, line: int) -> Value:
        local = self.scope.lookup(name)
        if local is not None:
            return local
        symbol = self.module.get_symbol(name)
        if symbol is not None:
            return symbol
        raise CodeGenError(f"undefined identifier {name!r}", line)

    # -- lvalues ----------------------------------------------------------------

    def gen_addr(self, expr: ast.Expr) -> Value:
        """Generate the *address* of an lvalue expression."""
        if isinstance(expr, ast.Identifier):
            address = self._lookup(expr.name, expr.line)
            if isinstance(address, Function):
                raise CodeGenError("a function is not an lvalue", expr.line)
            return address
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self.gen_expr(expr.operand)
            if not pointer.type.is_pointer:
                raise CodeGenError("cannot dereference a non-pointer", expr.line)
            return pointer
        if isinstance(expr, ast.Index):
            return self._gen_index_addr(expr)
        if isinstance(expr, ast.Member):
            return self._gen_member_addr(expr)
        raise CodeGenError("expression is not an lvalue", expr.line)

    def _gen_index_addr(self, expr: ast.Index) -> Value:
        index = self.gen_expr(expr.index)
        index = self.convert(index, types.LONG, expr.line)
        if isinstance(expr.base, ast.Expr):
            base_addr = self._addr_or_value(expr.base)
        pointee = base_addr.type.pointee
        if pointee.is_array:
            zero = ConstantInt(types.LONG, 0)
            return self.builder.gep(base_addr, [zero, index], "arrayidx")
        return self.builder.gep(base_addr, [index], "ptridx")

    def _addr_or_value(self, expr: ast.Expr) -> Value:
        """For ``a[i]``: if ``a`` is an array lvalue use its address; if
        it is a pointer rvalue use its value."""
        if isinstance(expr, (ast.Identifier, ast.Member, ast.Index)):
            try:
                address = self.gen_addr(expr)
            except CodeGenError:
                return self.gen_expr(expr)
            pointee = address.type.pointee
            if pointee.is_array:
                return address
            if pointee.is_pointer:
                return self.builder.load(address, "ptr")
            return address
        value = self.gen_expr(expr)
        if not value.type.is_pointer:
            raise CodeGenError("cannot index a non-pointer", expr.line)
        return value

    def _gen_member_addr(self, expr: ast.Member) -> Value:
        if expr.arrow:
            base = self.gen_expr(expr.base)
            if not base.type.is_pointer or not base.type.pointee.is_struct:
                raise CodeGenError("-> requires a struct pointer", expr.line)
            struct_ty = base.type.pointee
        else:
            base = self.gen_addr(expr.base)
            if not base.type.pointee.is_struct:
                raise CodeGenError(". requires a struct value", expr.line)
            struct_ty = base.type.pointee
        index = self._field_index(struct_ty, expr.field, expr.line)
        return self.builder.struct_gep(base, index, expr.field)

    # -- operators ---------------------------------------------------------------

    def _gen_unary(self, expr: ast.Unary) -> Value:
        op = expr.op
        if op == "&":
            return self.gen_addr(expr.operand)
        if op == "*":
            pointer = self.gen_expr(expr.operand)
            if not pointer.type.is_pointer:
                raise CodeGenError("cannot dereference a non-pointer", expr.line)
            if pointer.type.pointee.is_struct or pointer.type.pointee.is_array:
                return pointer  # struct deref used as lvalue base
            return self.builder.load(pointer, "deref")
        if op == "-":
            value = self.gen_expr(expr.operand)
            if not value.type.is_arithmetic:
                raise CodeGenError("unary - needs a numeric operand", expr.line)
            return self.builder.neg(value, "neg")
        if op == "~":
            value = self.gen_expr(expr.operand)
            if not value.type.is_integer:
                raise CodeGenError("~ needs an integer operand", expr.line)
            return self.builder.not_(value, "not")
        if op == "!":
            value = self._gen_condition(expr.operand)
            return self.builder.not_(value, "lnot")
        if op in ("pre++", "pre--", "post++", "post--"):
            return self._gen_incdec(expr)
        raise CodeGenError(f"unsupported unary operator {op!r}", expr.line)

    def _gen_incdec(self, expr: ast.Unary) -> Value:
        address = self.gen_addr(expr.operand)
        old = self.builder.load(address, "old")
        delta_op = "+" if "++" in expr.op else "-"
        if old.type.is_pointer:
            one = ConstantInt(types.LONG, 1 if delta_op == "+" else -1)
            new = self.builder.gep(old, [one], "incdec")
        elif old.type.is_integer:
            one = ConstantInt(old.type, 1)  # type: ignore[arg-type]
            if delta_op == "+":
                new = self.builder.add(old, one, "inc")
            else:
                new = self.builder.sub(old, one, "dec")
        else:
            raise CodeGenError("++/-- needs an integer or pointer", expr.line)
        self.builder.store(new, address)
        return new if expr.op.startswith("pre") else old

    def _gen_binary(self, expr: ast.Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._gen_logical(expr)
        lhs = self.gen_expr(expr.lhs)
        rhs = self.gen_expr(expr.rhs)
        return self._emit_binary(op, lhs, rhs, expr.line)

    def _emit_binary(self, op: str, lhs: Value, rhs: Value, line: int) -> Value:
        # Pointer arithmetic.
        if lhs.type.is_pointer and op in ("+", "-") and rhs.type.is_integer:
            index = self.convert(rhs, types.LONG, line)
            if op == "-":
                index = self.builder.neg(index, "idx.neg")
            return self.builder.gep(lhs, [index], "ptradd")
        if rhs.type.is_pointer and op == "+" and lhs.type.is_integer:
            index = self.convert(lhs, types.LONG, line)
            return self.builder.gep(rhs, [index], "ptradd")
        if lhs.type.is_pointer and rhs.type.is_pointer:
            if op in _COMPARE_OPS:
                rhs2 = self._pointer_compare_operand(rhs, lhs.type, line)
                return self.builder._binary(_COMPARE_OPS[op], lhs, rhs2, "cmp")
            if op == "-":
                left = self.builder.cast(lhs, types.LONG, "p2l")
                right = self.builder.cast(rhs, types.LONG, "p2l")
                diff = self.builder.sub(left, right, "ptrdiff")
                size = self.module.data_layout.size_of(lhs.type.pointee)
                if size > 1:
                    diff = self.builder.div(diff, ConstantInt(types.LONG, size), "ptrdiff")
                return diff
            raise CodeGenError(f"unsupported pointer operation {op!r}", line)
        if (lhs.type.is_pointer or rhs.type.is_pointer) and op in _COMPARE_OPS:
            # pointer vs null literal / integer zero
            if lhs.type.is_pointer:
                rhs = self._pointer_compare_operand(rhs, lhs.type, line)
                return self.builder._binary(_COMPARE_OPS[op], lhs, rhs, "cmp")
            lhs = self._pointer_compare_operand(lhs, rhs.type, line)
            return self.builder._binary(_COMPARE_OPS[op], lhs, rhs, "cmp")
        # Shifts: the amount is always ubyte.
        if op in ("<<", ">>"):
            if not lhs.type.is_integer:
                raise CodeGenError("shift needs an integer", line)
            amount = self.convert(rhs, types.UBYTE, line)
            if op == "<<":
                return self.builder.shl(lhs, amount, "shl")
            return self.builder.shr(lhs, amount, "shr")
        # Usual arithmetic conversions for the numeric/bool cases.
        lhs, rhs = self._usual_conversions(lhs, rhs, line)
        if op in _COMPARE_OPS:
            return self.builder._binary(_COMPARE_OPS[op], lhs, rhs, "cmp")
        if op in _ARITH_OPS:
            if op in ("&", "|", "^"):
                if not lhs.type.is_integral:
                    raise CodeGenError(f"{op} needs integral operands", line)
            elif not lhs.type.is_arithmetic:
                raise CodeGenError(f"{op} needs numeric operands", line)
            return self.builder._binary(_ARITH_OPS[op], lhs, rhs, "arith")
        raise CodeGenError(f"unsupported binary operator {op!r}", line)

    def _pointer_compare_operand(self, value: Value, pointer_type: types.Type,
                                 line: int) -> Value:
        if value.type is pointer_type:
            return value
        if isinstance(value, ConstantPointerNull):
            return ConstantPointerNull(pointer_type)  # type: ignore[arg-type]
        if isinstance(value, ConstantInt) and value.value == 0:
            return ConstantPointerNull(pointer_type)  # type: ignore[arg-type]
        if value.type.is_pointer:
            return self.builder.cast(value, pointer_type, "ptrcmp")
        raise CodeGenError("cannot compare pointer with non-pointer", line)

    def _usual_conversions(self, lhs: Value, rhs: Value, line: int) -> tuple[Value, Value]:
        if lhs.type is rhs.type:
            return lhs, rhs
        common = _common_type(lhs.type, rhs.type)
        if common is None:
            raise CodeGenError(
                f"incompatible operand types {lhs.type} and {rhs.type}", line
            )
        return (self.convert(lhs, common, line), self.convert(rhs, common, line))

    def _entry_alloca(self, ty: types.Type, name: str) -> Value:
        """Allocate a slot at the top of the entry block so it dominates
        every store generated for the expression's arms."""
        from ..core.instructions import AllocaInst

        slot = AllocaInst(ty, None, name)
        slot.loc = self.builder.current_line
        self.function.entry_block.insert(0, slot)
        return slot

    def _gen_logical(self, expr: ast.Binary) -> Value:
        """Short-circuit && and || via control flow and a bool slot."""
        slot = self._entry_alloca(types.BOOL, "sc")
        lhs = self._gen_condition(expr.lhs)
        rhs_block = self.function.append_block("sc.rhs")
        end_block = self.function.append_block("sc.end")
        self.builder.store(lhs, slot)
        if expr.op == "&&":
            self.builder.cond_br(lhs, rhs_block, end_block)
        else:
            self.builder.cond_br(lhs, end_block, rhs_block)
        self.builder.position_at_end(rhs_block)
        rhs = self._gen_condition(expr.rhs)
        self.builder.store(rhs, slot)
        self.builder.br(end_block)
        self.builder.position_at_end(end_block)
        return self.builder.load(slot, "sc.val")

    def _gen_assign(self, expr: ast.Assign) -> Value:
        address = self.gen_addr(expr.target)
        target_ty = address.type.pointee
        if expr.op is None:
            value = self.gen_expr(expr.value)
        else:
            old = self.builder.load(address, "cur")
            rhs = self.gen_expr(expr.value)
            value = self._emit_binary(expr.op, old, rhs, expr.line)
        value = self.convert(value, target_ty, expr.line)
        self.builder.store(value, address)
        return value

    def _gen_conditional(self, expr: ast.Conditional) -> Value:
        cond = self._gen_condition(expr.cond)
        then_block = self.function.append_block("cond.then")
        else_block = self.function.append_block("cond.else")
        end_block = self.function.append_block("cond.end")
        self.builder.cond_br(cond, then_block, else_block)
        self.builder.position_at_end(then_block)
        then_value = self.gen_expr(expr.then)
        then_exit = self.builder.block
        self.builder.position_at_end(else_block)
        else_value = self.gen_expr(expr.otherwise)
        if else_value.type is not then_value.type:
            else_value = self.convert(else_value, then_value.type, expr.line)
        else_exit = self.builder.block
        # A slot (not a phi): the front-end stays out of the SSA business.
        slot = self._entry_alloca(then_value.type, "cond.slot")
        self.builder.position_at_end(then_exit)
        self.builder.store(then_value, slot)
        self.builder.br(end_block)
        self.builder.position_at_end(else_exit)
        self.builder.store(else_value, slot)
        self.builder.br(end_block)
        self.builder.position_at_end(end_block)
        return self.builder.load(slot, "cond.val")

    def _gen_cast(self, expr: ast.Cast) -> Value:
        target = self.resolve_type(expr.target_type)
        value = self.gen_expr(expr.value)
        if value.type is target:
            return value
        if isinstance(value, ConstantPointerNull) and target.is_pointer:
            return ConstantPointerNull(target)  # type: ignore[arg-type]
        if isinstance(value, ConstantInt) and target.is_integer:
            return ConstantInt(target, value.value)  # type: ignore[arg-type]
        return self.builder.cast(value, target, "cast")

    def _gen_sizeof(self, expr: ast.SizeOf) -> Value:
        target = self.resolve_type(expr.target_type)
        return ConstantInt(types.LONG, self.module.data_layout.size_of(target))

    def _gen_mallocexpr(self, expr: ast.MallocExpr) -> Value:
        target = self.resolve_type(expr.target_type)
        count = None
        if expr.count is not None:
            count = self.convert(self.gen_expr(expr.count), types.UINT, expr.line)
        return self.builder.malloc(target, count, "new")

    def _gen_call(self, expr: ast.Call) -> Value:
        callee: Value
        if isinstance(expr.callee, ast.Identifier):
            symbol = self.scope.lookup(expr.callee.name)
            if symbol is None:
                symbol = self.module.get_symbol(expr.callee.name)
            if symbol is None:
                raise CodeGenError(
                    f"call to undeclared function {expr.callee.name!r}",
                    expr.line,
                )
            if isinstance(symbol, Function):
                callee = symbol
            else:
                callee = self.builder.load(symbol, expr.callee.name)
        else:
            callee = self.gen_expr(expr.callee)
        if not (callee.type.is_pointer and callee.type.pointee.is_function):
            raise CodeGenError("calling a non-function", expr.line)
        fn_ty = callee.type.pointee
        args: list[Value] = []
        for index, arg_expr in enumerate(expr.args):
            value = self.gen_expr(arg_expr)
            if index < len(fn_ty.params):
                value = self.convert(value, fn_ty.params[index], arg_expr.line)
            else:
                value = self._default_promote(value, arg_expr.line)
            args.append(value)
        if len(args) < len(fn_ty.params):
            raise CodeGenError("too few arguments", expr.line)
        if len(args) > len(fn_ty.params) and not fn_ty.is_vararg:
            raise CodeGenError("too many arguments", expr.line)
        if self.try_stack:
            # Paper section 2.4: any call within a try block becomes an
            # invoke whose unwind destination is the catch handler.
            normal = self.function.append_block("invoke.cont")
            result = self.builder.invoke(
                callee, args, normal, self.try_stack[-1], "call"
            )
            self.builder.position_at_end(normal)
            return result
        return self.builder.call(callee, args, "call")

    def _default_promote(self, value: Value, line: int) -> Value:
        """C default argument promotions for variadic arguments."""
        ty = value.type
        if ty.is_floating and ty.bits == 32:  # type: ignore[attr-defined]
            return self.convert(value, types.DOUBLE, line)
        if ty.is_integer and ty.bits < 32:  # type: ignore[attr-defined]
            return self.convert(value, types.INT, line)
        if ty.is_bool:
            return self.convert(value, types.INT, line)
        return value

    def _gen_member(self, expr: ast.Member) -> Value:
        address = self._gen_member_addr(expr)
        pointee = address.type.pointee
        if pointee.is_array:
            zero = ConstantInt(types.LONG, 0)
            return self.builder.gep(address, [zero, zero], "decay")
        if pointee.is_struct:
            raise CodeGenError("struct field used as a scalar", expr.line)
        return self.builder.load(address, expr.field)

    def _gen_index(self, expr: ast.Index) -> Value:
        address = self._gen_index_addr(expr)
        pointee = address.type.pointee
        if pointee.is_array:
            zero = ConstantInt(types.LONG, 0)
            return self.builder.gep(address, [zero, zero], "decay")
        if pointee.is_struct:
            return address
        return self.builder.load(address, "elem")

    # ======================================================================
    # Conversions
    # ======================================================================

    def convert(self, value: Value, target: types.Type, line: int) -> Value:
        """Implicit conversion (numeric widening/narrowing, bool, null)."""
        source = value.type
        if source is target:
            return value
        if isinstance(value, ConstantInt) and target.is_integer:
            return ConstantInt(target, value.value)  # type: ignore[arg-type]
        if isinstance(value, ConstantInt) and target.is_floating:
            return ConstantFP(target, float(value.value))  # type: ignore[arg-type]
        if isinstance(value, ConstantFP) and target.is_floating:
            return ConstantFP(target, value.value)  # type: ignore[arg-type]
        if isinstance(value, ConstantPointerNull) and target.is_pointer:
            return ConstantPointerNull(target)  # type: ignore[arg-type]
        if isinstance(value, ConstantInt) and value.value == 0 and target.is_pointer:
            return ConstantPointerNull(target)  # type: ignore[arg-type]
        if source.is_bool and (target.is_integer or target.is_floating):
            return self.builder.cast(value, target, "conv")
        if target.is_bool and (source.is_integer or source.is_pointer):
            return self._to_bool(value, line)
        if (source.is_integer or source.is_floating) and (
            target.is_integer or target.is_floating
        ):
            return self.builder.cast(value, target, "conv")
        raise CodeGenError(
            f"cannot implicitly convert {source} to {target} "
            "(use an explicit cast)", line
        )


def _fold_const_int(op: str, a: int, b: int) -> Optional[int]:
    """Evaluate simple constant arithmetic in global initializers."""
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/" and b != 0:
        return int(a / b)
    if op == "%" and b != 0:
        return a - b * int(a / b)
    if op == "<<":
        return a << b
    if op == ">>":
        return a >> b
    if op == "|":
        return a | b
    if op == "&":
        return a & b
    if op == "^":
        return a ^ b
    return None


def _common_type(a: types.Type, b: types.Type) -> Optional[types.Type]:
    """Simplified usual arithmetic conversions."""
    if a is b:
        return a
    if a.is_floating or b.is_floating:
        if a.is_floating and b.is_floating:
            return a if a.bits >= b.bits else b  # type: ignore[attr-defined]
        floating = a if a.is_floating else b
        other = b if a.is_floating else a
        if other.is_integer or other.is_bool:
            return floating
        return None
    if a.is_bool and b.is_integral:
        return b if b.is_integer else a
    if b.is_bool and a.is_integral:
        return a if a.is_integer else b
    if a.is_integer and b.is_integer:
        if a.bits != b.bits:  # type: ignore[attr-defined]
            return a if a.bits > b.bits else b  # type: ignore[attr-defined]
        # Same width: unsigned wins.
        return a if not a.signed else b  # type: ignore[attr-defined]
    return None
