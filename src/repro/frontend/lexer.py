"""Lexer for LC, the C-like source language of the front-end.

LC is the stand-in for the paper's C front-end: a small C subset plus
two extensions that exercise the paper's novel mechanisms — typed
``malloc(T)`` / ``malloc(T, n)`` allocation, and ``try``/``catch``/
``throw`` lowered onto ``invoke``/``unwind``.
"""

from __future__ import annotations

from typing import Optional

KEYWORDS = frozenset({
    "void", "bool", "char", "uchar", "short", "ushort", "int", "uint",
    "long", "ulong", "float", "double",
    "struct", "typedef", "extern", "static", "sizeof",
    "if", "else", "while", "for", "do", "break", "continue", "return",
    "switch", "case", "default",
    "true", "false", "null",
    "malloc", "free",
    "try", "catch", "throw",
})

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]


class LexError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class Token:
    __slots__ = ("kind", "text", "value", "line")

    def __init__(self, kind: str, text: str, line: int, value=None):
        self.kind = kind   # 'ident', 'keyword', 'int', 'float', 'string', 'char', op text, 'eof'
        self.text = text
        self.value = value
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    index = 0
    line = 1
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", index, end)
            index = end + 2
            continue
        if char.isdigit() or (char == "." and index + 1 < length
                              and source[index + 1].isdigit()):
            token, index = _lex_number(source, index, line)
            tokens.append(token)
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue
        if char == '"':
            data = bytearray()
            index += 1
            while index < length and source[index] != '"':
                byte, index = _lex_char(source, index, line)
                data.append(byte)
            if index >= length:
                raise LexError("unterminated string literal", line)
            index += 1
            tokens.append(Token("string", data.decode("latin-1"), line, bytes(data)))
            continue
        if char == "'":
            index += 1
            byte, index = _lex_char(source, index, line)
            if index >= length or source[index] != "'":
                raise LexError("unterminated character literal", line)
            index += 1
            tokens.append(Token("char", chr(byte), line, byte))
            continue
        for operator in _OPERATORS:
            if source.startswith(operator, index):
                tokens.append(Token(operator, operator, line))
                index += len(operator)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens


def _lex_number(source: str, index: int, line: int) -> tuple[Token, int]:
    start = index
    length = len(source)
    if source.startswith("0x", index) or source.startswith("0X", index):
        index += 2
        while index < length and source[index] in "0123456789abcdefABCDEF":
            index += 1
        return Token("int", source[start:index], line, int(source[start:index], 16)), index
    while index < length and source[index].isdigit():
        index += 1
    is_float = False
    if index < length and source[index] == "." and not source.startswith("..", index):
        is_float = True
        index += 1
        while index < length and source[index].isdigit():
            index += 1
    if index < length and source[index] in "eE":
        peek = index + 1
        if peek < length and source[peek] in "+-":
            peek += 1
        if peek < length and source[peek].isdigit():
            is_float = True
            index = peek
            while index < length and source[index].isdigit():
                index += 1
    text = source[start:index]
    suffix = ""
    while index < length and source[index] in "uUlLfF":
        suffix += source[index].lower()
        index += 1
    if is_float or "f" in suffix:
        return Token("float", text + suffix, line, float(text)), index
    return Token("int", text + suffix, line, int(text)), index


def _lex_char(source: str, index: int, line: int) -> tuple[int, int]:
    if source[index] == "\\":
        escape = source[index + 1]
        if escape == "x":
            value = int(source[index + 2:index + 4], 16)
            return value, index + 4
        if escape not in _ESCAPES:
            raise LexError(f"unknown escape \\{escape}", line)
        return _ESCAPES[escape], index + 2
    return ord(source[index]), index + 1
