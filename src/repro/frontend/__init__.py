"""The LC front-end: a C-like language compiled to the IR.

LC stands in for the paper's C front-end.  It covers the C features the
evaluation leans on — structs, pointers, arrays, casts, function
pointers, custom allocators via ``char`` buffers — plus typed
``malloc(T)``/``malloc(T, n)`` and a ``try``/``catch``/``throw``
extension that lowers onto ``invoke``/``unwind`` (paper section 2.4).

The front-end emits *naive* code on purpose (locals in allocas, no SSA
form): paper section 3.2's division of labour puts SSA construction in
the ``mem2reg``/``sroa`` passes, not in front-ends.
"""

from .astnodes import Program
from .codegen import CodeGenError, CodeGenerator
from .cparser import ParseError, Parser, parse
from .lexer import LexError, tokenize

from ..core.module import Module


def compile_source(source: str, module_name: str = "lc_module") -> Module:
    """Compile LC source text into an IR module (unoptimized)."""
    program = parse(source)
    return CodeGenerator(module_name).generate(program)


__all__ = [
    "Program", "CodeGenError", "CodeGenerator", "ParseError", "Parser",
    "parse", "LexError", "tokenize", "compile_source",
]
