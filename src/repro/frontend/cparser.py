"""Recursive-descent parser for LC (see :mod:`repro.frontend.lexer`).

Produces the AST of :mod:`repro.frontend.astnodes`.  Typedef and struct
names are tracked during parsing so the type/expression ambiguity in
casts and declarations resolves the way C compilers do it.
"""

from __future__ import annotations

from typing import Optional

from . import astnodes as ast
from .lexer import Token, tokenize

_PRIMITIVE_TYPES = frozenset({
    "void", "bool", "char", "uchar", "short", "ushort", "int", "uint",
    "long", "ulong", "float", "double",
})

_ASSIGN_OPS = {
    "=": None, "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}


class ParseError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0
        self.typedef_names: set[str] = set()
        self.struct_tags: set[str] = set()

    # -- token plumbing -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.position + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise ParseError(f"expected {wanted!r}, found {token.text!r}", token.line)
        return self.next()

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.peek().line)

    # -- types ------------------------------------------------------------------

    def at_type_start(self, offset: int = 0) -> bool:
        token = self.peek(offset)
        if token.kind == "keyword":
            return token.text in _PRIMITIVE_TYPES or token.text == "struct"
        return token.kind == "ident" and token.text in self.typedef_names

    def parse_type(self) -> ast.TypeExpr:
        token = self.peek()
        if token.kind == "keyword" and token.text in _PRIMITIVE_TYPES:
            self.next()
            base: ast.TypeExpr = ast.NamedType(token.text, token.line)
        elif token.kind == "keyword" and token.text == "struct":
            self.next()
            tag = self.expect("ident")
            self.struct_tags.add(tag.text)
            base = ast.NamedType(tag.text, tag.line, is_struct=True)
        elif token.kind == "ident" and token.text in self.typedef_names:
            self.next()
            base = ast.NamedType(token.text, token.line)
        else:
            raise self.error(f"expected a type, found {token.text!r}")
        while True:
            if self.accept("*"):
                base = ast.PointerType(base, token.line)
            elif (self.peek().kind == "(" and self.peek(1).kind == "*"
                  and self.peek(2).kind == ")"):
                # Abstract function-pointer declarator: T (*)(params)
                self.next()
                self.next()
                self.next()
                params, is_vararg = self._parse_param_types()
                base = ast.FunctionPointerType(base, params, is_vararg, token.line)
            else:
                return base

    def _parse_param_types(self) -> tuple[list[ast.TypeExpr], bool]:
        self.expect("(")
        params: list[ast.TypeExpr] = []
        is_vararg = False
        if self.accept(")"):
            return params, is_vararg
        if self.peek().kind == "keyword" and self.peek().text == "void" and self.peek(1).kind == ")":
            self.next()
            self.expect(")")
            return params, is_vararg
        while True:
            if self.accept("..."):
                is_vararg = True
                break
            params.append(self.parse_type())
            self.accept("ident")  # optional parameter name, ignored
            if not self.accept(","):
                break
        self.expect(")")
        return params, is_vararg

    # -- top level -----------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        declarations: list[ast.Node] = []
        while self.peek().kind != "eof":
            declarations.extend(self._parse_top_level())
        return ast.Program(declarations)

    def _parse_top_level(self) -> list[ast.Node]:
        token = self.peek()
        if token.kind == "keyword" and token.text == "typedef":
            return [self._parse_typedef()]
        if (token.kind == "keyword" and token.text == "struct"
                and self.peek(2).kind == "{"):
            return [self._parse_struct_decl()]
        return self._parse_global_or_function()

    def _parse_typedef(self) -> ast.Typedef:
        start = self.expect("keyword", "typedef")
        target = self.parse_type()
        name = self.expect("ident")
        self.expect(";")
        self.typedef_names.add(name.text)
        return ast.Typedef(name.text, target, start.line)

    def _parse_struct_decl(self) -> ast.StructDecl:
        start = self.expect("keyword", "struct")
        tag = self.expect("ident")
        self.struct_tags.add(tag.text)
        self.expect("{")
        fields: list[tuple[ast.TypeExpr, str]] = []
        while not self.accept("}"):
            field_type = self.parse_type()
            while True:
                field_type2, name = self._parse_declarator(field_type)
                fields.append((field_type2, name))
                if not self.accept(","):
                    break
            self.expect(";")
        self.expect(";")
        return ast.StructDecl(tag.text, fields, start.line)

    def _parse_declarator(self, base: ast.TypeExpr) -> tuple[ast.TypeExpr, str]:
        """Parse ``*``-prefixes, a name, and array suffixes."""
        line = self.peek().line
        while self.accept("*"):
            base = ast.PointerType(base, line)
        if (self.peek().kind == "(" and self.peek(1).kind == "*"
                and self.peek(2).kind == "ident"):
            # Function-pointer declarator: T (*name)(params), or an
            # array of them: T (*name[N])(params).
            self.next()
            self.next()
            name = self.expect("ident").text
            array_count = None
            if self.accept("["):
                array_count = self.expect("int").value
                self.expect("]")
            self.expect(")")
            params, is_vararg = self._parse_param_types()
            declared: ast.TypeExpr = ast.FunctionPointerType(
                base, params, is_vararg, line
            )
            if array_count is not None:
                declared = ast.ArrayTypeExpr(declared, array_count, line)
            return declared, name
        name = self.expect("ident").text
        suffixes: list[int] = []
        while self.accept("["):
            count = self.expect("int")
            self.expect("]")
            suffixes.append(count.value)
        for count in reversed(suffixes):
            base = ast.ArrayTypeExpr(base, count, line)
        return base, name

    def _parse_global_or_function(self) -> list[ast.Node]:
        is_extern = bool(self.accept("keyword", "extern"))
        is_static = bool(self.accept("keyword", "static"))
        base = self.parse_type()
        line = self.peek().line
        decl_type, name = self._parse_declarator(base)
        if self.peek().kind == "(" and not isinstance(decl_type, ast.FunctionPointerType):
            return [self._parse_function(decl_type, name, line, is_static)]
        declarations: list[ast.Node] = []
        while True:
            init = None
            if self.accept("="):
                init = self.parse_assignment()
            declarations.append(
                ast.GlobalDecl(decl_type, name, init, line, is_extern, is_static)
            )
            if not self.accept(","):
                break
            decl_type, name = self._parse_declarator(base)
        self.expect(";")
        return declarations

    def _parse_function(self, return_type: ast.TypeExpr, name: str,
                        line: int, is_static: bool) -> ast.FunctionDecl:
        self.expect("(")
        params: list[ast.Param] = []
        is_vararg = False
        if not self.accept(")"):
            if (self.peek().kind == "keyword" and self.peek().text == "void"
                    and self.peek(1).kind == ")"):
                self.next()
            else:
                while True:
                    if self.accept("..."):
                        is_vararg = True
                        break
                    param_base = self.parse_type()
                    param_type, param_name = self._parse_declarator(param_base)
                    params.append(ast.Param(param_type, param_name, line))
                    if not self.accept(","):
                        break
            self.expect(")")
        body = None
        if self.peek().kind == "{":
            body = self._parse_block()
        else:
            self.expect(";")
        return ast.FunctionDecl(return_type, name, params, is_vararg, body,
                                line, is_static)

    # -- statements ---------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self.expect("{")
        statements: list[ast.Stmt] = []
        while not self.accept("}"):
            statements.append(self._parse_statement())
        return ast.Block(statements, start.line)

    def _parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "{":
            return self._parse_block()
        if token.kind == "keyword":
            handler = {
                "if": self._parse_if, "while": self._parse_while,
                "do": self._parse_do_while, "for": self._parse_for,
                "return": self._parse_return, "switch": self._parse_switch,
                "try": self._parse_try,
            }.get(token.text)
            if handler is not None:
                return handler()
            if token.text == "break":
                self.next()
                self.expect(";")
                return ast.Break(token.line)
            if token.text == "continue":
                self.next()
                self.expect(";")
                return ast.Continue(token.line)
            if token.text == "throw":
                self.next()
                self.expect(";")
                return ast.Throw(token.line)
            if token.text == "free":
                self.next()
                self.expect("(")
                pointer = self.parse_expression()
                self.expect(")")
                self.expect(";")
                return ast.FreeStmt(pointer, token.line)
        if self.at_type_start():
            return self._parse_declaration()
        expr = self.parse_expression()
        self.expect(";")
        return ast.ExprStmt(expr, token.line)

    def _parse_declaration(self) -> ast.Stmt:
        line = self.peek().line
        base = self.parse_type()
        statements: list[ast.Stmt] = []
        while True:
            decl_type, name = self._parse_declarator(base)
            init = None
            if self.accept("="):
                init = self.parse_assignment()
            statements.append(ast.DeclStmt(decl_type, name, init, line))
            if not self.accept(","):
                break
        self.expect(";")
        if len(statements) == 1:
            return statements[0]
        return ast.Block(statements, line)

    def _parse_if(self) -> ast.Stmt:
        start = self.expect("keyword", "if")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then = self._parse_statement()
        otherwise = None
        if self.accept("keyword", "else"):
            otherwise = self._parse_statement()
        return ast.If(cond, then, otherwise, start.line)

    def _parse_while(self) -> ast.Stmt:
        start = self.expect("keyword", "while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        body = self._parse_statement()
        return ast.While(cond, body, start.line)

    def _parse_do_while(self) -> ast.Stmt:
        start = self.expect("keyword", "do")
        body = self._parse_statement()
        self.expect("keyword", "while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(body, cond, start.line)

    def _parse_for(self) -> ast.Stmt:
        start = self.expect("keyword", "for")
        self.expect("(")
        init: Optional[ast.Stmt] = None
        if not self.accept(";"):
            if self.at_type_start():
                init = self._parse_declaration()
            else:
                init = ast.ExprStmt(self.parse_expression(), start.line)
                self.expect(";")
        cond = None
        if not self.accept(";"):
            cond = self.parse_expression()
            self.expect(";")
        step = None
        if self.peek().kind != ")":
            step = self.parse_expression()
        self.expect(")")
        body = self._parse_statement()
        return ast.For(init, cond, step, body, start.line)

    def _parse_return(self) -> ast.Stmt:
        start = self.expect("keyword", "return")
        value = None
        if self.peek().kind != ";":
            value = self.parse_expression()
        self.expect(";")
        return ast.Return(value, start.line)

    def _parse_switch(self) -> ast.Stmt:
        start = self.expect("keyword", "switch")
        self.expect("(")
        value = self.parse_expression()
        self.expect(")")
        self.expect("{")
        cases: list[tuple[int, list[ast.Stmt]]] = []
        default_body: Optional[list[ast.Stmt]] = None
        current: Optional[list[ast.Stmt]] = None
        while not self.accept("}"):
            if self.accept("keyword", "case"):
                sign = -1 if self.accept("-") else 1
                case_value = self.expect("int")
                self.expect(":")
                current = []
                cases.append((sign * case_value.value, current))
            elif self.accept("keyword", "default"):
                self.expect(":")
                current = []
                default_body = current
            else:
                if current is None:
                    raise self.error("statement before first case label")
                current.append(self._parse_statement())
        return ast.Switch(value, cases, default_body, start.line)

    def _parse_try(self) -> ast.Stmt:
        start = self.expect("keyword", "try")
        body = self._parse_block()
        self.expect("keyword", "catch")
        handler = self._parse_block()
        return ast.Try(body, handler, start.line)

    # -- expressions --------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        lhs = self._parse_ternary()
        token = self.peek()
        if token.kind in _ASSIGN_OPS:
            self.next()
            rhs = self.parse_assignment()
            return ast.Assign(lhs, rhs, token.line, _ASSIGN_OPS[token.kind])
        return lhs

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self.accept("?"):
            then = self.parse_expression()
            self.expect(":")
            otherwise = self._parse_ternary()
            return ast.Conditional(cond, then, otherwise, cond.line)
        return cond

    _PRECEDENCE = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        while self.peek().kind in self._PRECEDENCE[level]:
            op = self.next()
            rhs = self._parse_binary(level + 1)
            lhs = ast.Binary(op.kind, lhs, rhs, op.line)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind in ("-", "!", "~", "*", "&"):
            self.next()
            operand = self._parse_unary()
            return ast.Unary(token.kind, operand, token.line)
        if token.kind in ("++", "--"):
            self.next()
            operand = self._parse_unary()
            return ast.Unary("pre" + token.kind, operand, token.line)
        if token.kind == "(" and self.at_type_start(1):
            self.next()
            target_type = self.parse_type()
            self.expect(")")
            value = self._parse_unary()
            return ast.Cast(target_type, value, token.line)
        if token.kind == "keyword" and token.text == "sizeof":
            self.next()
            self.expect("(")
            target_type = self.parse_type()
            self.expect(")")
            return ast.SizeOf(target_type, token.line)
        if token.kind == "keyword" and token.text == "malloc":
            self.next()
            self.expect("(")
            target_type = self.parse_type()
            count = None
            if self.accept(","):
                count = self.parse_expression()
            self.expect(")")
            return ast.MallocExpr(target_type, count, token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self.peek()
            if token.kind == "(":
                self.next()
                args: list[ast.Expr] = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                    self.expect(")")
                expr = ast.Call(expr, args, token.line)
            elif token.kind == "[":
                self.next()
                index = self.parse_expression()
                self.expect("]")
                expr = ast.Index(expr, index, token.line)
            elif token.kind == ".":
                self.next()
                field = self.expect("ident")
                expr = ast.Member(expr, field.text, False, token.line)
            elif token.kind == "->":
                self.next()
                field = self.expect("ident")
                expr = ast.Member(expr, field.text, True, token.line)
            elif token.kind in ("++", "--"):
                self.next()
                expr = ast.Unary("post" + token.kind, expr, token.line)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.next()
        if token.kind == "int":
            return ast.IntLiteral(token.value, token.line)
        if token.kind == "float":
            return ast.FloatLiteral(token.value, token.line)
        if token.kind == "string":
            return ast.StringLiteral(token.value, token.line)
        if token.kind == "char":
            return ast.CharLiteral(token.value, token.line)
        if token.kind == "ident":
            return ast.Identifier(token.text, token.line)
        if token.kind == "keyword":
            if token.text == "true":
                return ast.BoolLiteral(True, token.line)
            if token.text == "false":
                return ast.BoolLiteral(False, token.line)
            if token.text == "null":
                return ast.NullLiteral(token.line)
        if token.kind == "(":
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> ast.Program:
    """Parse LC source text into an AST."""
    return Parser(source).parse_program()
