"""Abstract syntax tree for LC.

The tree deliberately stays close to C's surface: types are resolved
and checked during IR generation (mirroring how thin the paper expects
front-ends to be — "translate source programs to LLVM code,
synthesizing as much useful type information as possible").
"""

from __future__ import annotations

from typing import Optional, Sequence


class Node:
    """Base class; ``line`` supports diagnostics."""

    __slots__ = ("line",)

    def __init__(self, line: int):
        self.line = line


# -- type expressions ---------------------------------------------------------

class TypeExpr(Node):
    __slots__ = ()


class NamedType(TypeExpr):
    """A primitive keyword, typedef name, or ``struct Tag``."""

    __slots__ = ("name", "is_struct")

    def __init__(self, name: str, line: int, is_struct: bool = False):
        super().__init__(line)
        self.name = name
        self.is_struct = is_struct


class PointerType(TypeExpr):
    __slots__ = ("base",)

    def __init__(self, base: TypeExpr, line: int):
        super().__init__(line)
        self.base = base


class ArrayTypeExpr(TypeExpr):
    __slots__ = ("base", "count")

    def __init__(self, base: TypeExpr, count: int, line: int):
        super().__init__(line)
        self.base = base
        self.count = count


class FunctionPointerType(TypeExpr):
    """``ret (*)(params)`` — usable in casts, typedefs, and declarators."""

    __slots__ = ("return_type", "params", "is_vararg")

    def __init__(self, return_type: TypeExpr, params: Sequence[TypeExpr],
                 is_vararg: bool, line: int):
        super().__init__(line)
        self.return_type = return_type
        self.params = list(params)
        self.is_vararg = is_vararg


# -- expressions -------------------------------------------------------------

class Expr(Node):
    __slots__ = ()


class IntLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int):
        super().__init__(line)
        self.value = value


class FloatLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, line: int):
        super().__init__(line)
        self.value = value


class BoolLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bool, line: int):
        super().__init__(line)
        self.value = value


class NullLiteral(Expr):
    __slots__ = ()


class StringLiteral(Expr):
    __slots__ = ("data",)

    def __init__(self, data: bytes, line: int):
        super().__init__(line)
        self.data = data


class CharLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int):
        super().__init__(line)
        self.value = value


class Identifier(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str, line: int):
        super().__init__(line)
        self.name = name


class Unary(Expr):
    """op in: - ! ~ * (deref) & (address-of) ++pre --pre post++ post--"""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Assign(Expr):
    """``lhs = rhs`` or compound ``lhs op= rhs`` (op like '+').`"""

    __slots__ = ("target", "value", "op")

    def __init__(self, target: Expr, value: Expr, line: int, op: Optional[str] = None):
        super().__init__(line)
        self.target = target
        self.value = value
        self.op = op


class Conditional(Expr):
    """``cond ? then : otherwise``"""

    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: Expr, then: Expr, otherwise: Expr, line: int):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class Call(Expr):
    __slots__ = ("callee", "args")

    def __init__(self, callee: Expr, args: Sequence[Expr], line: int):
        super().__init__(line)
        self.callee = callee
        self.args = list(args)


class Index(Expr):
    """``base[index]``"""

    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, line: int):
        super().__init__(line)
        self.base = base
        self.index = index


class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)"""

    __slots__ = ("base", "field", "arrow")

    def __init__(self, base: Expr, field: str, arrow: bool, line: int):
        super().__init__(line)
        self.base = base
        self.field = field
        self.arrow = arrow


class Cast(Expr):
    __slots__ = ("target_type", "value")

    def __init__(self, target_type: TypeExpr, value: Expr, line: int):
        super().__init__(line)
        self.target_type = target_type
        self.value = value


class SizeOf(Expr):
    __slots__ = ("target_type",)

    def __init__(self, target_type: TypeExpr, line: int):
        super().__init__(line)
        self.target_type = target_type


class MallocExpr(Expr):
    """Typed allocation: ``malloc(T)`` or ``malloc(T, count)``."""

    __slots__ = ("target_type", "count")

    def __init__(self, target_type: TypeExpr, count: Optional[Expr], line: int):
        super().__init__(line)
        self.target_type = target_type
        self.count = count


# -- statements --------------------------------------------------------------

class Stmt(Node):
    __slots__ = ()


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int):
        super().__init__(line)
        self.expr = expr


class DeclStmt(Stmt):
    """A local variable declaration, possibly initialised."""

    __slots__ = ("decl_type", "name", "init")

    def __init__(self, decl_type: TypeExpr, name: str, init: Optional[Expr], line: int):
        super().__init__(line)
        self.decl_type = decl_type
        self.name = name
        self.init = init


class Block(Stmt):
    __slots__ = ("statements",)

    def __init__(self, statements: Sequence[Stmt], line: int):
        super().__init__(line)
        self.statements = list(statements)


class If(Stmt):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: Expr, then: Stmt, otherwise: Optional[Stmt], line: int):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, line: int):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    __slots__ = ("body", "cond")

    def __init__(self, body: Stmt, cond: Expr, line: int):
        super().__init__(line)
        self.body = body
        self.cond = cond


class For(Stmt):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init: Optional[Stmt], cond: Optional[Expr],
                 step: Optional[Expr], body: Stmt, line: int):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], line: int):
        super().__init__(line)
        self.value = value


class Switch(Stmt):
    """``cases``: list of (constant int value, statements); default_body
    may be None."""

    __slots__ = ("value", "cases", "default_body")

    def __init__(self, value: Expr, cases, default_body, line: int):
        super().__init__(line)
        self.value = value
        self.cases = cases
        self.default_body = default_body


class FreeStmt(Stmt):
    __slots__ = ("pointer",)

    def __init__(self, pointer: Expr, line: int):
        super().__init__(line)
        self.pointer = pointer


class Try(Stmt):
    """``try { body } catch { handler }`` — the LC surface syntax for the
    invoke/unwind mechanism of paper section 2.4."""

    __slots__ = ("body", "handler")

    def __init__(self, body: Block, handler: Block, line: int):
        super().__init__(line)
        self.body = body
        self.handler = handler


class Throw(Stmt):
    """``throw;`` — unwind the stack to the nearest enclosing try."""

    __slots__ = ()


# -- top-level declarations --------------------------------------------------

class StructDecl(Node):
    __slots__ = ("name", "fields")  # fields: list of (TypeExpr, name)

    def __init__(self, name: str, fields, line: int):
        super().__init__(line)
        self.name = name
        self.fields = fields


class Typedef(Node):
    __slots__ = ("name", "target")

    def __init__(self, name: str, target: TypeExpr, line: int):
        super().__init__(line)
        self.name = name
        self.target = target


class GlobalDecl(Node):
    __slots__ = ("decl_type", "name", "init", "is_extern", "is_static")

    def __init__(self, decl_type: TypeExpr, name: str, init: Optional[Expr],
                 line: int, is_extern: bool = False, is_static: bool = False):
        super().__init__(line)
        self.decl_type = decl_type
        self.name = name
        self.init = init
        self.is_extern = is_extern
        self.is_static = is_static


class Param(Node):
    __slots__ = ("decl_type", "name")

    def __init__(self, decl_type: TypeExpr, name: str, line: int):
        super().__init__(line)
        self.decl_type = decl_type
        self.name = name


class FunctionDecl(Node):
    """A function definition (body is a Block) or declaration (body None)."""

    __slots__ = ("return_type", "name", "params", "is_vararg", "body", "is_static")

    def __init__(self, return_type: TypeExpr, name: str, params: Sequence[Param],
                 is_vararg: bool, body: Optional[Block], line: int,
                 is_static: bool = False):
        super().__init__(line)
        self.return_type = return_type
        self.name = name
        self.params = list(params)
        self.is_vararg = is_vararg
        self.body = body
        self.is_static = is_static


class Program(Node):
    """A parsed translation unit."""

    __slots__ = ("declarations",)

    def __init__(self, declarations: Sequence[Node]):
        super().__init__(1)
        self.declarations = list(declarations)
