"""Class lowering: nested structs, vtables, and virtual dispatch.

Implements the mapping of paper section 4.1.2:

* "Base classes are expanded into nested structure types": for
  ``class derived : base { short Z; }`` the type is ``{ {base}, short }``;
* "If the classes have virtual functions, a v-table pointer would also
  be included and initialized at object allocation time";
* "A virtual function table is represented as a global, constant array
  of typed function pointers, plus the type-id object for the class";
* virtual calls load the function pointer from the vtable and call it —
  which the optimizer can then resolve (see
  :mod:`repro.transforms.ipo.devirtualize`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import types
from ..core.builder import IRBuilder
from ..core.module import Function, Linkage, Module
from ..core.values import (
    Constant, ConstantArray, ConstantExpr, ConstantInt, ConstantStruct,
    Value,
)

#: All virtual methods share this generic signature: int method(sbyte* this).
#: Call sites pass the object cast to sbyte*, like a real this-pointer ABI.
GENERIC_THIS = types.pointer(types.SBYTE)


class ClassInfo:
    """One lowered class: its struct type, vtable global, and methods."""

    def __init__(self, name: str, struct_type: types.StructType,
                 vtable, methods: dict[str, int], base: Optional["ClassInfo"]):
        self.name = name
        self.struct_type = struct_type
        self.vtable = vtable
        #: method name -> vtable slot index.
        self.methods = methods
        self.base = base

    @property
    def pointer_type(self) -> types.PointerType:
        return types.pointer(self.struct_type)


class ClassBuilder:
    """Builds single-inheritance class hierarchies in a module."""

    def __init__(self, module: Module):
        self.module = module
        self.method_type = types.function(types.INT, [GENERIC_THIS])
        self.method_ptr = types.pointer(self.method_type)
        #: The vtable-pointer field: points at the table's first slot.
        self.vptr_type = types.pointer(self.method_ptr)
        self._next_typeid = 1

    def define_class(self, name: str, fields: Sequence[types.Type],
                     virtuals: dict[str, Function],
                     base: Optional[ClassInfo] = None) -> ClassInfo:
        """Lower one class.

        ``virtuals`` maps method names to implementations (taking the
        generic ``sbyte*`` this).  Overrides replace the base's slot;
        new methods extend the table.
        """
        methods: dict[str, int] = dict(base.methods) if base else {}
        table: list[Optional[Function]] = [None] * len(methods)
        if base is not None:
            for method_name, slot in base.methods.items():
                table[slot] = self._vtable_entry(base, slot)
        for method_name, implementation in virtuals.items():
            if method_name in methods:
                table[methods[method_name]] = implementation
            else:
                methods[method_name] = len(table)
                table.append(implementation)

        # "Base classes are expanded into nested structure types."
        if base is None:
            struct_type = types.named_struct(name, [self.vptr_type, *fields])
        else:
            struct_type = types.named_struct(name, [base.struct_type, *fields])
        self.module.add_named_type(struct_type)

        # "A global, constant array of typed function pointers, plus the
        # type-id object for the class."
        vtable_type = types.array(self.method_ptr, len(table))
        typeid = ConstantInt(types.INT, self._next_typeid)
        self._next_typeid += 1
        entries = [self._as_method_ptr(entry) for entry in table]
        vtable_struct = types.struct([types.INT, vtable_type])
        vtable_init = ConstantStruct(
            vtable_struct, [typeid, ConstantArray(vtable_type, entries)]
        )
        vtable = self.module.new_global(
            vtable_struct, self.module.unique_symbol(f"{name}.vtable"),
            vtable_init, Linkage.INTERNAL, is_constant=True,
        )
        return ClassInfo(name, struct_type, vtable, methods, base)

    def _as_method_ptr(self, function: Optional[Function]) -> Constant:
        assert function is not None, "vtable slot left abstract"
        if function.type is self.method_ptr:
            return function
        return ConstantExpr("cast", self.method_ptr, (function,))

    def _vtable_entry(self, info: ClassInfo, slot: int) -> Function:
        array = info.vtable.initializer.fields_values[1]
        entry = array.elements[slot]
        if isinstance(entry, ConstantExpr):
            entry = entry.operands[0]
        return entry  # type: ignore[return-value]

    # -- object construction and dispatch -----------------------------------

    def emit_new(self, builder: IRBuilder, info: ClassInfo,
                 name: str = "obj") -> Value:
        """Heap-allocate an object and install its vtable pointer
        ("initialized at object allocation time")."""
        obj = builder.malloc(info.struct_type, name=name)
        self.emit_install_vtable(builder, info, obj)
        return obj

    def emit_install_vtable(self, builder: IRBuilder, info: ClassInfo,
                            obj: Value) -> None:
        slot = self._vptr_address(builder, obj)
        zero = ConstantInt(types.LONG, 0)
        first_entry = builder.gep(
            info.vtable,
            [zero, ConstantInt(types.UINT, 1), zero],
            "vtable.first",
        )
        builder.store(first_entry, slot)

    def _vptr_address(self, builder: IRBuilder, obj: Value) -> Value:
        """The vtable-pointer slot: field 0 of the outermost base."""
        current = obj
        while current.type.pointee.is_struct:
            first = current.type.pointee.fields[0]
            slot = builder.struct_gep(current, 0, "vptr.path")
            if first is self.vptr_type:
                return slot
            current = slot
        raise TypeError("object type has no vtable pointer")

    def emit_virtual_call(self, builder: IRBuilder, info: ClassInfo,
                          obj: Value, method: str, name: str = "") -> Value:
        """Load the function pointer from the object's vtable, call it."""
        slot_index = info.methods[method]
        vtable_first = builder.load(self._vptr_address(builder, obj), "vfns")
        slot_address = (vtable_first if slot_index == 0 else builder.gep(
            vtable_first, [ConstantInt(types.LONG, slot_index)], "vslot"
        ))
        callee = builder.load(slot_address, "vfn")
        this = builder.cast(obj, GENERIC_THIS, "this")
        return builder.call(callee, [this], name)

    def emit_method(self, name: str, body_builder) -> Function:
        """Define a virtual method: ``body_builder(builder, this_sbyte)``
        must terminate the function (return an int)."""
        function = self.module.new_function(
            self.method_type, self.module.unique_symbol(name),
            Linkage.INTERNAL, ["this"],
        )
        builder = IRBuilder(function.append_block("entry"))
        body_builder(builder, function.args[0])
        return function
