"""setjmp/longjmp on the invoke/unwind mechanism (paper section 2.4).

"In fact, the same mechanism also supports setjmp and longjmp
operations in C, allowing these operations to be analyzed and optimized
in the same way that exception features in other languages are."

The lowering mirrors the C++ one:

* ``longjmp(id, value)`` becomes a runtime call that records the target
  jump buffer and the value, followed by ``unwind`` — the *calling code*
  performs the stack unwind, exactly like ``throw``;
* a ``setjmp`` region turns every call inside it into an ``invoke``
  whose handler asks the runtime "is the in-flight longjmp aimed at my
  buffer?"; if yes, control resumes at the setjmp merge point with the
  longjmp value as the setjmp result; if not, the handler re-``unwind``s
  so an outer region (or caller) can claim it.

Both coexist cleanly with C++-style exceptions because they share the
unwinding primitive ("both coexist cleanly in our implementation").
"""

from __future__ import annotations

from typing import Optional

from ..core import types
from ..core.basicblock import BasicBlock
from ..core.builder import IRBuilder
from ..core.instructions import AllocaInst
from ..core.module import Function, Module
from ..core.values import ConstantInt, Value


def _runtime(module: Module, name: str, fn_type) -> Function:
    return module.get_or_insert_function(fn_type, name)


def emit_longjmp(module: Module, builder: IRBuilder, buffer_id: Value,
                 value: Value) -> None:
    """``longjmp(id, value)``: record the jump, then unwind the stack."""
    register = _runtime(module, "__lc_longjmp",
                        types.function(types.VOID, [types.INT, types.INT]))
    builder.call(register, [buffer_id, value])
    builder.unwind()


class SetjmpRegion:
    """An open setjmp region inside a function under construction.

    Usage::

        region = SetjmpRegion.open(module, builder, buffer_id)
        # ... build the region body with region.builder,
        #     using region.call(...) for every call ...
        builder = region.close()
        result = region.result(builder)   # 0, or the longjmp value

    ``result`` reads the setjmp return value at the merge point:
    0 when the region was entered normally, the longjmp value when a
    matching longjmp unwound into it.
    """

    def __init__(self, module: Module, function: Function,
                 builder: IRBuilder, buffer_id: Value,
                 slot: Value, handler: BasicBlock, merge: BasicBlock):
        self.module = module
        self.function = function
        self.builder = builder
        self.buffer_id = buffer_id
        self._slot = slot
        self._handler = handler
        self._merge = merge
        self._closed = False

    @classmethod
    def open(cls, module: Module, builder: IRBuilder,
             buffer_id: Value) -> "SetjmpRegion":
        function = builder.function
        slot = AllocaInst(types.INT, None, "setjmp.val")
        function.entry_block.insert(0, slot)
        builder.store(ConstantInt(types.INT, 0), slot)

        handler = function.append_block("setjmp.handler")
        merge = function.append_block("setjmp.merge")

        # The handler: claim the in-flight longjmp or keep unwinding.
        catch = _runtime(module, "__lc_longjmp_catch",
                         types.function(types.INT, [types.INT]))
        handler_builder = IRBuilder(handler)
        claimed = handler_builder.call(catch, [buffer_id], "claimed")
        ours = handler_builder.setge(claimed, ConstantInt(types.INT, 0), "ours")
        resume = function.append_block("setjmp.resume")
        rethrow = function.append_block("setjmp.rethrow")
        handler_builder.cond_br(ours, resume, rethrow)
        IRBuilder(rethrow).unwind()
        resume_builder = IRBuilder(resume)
        resume_builder.store(claimed, slot)
        resume_builder.br(merge)

        return cls(module, function, builder, buffer_id, slot, handler, merge)

    def call(self, callee: Value, args, name: str = "") -> Value:
        """A call inside the region: lowered to an invoke whose unwind
        destination is the region's handler (the section 2.4 rule:
        "any function call within the try block becomes an invoke")."""
        if self._closed:
            raise ValueError("region already closed")
        normal = self.function.append_block("setjmp.cont")
        result = self.builder.invoke(callee, args, normal, self._handler, name)
        self.builder.position_at_end(normal)
        return result

    def close(self) -> IRBuilder:
        """End the region: fall through to the merge point."""
        if self._closed:
            raise ValueError("region already closed")
        self._closed = True
        if not self.builder.block.is_terminated:
            self.builder.br(self._merge)
        return IRBuilder(self._merge)

    def result(self, builder: IRBuilder) -> Value:
        """The setjmp return value at (or after) the merge point."""
        return builder.load(self._slot, "setjmp.result")
