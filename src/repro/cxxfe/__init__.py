"""C++ front-end lowering patterns (paper section 4.1.2).

LC has no classes, but the paper's point is that a C++ front-end maps
cleanly onto the representation: base classes become nested structure
types, virtual function tables become global constant arrays of typed
function pointers, and exceptions become ``invoke``/``unwind`` plus a
runtime library.  This package provides those lowerings as a library —
the moral equivalent of the C++ front-end's code generation strategy —
so examples and benchmarks can build class hierarchies and EH-heavy
code directly.
"""

from .classes import ClassBuilder, ClassInfo
from .exceptions import build_throw, build_try_catch
from .setjmp import SetjmpRegion, emit_longjmp

__all__ = ["ClassBuilder", "ClassInfo", "build_throw", "build_try_catch",
           "SetjmpRegion", "emit_longjmp"]
