"""C++ exception lowering: the code of paper Figures 2 and 3.

* :func:`build_throw` emits exactly the Figure 3 sequence for
  ``throw <int>``: allocate the exception object through the runtime,
  construct the value into it, register it with ``llvm_cxxeh_throw``,
  then ``unwind`` — "the runtime functions manipulate the thread-local
  state of the exception handling runtime, but don't actually unwind
  the stack.  Because the calling code performs the stack unwind, the
  optimizer has a better view of the control flow".

* :func:`build_try_catch` emits the Figure 2 shape: the protected call
  becomes an ``invoke`` whose unwind destination runs cleanup code
  (e.g. a destructor) and/or a catch body.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core import types
from ..core.basicblock import BasicBlock
from ..core.builder import IRBuilder
from ..core.module import Function, Module
from ..core.values import ConstantInt, ConstantPointerNull, Value

_BYTE_PTR = types.pointer(types.SBYTE)


def _runtime(module: Module, name: str, fn_type) -> Function:
    return module.get_or_insert_function(fn_type, name)


def build_throw(module: Module, builder: IRBuilder, value: Value,
                typeid: int) -> None:
    """Emit ``throw <value>`` (paper Figure 3).

    Allocates the exception object, stores the thrown value into it,
    registers it with the runtime (object, typeid, destructor — null
    for scalars), and unwinds the stack.
    """
    size = module.data_layout.size_of(value.type)
    alloc = _runtime(module, "llvm_cxxeh_alloc_exc",
                     types.function(_BYTE_PTR, [types.UINT]))
    throw = _runtime(module, "llvm_cxxeh_throw",
                     types.function(types.VOID,
                                    [_BYTE_PTR, types.INT, _BYTE_PTR]))
    storage = builder.call(alloc, [ConstantInt(types.UINT, size)], "exc")
    typed = builder.cast(storage, types.pointer(value.type), "exc.typed")
    builder.store(value, typed)
    builder.call(throw, [storage, ConstantInt(types.INT, typeid),
                         ConstantPointerNull(_BYTE_PTR)])
    builder.unwind()


def build_try_catch(module: Module, builder: IRBuilder, callee: Value,
                    args, handler_body: Callable[[IRBuilder], None],
                    cleanup: Optional[Callable[[IRBuilder], None]] = None,
                    name: str = "") -> tuple[Value, IRBuilder]:
    """Emit ``try { call } catch { handler }`` (paper Figure 2).

    The call becomes an ``invoke``; on unwind, ``cleanup`` (destructors)
    runs first, then ``handler_body``, which must terminate its block
    (rethrow with ``unwind``, branch somewhere, or return).  Returns the
    invoke's result and a builder positioned on the normal path.
    """
    function = builder.function
    ok_block = function.append_block("invoke.ok")
    unwind_block = function.append_block("invoke.unwind")
    result = builder.invoke(callee, args, ok_block, unwind_block, name)
    handler = IRBuilder(unwind_block)
    if cleanup is not None:
        cleanup(handler)
    handler_body(handler)
    if not unwind_block.is_terminated:
        raise ValueError("exception handler must terminate its block")
    return result, IRBuilder(ok_block)


def current_exception(module: Module, builder: IRBuilder) -> tuple[Value, Value]:
    """Fetch (object pointer, typeid) of the in-flight exception."""
    get = _runtime(module, "llvm_cxxeh_get_exc",
                   types.function(_BYTE_PTR, []))
    typeid = _runtime(module, "llvm_cxxeh_current_typeid",
                      types.function(types.INT, []))
    return (builder.call(get, [], "exc.obj"),
            builder.call(typeid, [], "exc.typeid"))
