"""lc-bench: compiler-throughput benchmarking.

The paper's lifelong story (section 2.4) keeps the compiler running
continuously — at link time, at install time, in the idle-time
reoptimizer — which only pays off if the compiler itself is fast.  This
package measures that: it times the toolchain's own hot phases
(lex/parse, codegen, the optimizer pass by pass, verification, bytecode
I/O, linking, cache lookup, and the transactional pass manager's
snapshot machinery) over the benchmark suite, with warmup/repeat/median
discipline, and emits a schema-versioned ``BENCH_<date>.json`` so the
performance trajectory is machine-readable and CI-gateable
(docs/BENCH.md).
"""

from .harness import (
    SCHEMA, BenchConfig, calibrate, default_report_name, discover_examples,
    run_bench, write_report,
)
from .compare import compare_runs, validate_schema

__all__ = [
    "SCHEMA", "BenchConfig", "calibrate", "compare_runs",
    "default_report_name", "discover_examples", "run_bench",
    "validate_schema", "write_report",
]
