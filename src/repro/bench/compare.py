"""Baseline comparison: the teeth of the CI bench-gate.

A committed baseline (``benchmarks/bench_baseline.json``) is compared
against a fresh run.  Two kinds of regression are caught:

* **structural** — the fresh run is missing a phase or a pass the
  baseline covers (a timing silently dropped out of the harness), or
  the schemas disagree;
* **temporal** — a phase got slower than the baseline by more than the
  tolerance band.

Wall-clock comparisons across machines are noisy, so the band is
deliberately generous and *calibrated*: baseline times are first scaled
by the ratio of the two runs' ``calibration_seconds`` (a fixed
pure-Python workload timed on each host), then a multiplicative
tolerance is applied, and phases faster than an absolute floor are
ignored entirely — sub-10ms timings are noise, not signal.
"""

from __future__ import annotations

from typing import Optional

from .harness import SCHEMA

#: A phase may be at most this many times slower than the (calibrated)
#: baseline before the gate fails.
DEFAULT_MAX_RATIO = 2.0
#: Phases under this many baseline seconds are too small to gate on.
DEFAULT_MIN_SECONDS = 0.010
#: Calibration ratios are clamped here: a wildly different ratio means
#: the calibration itself misfired, not that the machine is 20x slower.
_SCALE_CLAMP = (0.2, 5.0)

_REQUIRED_FIELDS = (
    "schema", "created", "toolchain", "level", "warmup", "repeat",
    "calibration_seconds", "programs", "phases", "passes", "total_seconds",
)


def validate_schema(report: dict) -> list[str]:
    """Structural problems with one report (empty list = valid)."""
    problems = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    for field in _REQUIRED_FIELDS:
        if field not in report:
            problems.append(f"missing field {field!r}")
    if problems:
        return problems
    if report["schema"] != SCHEMA:
        problems.append(
            f"schema {report['schema']!r} is not {SCHEMA!r}")
    for name, entry in report["phases"].items():
        if "seconds" not in entry or "per_program" not in entry:
            problems.append(f"phase {name!r} missing seconds/per_program")
        elif not isinstance(entry["seconds"], (int, float)):
            problems.append(f"phase {name!r} seconds is not a number")
    for name, entry in report["passes"].items():
        if "seconds" not in entry or "runs" not in entry:
            problems.append(f"pass {name!r} missing seconds/runs")
    if not isinstance(report["calibration_seconds"], (int, float)) \
            or report["calibration_seconds"] <= 0:
        problems.append("calibration_seconds is not a positive number")
    return problems


def compare_runs(current: dict, baseline: dict,
                 max_ratio: float = DEFAULT_MAX_RATIO,
                 min_seconds: float = DEFAULT_MIN_SECONDS,
                 ) -> tuple[list[str], list[str]]:
    """(regressions, notes) of ``current`` against ``baseline``.

    ``regressions`` non-empty means the gate fails.  ``notes`` carries
    the human-readable per-phase accounting either way.
    """
    regressions: list[str] = []
    notes: list[str] = []
    for label, report in (("current", current), ("baseline", baseline)):
        for problem in validate_schema(report):
            regressions.append(f"{label} report invalid: {problem}")
    if regressions:
        return regressions, notes

    scale = current["calibration_seconds"] / baseline["calibration_seconds"]
    clamped = min(max(_SCALE_CLAMP[0], scale), _SCALE_CLAMP[1])
    notes.append(f"machine-speed scale: {scale:.3f} "
                 f"(clamped to {clamped:.3f})")
    scale = clamped

    missing = sorted(set(baseline["phases"]) - set(current["phases"]))
    for name in missing:
        regressions.append(f"phase {name!r} covered by the baseline is "
                           "missing from this run")
    missing = sorted(set(baseline["passes"]) - set(current["passes"]))
    for name in missing:
        regressions.append(f"pass {name!r} covered by the baseline is "
                           "missing from this run")

    for name in sorted(set(baseline["phases"]) & set(current["phases"])):
        base = baseline["phases"][name]["seconds"]
        cur = current["phases"][name]["seconds"]
        allowed = base * scale * max_ratio
        if base < min_seconds:
            notes.append(f"  {name:20s} {cur:8.4f}s (baseline {base:.4f}s, "
                         "below gating floor)")
            continue
        verdict = "ok" if cur <= allowed else "REGRESSED"
        notes.append(f"  {name:20s} {cur:8.4f}s vs allowed {allowed:8.4f}s "
                     f"(baseline {base:.4f}s) {verdict}")
        if cur > allowed:
            regressions.append(
                f"phase {name!r} regressed: {cur:.4f}s > "
                f"{allowed:.4f}s allowed ({base:.4f}s baseline "
                f"x {scale:.2f} scale x {max_ratio} tolerance)")
    return regressions, notes


def load_report(path: str) -> Optional[dict]:
    """Parse one report file; None if unreadable or not JSON."""
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
