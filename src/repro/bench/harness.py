"""The lc-bench harness: timed sweeps over the toolchain's hot phases.

Every measured phase follows the same discipline: ``warmup`` throwaway
runs, then ``repeat`` timed runs, reduced to the **median** — the
standard defense against one-off cache/GC noise in a wall-clock
benchmark.  Phase inputs are re-materialized fresh for every run (via a
bytecode round-trip, which is the system's cheap deep copy) so a run
never times work on the previous run's output.

The result is a plain JSON-able dict (see ``SCHEMA`` and
docs/BENCH.md).  Two runs over the same inputs produce the *same
structure* — identical phase and pass name sets — so a committed
baseline can be compared field by field (:mod:`repro.bench.compare`).

A fixed pure-Python ``calibrate()`` workload is timed alongside every
run; the gate uses the ratio of calibration times to scale tolerances
across machines of different speeds.
"""

from __future__ import annotations

import datetime as _datetime
import os
import statistics
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..benchsuite import benchmark_names, load_source
from ..bitcode import read_bytecode, write_bytecode
from ..core import verify_module
from ..core.module import Module
from ..driver import BytecodeCache, FaultPolicy
from ..driver.pipelines import optimize_module, standard_pipeline
from ..frontend import CodeGenerator, parse, tokenize
from ..linker import link_modules

#: Bump on any structural change to the report (phases added count as a
#: minor revision; renaming or removing fields is a major one).
SCHEMA = "lc-bench/1"


@dataclass
class BenchConfig:
    """What to measure and how hard to measure it."""

    level: int = 2
    warmup: int = 1
    repeat: int = 5
    #: Benchsuite program names; None = the whole suite.
    programs: Optional[list[str]] = None
    #: Extra (name, [source texts]) programs, e.g. from examples/.
    extra_programs: list = field(default_factory=list)
    #: Also time the transactional (fault-tolerant) pipeline.
    transactional: bool = True
    #: Size of the synthetic high-fanout use-list microbenchmark.
    rauw_fanout: int = 5000
    #: Benchsuite programs for the execution-tier phases (plain
    #: interpreter vs the warm trace-JIT); empty list skips them.
    #: The defaults are hot-loop programs where traces dominate.
    jit_programs: list = field(
        default_factory=lambda: ["gzip", "mesa", "bzip2"])


# ---------------------------------------------------------------------------
# timing primitives
# ---------------------------------------------------------------------------

def _timed(prepare: Callable[[], object], run: Callable[[object], object],
           warmup: int, repeat: int) -> float:
    """Median seconds of ``run`` over fresh ``prepare``-d inputs."""
    samples = []
    for iteration in range(warmup + repeat):
        subject = prepare()
        start = time.perf_counter()
        run(subject)
        elapsed = time.perf_counter() - start
        if iteration >= warmup:
            samples.append(elapsed)
    return statistics.median(samples)


def calibrate(repeat: int = 3) -> float:
    """Median seconds of a fixed pure-Python workload (xorshift sum).

    Machine-speed yardstick: the bench gate scales a baseline's times
    by the ratio of calibration results before applying its tolerance,
    so a committed baseline is portable across hosts.
    """
    mask = (1 << 64) - 1

    def work(_subject) -> int:
        x = 0x9E3779B97F4A7C15
        acc = 0
        for _ in range(200_000):
            x = (x ^ (x << 13)) & mask
            x ^= x >> 7
            x = (x ^ (x << 17)) & mask
            acc = (acc + x) & mask
        return acc

    return _timed(lambda: None, work, warmup=1, repeat=repeat)


# ---------------------------------------------------------------------------
# input discovery
# ---------------------------------------------------------------------------

def discover_examples(directory: str) -> list[tuple[str, list[str]]]:
    """(name, [source texts]) programs found under ``directory``.

    Each ``*.lc`` file directly in (or anywhere under) the tree is a
    single-TU program; a subdirectory containing several ``*.lc`` files
    is one *multi-TU* program (its files link together), which is what
    exercises the linker with more than one real translation unit.
    """
    programs: list[tuple[str, list[str]]] = []
    if not os.path.isdir(directory):
        return programs
    for root, _dirs, files in sorted(os.walk(directory)):
        sources = sorted(f for f in files if f.endswith(".lc"))
        if not sources:
            continue
        texts = []
        for filename in sources:
            with open(os.path.join(root, filename), "r") as handle:
                texts.append(handle.read())
        if len(sources) == 1:
            name = os.path.splitext(sources[0])[0]
        else:
            name = os.path.basename(root.rstrip(os.sep)) or "example"
        programs.append((f"example:{name}", texts))
    return programs


def _suite_programs(config: BenchConfig) -> list[tuple[str, list[str]]]:
    names = config.programs if config.programs else benchmark_names()
    programs = [(name, [load_source(name)]) for name in names]
    programs.extend(config.extra_programs)
    return programs


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------

class _PhaseTable:
    """Accumulates per-(phase, program) medians into the report shape."""

    def __init__(self):
        self.phases: dict[str, dict] = {}

    def record(self, phase: str, program: str, seconds: float) -> None:
        bucket = self.phases.setdefault(
            phase, {"seconds": 0.0, "per_program": {}})
        bucket["per_program"][program] = (
            bucket["per_program"].get(program, 0.0) + seconds)
        bucket["seconds"] += seconds

    def to_dict(self) -> dict:
        return {
            name: {
                "seconds": round(entry["seconds"], 6),
                "per_program": {
                    program: round(seconds, 6)
                    for program, seconds in sorted(
                        entry["per_program"].items())
                },
            }
            for name, entry in sorted(self.phases.items())
        }


def _bench_program(name: str, sources: list[str], config: BenchConfig,
                   table: _PhaseTable, passes: dict[str, dict]) -> None:
    warmup, repeat, level = config.warmup, config.repeat, config.level

    # -- front-end phases, per TU ------------------------------------------
    for source in sources:
        table.record("frontend.lex", name, _timed(
            lambda: None, lambda _: tokenize(source), warmup, repeat))
        table.record("frontend.parse", name, _timed(
            lambda: None, lambda _: parse(source), warmup, repeat))
        table.record("frontend.codegen", name, _timed(
            lambda: parse(source),
            lambda program: CodeGenerator(name).generate(program),
            warmup, repeat))

    # Unoptimized module bytes: the cheap deep-copy source for every
    # phase that needs a fresh pre-optimization module per run.
    raw = [write_bytecode(CodeGenerator(f"{name}.tu{i}").generate(parse(s)),
                          strip_names=False)
           for i, s in enumerate(sources)]

    # -- the optimizer, pass by pass ---------------------------------------
    def run_pipeline(modules):
        manager = standard_pipeline(level)
        for module in modules:
            manager.run(module)
        return manager

    pass_samples: dict[str, list[float]] = {}
    pass_runs: dict[str, int] = {}
    pipeline_samples = []
    for iteration in range(warmup + repeat):
        modules = [read_bytecode(data) for data in raw]
        start = time.perf_counter()
        manager = run_pipeline(modules)
        elapsed = time.perf_counter() - start
        if iteration >= warmup:
            pipeline_samples.append(elapsed)
            for pass_name, seconds in manager.timings.seconds.items():
                pass_samples.setdefault(pass_name, []).append(seconds)
                pass_runs[pass_name] = manager.timings.runs[pass_name]
    table.record(f"pipeline.O{level}", name,
                 statistics.median(pipeline_samples))
    for pass_name, samples in pass_samples.items():
        bucket = passes.setdefault(pass_name, {"seconds": 0.0, "runs": 0})
        bucket["seconds"] += statistics.median(samples)
        bucket["runs"] += pass_runs[pass_name]

    # -- the transactional pipeline (snapshot machinery included) ----------
    if config.transactional:
        def run_transactional(modules):
            policy = FaultPolicy(reduce_testcases=False)
            for module in modules:
                optimize_module(module, level, policy=policy)

        table.record(f"transact.O{level}", name, _timed(
            lambda: [read_bytecode(data) for data in raw],
            run_transactional, warmup, repeat))

    # -- verify, bytecode I/O, cache, link over the optimized program ------
    optimized = [read_bytecode(data) for data in raw]
    for module in optimized:
        optimize_module(module, level)
    opt_bytes = [write_bytecode(m, strip_names=False) for m in optimized]

    def for_each_module(action):
        def run(modules):
            for module in modules:
                action(module)
        return run

    table.record("verify", name, _timed(
        lambda: optimized, for_each_module(verify_module), warmup, repeat))
    table.record("bytecode.write", name, _timed(
        lambda: optimized,
        for_each_module(lambda m: write_bytecode(m, strip_names=False)),
        warmup, repeat))
    table.record("bytecode.read", name, _timed(
        lambda: opt_bytes,
        lambda blobs: [read_bytecode(b) for b in blobs], warmup, repeat))

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = BytecodeCache(cache_dir)
        keys = [cache.key(source, level) for source in sources]

        def store_all(_subject):
            for key, data in zip(keys, opt_bytes):
                cache.store_bytes(key, data)

        table.record("cache.store", name, _timed(
            lambda: None, store_all, warmup, repeat))
        table.record("cache.lookup", name, _timed(
            lambda: None,
            lambda _: [cache.load(key) for key in keys], warmup, repeat))

    table.record("link", name, _timed(
        lambda: [read_bytecode(data) for data in opt_bytes],
        lambda modules: link_modules(modules, name), warmup, repeat))


def _bench_rauw(config: BenchConfig, table: _PhaseTable) -> None:
    """Synthetic high-fanout use-list churn: one value with N uses gets
    replace-all-uses-with'd, then every user drops its references —
    the two operations the swap-remove unlink keeps O(uses)."""
    from ..core import types
    from ..core.values import User, Value

    fanout = config.rauw_fanout

    def build():
        hub = Value(types.INT, "hub")
        users = [User(types.INT, (hub, hub)) for _ in range(fanout)]
        return hub, users

    def churn(subject):
        hub, users = subject
        replacement = Value(types.INT, "replacement")
        hub.replace_all_uses_with(replacement)
        for user in users:
            user.drop_all_references()

    table.record("rauw.highfanout", "micro", _timed(
        build, churn, config.warmup, config.repeat))


def _bench_jit(config: BenchConfig, table: _PhaseTable,
               progress: Optional[Callable[[str], None]] = None) -> None:
    """Execution-tier phases over designated hot-loop programs.

    ``exec.interp`` is the plain IR interpreter; ``jit.trace`` is the
    same program with a *warm* software trace cache — the TraceManager
    persists across runs (the lifelong story: traces compiled in one
    end-user run keep paying off in the next), so the timed runs
    measure steady-state trace execution, not compile cost.  The
    warmup run doubles as the training run that populates the cache.
    The ``jit.trace``/``exec.interp`` ratio in the report is the
    trace tier's wall-clock speedup.
    """
    from ..benchsuite import compile_benchmark
    from ..execution import Interpreter, TraceManager

    # Interpreter runs are orders slower than compiler phases; cap the
    # repeats so the execution phases don't dominate the sweep.
    repeat = min(config.repeat, 3)
    for name in config.jit_programs:
        if progress is not None:
            progress(f"{name} (execution tiers)")
        module = compile_benchmark(name, level=config.level, lto=True)
        table.record("exec.interp", name, _timed(
            lambda: Interpreter(module),
            lambda interp: interp.run("main", []), 1, repeat))
        manager = TraceManager(hot_threshold=50)

        def traced():
            interp = Interpreter(module)
            manager.attach(interp)
            return interp

        table.record("jit.trace", name, _timed(
            traced, lambda interp: interp.run("main", []), 1, repeat))


def run_bench(config: Optional[BenchConfig] = None,
              progress: Optional[Callable[[str], None]] = None) -> dict:
    """The full sweep; returns the JSON-able report."""
    from ..driver.cache import toolchain_fingerprint

    config = config or BenchConfig()
    table = _PhaseTable()
    passes: dict[str, dict] = {}
    programs = _suite_programs(config)
    started = time.perf_counter()
    for name, sources in programs:
        if progress is not None:
            progress(name)
        _bench_program(name, sources, config, table, passes)
    _bench_rauw(config, table)
    if config.jit_programs:
        _bench_jit(config, table, progress)
    report = {
        "schema": SCHEMA,
        "created": _datetime.datetime.now(
            _datetime.timezone.utc).isoformat(timespec="seconds"),
        "toolchain": toolchain_fingerprint(),
        "level": config.level,
        "warmup": config.warmup,
        "repeat": config.repeat,
        "calibration_seconds": round(calibrate(), 6),
        "programs": [name for name, _ in programs],
        "phases": table.to_dict(),
        "passes": {
            name: {"seconds": round(entry["seconds"], 6),
                   "runs": entry["runs"]}
            for name, entry in sorted(passes.items())
        },
        "total_seconds": round(time.perf_counter() - started, 6),
    }
    return report


def default_report_name(when: Optional[_datetime.date] = None) -> str:
    """``BENCH_<date>.json`` — one trajectory point per day by default."""
    when = when or _datetime.date.today()
    return f"BENCH_{when.isoformat()}.json"


def write_report(report: dict, path: Optional[str] = None) -> str:
    """Write the report (default: ``BENCH_<date>.json`` in the cwd)."""
    import json

    path = path or default_report_name()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
