"""Target data layout: sizes, alignments, and aggregate field offsets.

``getelementptr`` has machine-independent *semantics* (it indexes typed
objects), but lowering it to address arithmetic, allocating memory in
the execution engine, and emitting native code all require concrete
sizes.  A :class:`DataLayout` pins those down for a target; the default
matches a 64-bit little-endian machine (8-byte pointers).
"""

from __future__ import annotations

from . import types
from .types import Type


class DataLayout:
    """Computes concrete sizes, alignments, and struct layouts for a target."""

    def __init__(self, pointer_size: int = 8, little_endian: bool = True):
        if pointer_size not in (4, 8):
            raise ValueError("pointer size must be 4 or 8 bytes")
        self.pointer_size = pointer_size
        self.little_endian = little_endian
        self._struct_layouts: dict[int, tuple[tuple[int, ...], int, int]] = {}

    # -- sizes ------------------------------------------------------------

    def size_of(self, ty: Type) -> int:
        """Allocated size of ``ty`` in bytes (including struct tail padding)."""
        if ty.is_bool:
            return 1
        if ty.is_integer or ty.is_floating:
            return ty.bits // 8  # type: ignore[attr-defined]
        if ty.is_pointer:
            return self.pointer_size
        if ty.is_array:
            return ty.count * self.size_of(ty.element)  # type: ignore[attr-defined]
        if ty.is_struct:
            return self._struct_layout(ty)[1]
        raise TypeError(f"type {ty} has no size")

    def align_of(self, ty: Type) -> int:
        """ABI alignment of ``ty`` in bytes."""
        if ty.is_bool:
            return 1
        if ty.is_integer or ty.is_floating:
            return ty.bits // 8  # type: ignore[attr-defined]
        if ty.is_pointer:
            return self.pointer_size
        if ty.is_array:
            return self.align_of(ty.element)  # type: ignore[attr-defined]
        if ty.is_struct:
            return self._struct_layout(ty)[2]
        raise TypeError(f"type {ty} has no alignment")

    # -- struct layout ----------------------------------------------------

    def _struct_layout(self, ty: Type) -> tuple[tuple[int, ...], int, int]:
        """(field offsets, total size, alignment) for a struct type."""
        cached = self._struct_layouts.get(id(ty))
        if cached is not None:
            return cached
        offsets = []
        offset = 0
        max_align = 1
        for field in ty.fields:  # type: ignore[attr-defined]
            align = self.align_of(field)
            max_align = max(max_align, align)
            offset = _align_up(offset, align)
            offsets.append(offset)
            offset += self.size_of(field)
        total = _align_up(offset, max_align) if offsets else 0
        layout = (tuple(offsets), total, max_align)
        self._struct_layouts[id(ty)] = layout
        return layout

    def field_offset(self, struct_ty: Type, index: int) -> int:
        """Byte offset of field ``index`` within ``struct_ty``."""
        if not struct_ty.is_struct:
            raise TypeError(f"{struct_ty} is not a struct")
        return self._struct_layout(struct_ty)[0][index]

    def element_offset(self, aggregate: Type, index: int) -> int:
        """Byte offset of element ``index`` in a struct or array type."""
        if aggregate.is_struct:
            return self.field_offset(aggregate, index)
        if aggregate.is_array:
            return index * self.size_of(aggregate.element)  # type: ignore[attr-defined]
        raise TypeError(f"{aggregate} is not an aggregate type")

    # -- pointer-width integer --------------------------------------------

    @property
    def intptr_type(self) -> types.IntegerType:
        """The unsigned integer type as wide as a pointer."""
        return types.ULONG if self.pointer_size == 8 else types.UINT


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


#: A reasonable default layout (64-bit little-endian).
DEFAULT = DataLayout()
