"""The IR verifier: structural, type, and SSA dominance rules.

Beyond catching representation bugs, the verifier is part of the
paper's story: "type mismatches are useful for detecting optimizer
bugs".  Every pass in the test suite runs the verifier after
transforming, so an unsound rewrite fails loudly.

Checked properties:

* every block ends in exactly one terminator, with no terminator in
  the middle;
* phi nodes are grouped at the top of their block and have exactly one
  incoming entry per unique predecessor;
* every use of an SSA register is dominated by its definition
  (arguments and constants dominate everything);
* branch targets belong to the same function;
* operand types obey the instruction type rules (largely enforced at
  construction time; re-checked here so hand-mutated IR is validated).
"""

from __future__ import annotations

from .basicblock import BasicBlock
from .instructions import (
    BranchInst, CallInst, GetElementPtrInst, Instruction, InvokeInst,
    Opcode, PhiNode, ReturnInst, SwitchInst, gep_result_type,
)
from .module import Function, Module
from .values import Argument, Constant, Value


class VerificationError(Exception):
    """Raised when a module or function violates an IR invariant."""


def verify_module(module: Module) -> None:
    """Verify every defined function and global in ``module``."""
    for global_var in module.globals.values():
        if global_var.parent is not module:
            raise VerificationError(
                f"global {global_var.name!r} has wrong parent module"
            )
    for function in module.functions.values():
        if function.parent is not module:
            raise VerificationError(
                f"function {function.name!r} has wrong parent module"
            )
        if not function.is_declaration:
            verify_function(function)


def verify_function(function: Function) -> None:
    """Verify one function definition."""
    if function.is_declaration:
        raise VerificationError(f"cannot verify declaration {function.name!r}")
    _verify_structure(function)
    _verify_phis(function)
    _verify_types(function)
    _verify_dominance(function)


def _verify_structure(function: Function) -> None:
    seen_blocks = set()
    for block in function.blocks:
        if id(block) in seen_blocks:
            raise VerificationError(f"block {block.name!r} appears twice")
        seen_blocks.add(id(block))
        if block.parent is not function:
            raise VerificationError(f"block {block.name!r} has wrong parent")
        if not block.instructions:
            raise VerificationError(f"block {block.name!r} is empty")
        for index, inst in enumerate(block.instructions):
            if inst.parent is not block:
                raise VerificationError(f"instruction in {block.name!r} has wrong parent")
            is_last = index == len(block.instructions) - 1
            if inst.is_terminator != is_last:
                if inst.is_terminator:
                    raise VerificationError(
                        f"terminator in the middle of block {block.name!r}"
                    )
                raise VerificationError(f"block {block.name!r} lacks a terminator")
        for succ in block.successors():
            if not isinstance(succ, BasicBlock):
                raise VerificationError(f"branch target is not a block: {succ!r}")
            if succ.parent is not function:
                raise VerificationError(
                    f"block {block.name!r} branches outside the function"
                )
    # The entry block must have no predecessors (needed for dominance).
    entry = function.entry_block
    if entry.unique_predecessors():
        raise VerificationError("entry block has predecessors")


def _verify_phis(function: Function) -> None:
    for block in function.blocks:
        preds = {id(p): p for p in block.predecessors()}
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, PhiNode):
                if seen_non_phi:
                    raise VerificationError(
                        f"phi after non-phi in block {block.name!r}"
                    )
                incoming_ids = {id(b) for _, b in inst.incoming}
                if incoming_ids != set(preds):
                    raise VerificationError(
                        f"phi {inst.name!r} incoming blocks do not match "
                        f"predecessors of {block.name!r}"
                    )
                if len(inst.incoming) != len(incoming_ids):
                    raise VerificationError(
                        f"phi {inst.name!r} has duplicate incoming blocks"
                    )
            else:
                seen_non_phi = True


def _verify_types(function: Function) -> None:
    for block in function.blocks:
        for inst in block.instructions:
            _verify_instruction_types(function, inst)


def _verify_instruction_types(function: Function, inst: Instruction) -> None:
    if isinstance(inst, ReturnInst):
        expected = function.return_type
        value = inst.return_value
        if expected.is_void:
            if value is not None:
                raise VerificationError("ret with a value in a void function")
        else:
            if value is None:
                raise VerificationError("ret void in a non-void function")
            if value.type is not expected:
                raise VerificationError(
                    f"ret type {value.type} does not match {expected}"
                )
    elif isinstance(inst, BranchInst):
        if inst.is_conditional and not inst.condition.type.is_bool:
            raise VerificationError("branch condition is not bool")
    elif isinstance(inst, SwitchInst):
        for case_value, _ in inst.cases:
            if case_value.type is not inst.value.type:
                raise VerificationError("switch case type mismatch")
    elif inst.opcode == Opcode.STORE:
        value, ptr = inst.operands
        if not ptr.type.is_pointer or ptr.type.pointee is not value.type:
            raise VerificationError(
                f"store of {value.type} through {ptr.type}"
            )
    elif inst.opcode == Opcode.LOAD:
        ptr = inst.operands[0]
        if not ptr.type.is_pointer or ptr.type.pointee is not inst.type:
            raise VerificationError(f"load of {inst.type} through {ptr.type}")
    elif isinstance(inst, GetElementPtrInst):
        _verify_gep_types(inst)
    elif isinstance(inst, (CallInst, InvokeInst)):
        _verify_call_types(inst)
    elif inst.is_binary_op:
        lhs, rhs = inst.operands
        if lhs.type is not rhs.type:
            raise VerificationError(
                f"binary operand mismatch: {lhs.type} vs {rhs.type}"
            )
    elif isinstance(inst, PhiNode):
        for value, _ in inst.incoming:
            if value.type is not inst.type:
                raise VerificationError(
                    f"phi incoming type {value.type} != {inst.type}"
                )


def _verify_gep_types(inst: GetElementPtrInst) -> None:
    """Re-derive a GEP's result type from its (possibly hand-mutated)
    operands.  Construction already enforces these rules, but passes
    that rewrite operands in place (``set_operand``) bypass them."""
    ptr = inst.pointer
    if not ptr.type.is_pointer:
        raise VerificationError(
            f"getelementptr base is not a pointer: {ptr.type}"
        )
    for index in inst.indices:
        if not (index.type.is_integer or index.type.is_bool):
            raise VerificationError(
                f"getelementptr index is not an integer: {index.type}"
            )
    try:
        expected = gep_result_type(ptr.type, inst.indices)
    except (TypeError, ValueError) as exc:
        raise VerificationError(f"malformed getelementptr: {exc}") from exc
    if expected is not inst.type:
        raise VerificationError(
            f"getelementptr result type {inst.type} should be {expected}"
        )


def _verify_call_types(inst: Instruction) -> None:
    callee_ty = inst.callee.type
    if not (callee_ty.is_pointer and callee_ty.pointee.is_function):
        raise VerificationError(
            f"callee is not a function pointer: {callee_ty}"
        )
    fn_ty = callee_ty.pointee
    args = inst.args
    required = len(fn_ty.params)
    if len(args) != required and not (fn_ty.is_vararg and len(args) > required):
        raise VerificationError(
            f"call passes {len(args)} args to a {required}-arg function"
        )
    for arg, param_ty in zip(args, fn_ty.params):
        if arg.type is not param_ty:
            raise VerificationError(
                f"call argument type {arg.type} != parameter {param_ty}"
            )
    if inst.type is not fn_ty.return_type:
        raise VerificationError(
            f"call result type {inst.type} != return type {fn_ty.return_type}"
        )


def _verify_dominance(function: Function) -> None:
    from ..analysis.dominators import DominatorTree

    domtree = DominatorTree(function)
    positions: dict[int, tuple[BasicBlock, int]] = {}
    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            positions[id(inst)] = (block, index)

    def defined_before(def_inst: Instruction, block: BasicBlock, index: int) -> bool:
        def_block, def_index = positions[id(def_inst)]
        if def_block is block:
            return def_index < index
        return domtree.dominates_block(def_block, block)

    for block in function.blocks:
        if not domtree.is_reachable(block):
            continue  # uses in unreachable code are unconstrained
        for index, inst in enumerate(block.instructions):
            if isinstance(inst, PhiNode):
                for value, pred in inst.incoming:
                    if isinstance(value, Instruction):
                        if id(value) not in positions:
                            raise VerificationError(
                                f"phi {inst.name!r} uses an unplaced instruction"
                            )
                        if domtree.is_reachable(pred) and not defined_before(
                            value, pred, len(pred.instructions)
                        ):
                            raise VerificationError(
                                f"phi {inst.name!r} incoming value does not "
                                f"dominate predecessor {pred.name!r}"
                            )
                continue
            for operand in inst.operands:
                if isinstance(operand, Instruction):
                    if id(operand) not in positions:
                        raise VerificationError(
                            f"{inst.opcode.value} uses instruction not in function"
                        )
                    if not defined_before(operand, block, index):
                        raise VerificationError(
                            f"use of {operand.name or operand.opcode.value!r} in "
                            f"{block.name!r} is not dominated by its definition"
                        )
                elif isinstance(operand, Argument):
                    if operand.parent is not function:
                        raise VerificationError(
                            "use of an argument from another function"
                        )
                elif not isinstance(operand, (Constant, BasicBlock)):
                    raise VerificationError(
                        f"invalid operand kind: {operand!r}"
                    )
