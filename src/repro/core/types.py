"""The language-independent type system (paper section 2.2).

The representation exposes a small set of source-language-independent
primitive types with predefined sizes, plus exactly four derived types:
pointers, arrays, structures, and functions.  Every SSA register and
every explicit memory object has an associated type, and all operations
obey strict type rules.  Declared types are *not* guaranteed reliable
(the representation supports weakly-typed languages); reliability is
established separately by pointer analysis (see ``repro.analysis.dsa``).

Primitive types and anonymous derived types are uniqued: constructing
the "same" type twice yields the identical object, so types compare with
``is`` / ``==`` interchangeably.  Named structure types (used for
recursive types such as ``%list = type { int, %list* }``) are identified
by name and may have their body set exactly once.
"""

from __future__ import annotations

import threading as _threading
from typing import Iterable, Optional, Sequence


class Type:
    """Base class for all IR types."""

    __slots__ = ()

    #: Subclasses override these classification flags.
    is_void = False
    is_bool = False
    is_integer = False
    is_floating = False
    is_pointer = False
    is_array = False
    is_struct = False
    is_function = False
    is_label = False
    is_opaque = False

    @property
    def is_primitive(self) -> bool:
        """True for void, bool, the integer family, and the float family."""
        return self.is_void or self.is_bool or self.is_integer or self.is_floating

    @property
    def is_first_class(self) -> bool:
        """First-class types may live in SSA registers.

        Everything except void, label, functions, and bare aggregates:
        aggregates live in memory and are manipulated through pointers.
        """
        return self.is_bool or self.is_integer or self.is_floating or self.is_pointer

    @property
    def is_integral(self) -> bool:
        """Types valid for bitwise logic: bool or any integer."""
        return self.is_bool or self.is_integer

    @property
    def is_arithmetic(self) -> bool:
        """Types valid for add/sub/mul/div/rem."""
        return self.is_integer or self.is_floating

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self}>"


class VoidType(Type):
    """The type of functions returning nothing; not a value type."""

    __slots__ = ()
    is_void = True

    def __str__(self) -> str:
        return "void"


class LabelType(Type):
    """The type of basic blocks (branch targets)."""

    __slots__ = ()
    is_label = True

    def __str__(self) -> str:
        return "label"


class BoolType(Type):
    """A one-byte boolean: the result type of the set-condition opcodes."""

    __slots__ = ()
    is_bool = True

    def __str__(self) -> str:
        return "bool"


class IntegerType(Type):
    """A signed or unsigned integer of 8, 16, 32, or 64 bits.

    The instruction set follows LLVM 1.x in carrying signedness in the
    type (``sbyte``/``ubyte``/.../``long``/``ulong``) rather than in the
    opcode; the opcode plus the operand type determines exact semantics.
    """

    __slots__ = ("bits", "signed")

    is_integer = True
    _NAMES = {
        (8, True): "sbyte",
        (8, False): "ubyte",
        (16, True): "short",
        (16, False): "ushort",
        (32, True): "int",
        (32, False): "uint",
        (64, True): "long",
        (64, False): "ulong",
    }

    def __init__(self, bits: int, signed: bool):
        if (bits, signed) not in self._NAMES:
            raise ValueError(f"unsupported integer type: {bits} bits")
        self.bits = bits
        self.signed = signed

    def __str__(self) -> str:
        return self._NAMES[(self.bits, self.signed)]

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` to this type's range with two's-complement wrap."""
        value &= (1 << self.bits) - 1
        if self.signed and value >= 1 << (self.bits - 1):
            value -= 1 << self.bits
        return value


class FloatingType(Type):
    """IEEE single (``float``) or double (``double``) precision."""

    __slots__ = ("bits",)
    is_floating = True

    def __init__(self, bits: int):
        if bits not in (32, 64):
            raise ValueError(f"unsupported floating type: {bits} bits")
        self.bits = bits

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


class PointerType(Type):
    """A typed pointer to an object in memory."""

    __slots__ = ("pointee",)
    is_pointer = True

    def __init__(self, pointee: Type):
        if pointee.is_void or pointee.is_label:
            raise ValueError(f"cannot form pointer to {pointee}")
        self.pointee = pointee

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    """A fixed-size array: ``[N x T]``."""

    __slots__ = ("element", "count")
    is_array = True

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        if not (element.is_first_class or element.is_array or element.is_struct):
            raise ValueError(f"invalid array element type: {element}")
        self.element = element
        self.count = count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class StructType(Type):
    """A structure: ``{ T0, T1, ... }``, possibly named for recursion.

    Anonymous structs are uniqued structurally.  Named structs are
    created with :func:`named_struct` and their body set exactly once
    with :meth:`set_body`; until then they are *opaque* and may only be
    used behind a pointer.
    """

    __slots__ = ("name", "_fields")
    is_struct = True

    def __init__(self, fields: Optional[Sequence[Type]], name: Optional[str] = None):
        self.name = name
        self._fields: Optional[tuple[Type, ...]] = None
        if fields is not None:
            self.set_body(fields)

    @property
    def is_opaque(self) -> bool:  # type: ignore[override]
        return self._fields is None

    @property
    def fields(self) -> tuple[Type, ...]:
        if self._fields is None:
            raise ValueError(f"opaque struct {self.name!r} has no body")
        return self._fields

    def set_body(self, fields: Sequence[Type]) -> None:
        if self._fields is not None:
            raise ValueError(f"struct {self.name!r} body already set")
        for field in fields:
            if not (field.is_first_class or field.is_array or field.is_struct):
                raise ValueError(f"invalid struct field type: {field}")
        self._fields = tuple(fields)

    def __str__(self) -> str:
        if self.name is not None:
            return f"%{self.name}"
        return "{ " + ", ".join(str(f) for f in self.fields) + " }" if self.fields else "{ }"

    def body_str(self) -> str:
        """The literal body, even for named structs (used by ``type`` decls)."""
        if self._fields is None:
            return "opaque"
        if not self._fields:
            return "{ }"
        return "{ " + ", ".join(str(f) for f in self._fields) + " }"


class FunctionType(Type):
    """A function signature: return type, parameter types, varargs flag."""

    __slots__ = ("return_type", "params", "is_vararg")
    is_function = True

    def __init__(self, return_type: Type, params: Sequence[Type], is_vararg: bool = False):
        if not (return_type.is_first_class or return_type.is_void):
            raise ValueError(f"invalid return type: {return_type}")
        for param in params:
            if not param.is_first_class:
                raise ValueError(f"invalid parameter type: {param}")
        self.return_type = return_type
        self.params = tuple(params)
        self.is_vararg = is_vararg

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.is_vararg:
            parts.append("...")
        return f"{self.return_type} ({', '.join(parts)})"


# ---------------------------------------------------------------------------
# Uniquing
# ---------------------------------------------------------------------------

VOID = VoidType()
LABEL = LabelType()
BOOL = BoolType()
SBYTE = IntegerType(8, True)
UBYTE = IntegerType(8, False)
SHORT = IntegerType(16, True)
USHORT = IntegerType(16, False)
INT = IntegerType(32, True)
UINT = IntegerType(32, False)
LONG = IntegerType(64, True)
ULONG = IntegerType(64, False)
FLOAT = FloatingType(32)
DOUBLE = FloatingType(64)

#: The primitive types, by their textual keyword.
PRIMITIVES: dict[str, Type] = {
    "void": VOID,
    "bool": BOOL,
    "sbyte": SBYTE,
    "ubyte": UBYTE,
    "short": SHORT,
    "ushort": USHORT,
    "int": INT,
    "uint": UINT,
    "long": LONG,
    "ulong": ULONG,
    "float": FLOAT,
    "double": DOUBLE,
    "label": LABEL,
}

_pointer_cache: dict[int, PointerType] = {}
_array_cache: dict[tuple[int, int], ArrayType] = {}
_struct_cache: dict[tuple[int, ...], StructType] = {}
_function_cache: dict[tuple, FunctionType] = {}

# Derived-type identity relies on "same structure => same object"; a
# check-then-insert race between two compiler threads (the parallel
# batch driver) would mint two objects for one type and break every
# ``is`` comparison between their modules, so interning takes a lock.
_intern_lock = _threading.Lock()


def integer(bits: int, signed: bool) -> IntegerType:
    """Return the uniqued integer type with the given width and signedness."""
    for candidate in (SBYTE, UBYTE, SHORT, USHORT, INT, UINT, LONG, ULONG):
        if candidate.bits == bits and candidate.signed == signed:
            return candidate
    raise ValueError(f"unsupported integer type: {bits} bits")


def pointer(pointee: Type) -> PointerType:
    """Return the uniqued pointer type ``pointee*``."""
    cached = _pointer_cache.get(id(pointee))
    if cached is None:
        with _intern_lock:
            cached = _pointer_cache.get(id(pointee))
            if cached is None:
                cached = PointerType(pointee)
                _pointer_cache[id(pointee)] = cached
    return cached


def array(element: Type, count: int) -> ArrayType:
    """Return the uniqued array type ``[count x element]``."""
    key = (id(element), count)
    cached = _array_cache.get(key)
    if cached is None:
        with _intern_lock:
            cached = _array_cache.get(key)
            if cached is None:
                cached = ArrayType(element, count)
                _array_cache[key] = cached
    return cached


def struct(fields: Iterable[Type]) -> StructType:
    """Return the uniqued anonymous struct type ``{ fields... }``."""
    field_tuple = tuple(fields)
    key = tuple(id(f) for f in field_tuple)
    cached = _struct_cache.get(key)
    if cached is None:
        with _intern_lock:
            cached = _struct_cache.get(key)
            if cached is None:
                cached = StructType(field_tuple)
                _struct_cache[key] = cached
    return cached


def named_struct(name: str, fields: Optional[Sequence[Type]] = None) -> StructType:
    """Create a fresh *named* struct type (not uniqued; identity is the name).

    Named structs support recursion: create with ``fields=None`` (opaque),
    take pointers to it, then call :meth:`StructType.set_body`.
    """
    return StructType(fields, name=name)


def function(return_type: Type, params: Iterable[Type], is_vararg: bool = False) -> FunctionType:
    """Return the uniqued function type."""
    param_tuple = tuple(params)
    key = (id(return_type), tuple(id(p) for p in param_tuple), is_vararg)
    cached = _function_cache.get(key)
    if cached is None:
        with _intern_lock:
            cached = _function_cache.get(key)
            if cached is None:
                cached = FunctionType(return_type, param_tuple, is_vararg)
                _function_cache[key] = cached
    return cached


def element_at(aggregate: Type, index: int) -> Type:
    """The type of field/element ``index`` within an aggregate type."""
    if aggregate.is_struct:
        fields = aggregate.fields  # type: ignore[attr-defined]
        if not 0 <= index < len(fields):
            raise IndexError(f"struct index {index} out of range for {aggregate}")
        return fields[index]
    if aggregate.is_array:
        return aggregate.element  # type: ignore[attr-defined]
    raise TypeError(f"{aggregate} is not an aggregate type")


def is_losslessly_convertible(src: Type, dst: Type) -> bool:
    """Whether a cast from ``src`` to ``dst`` is a pure bit-preserving no-op."""
    if src is dst:
        return True
    if src.is_integer and dst.is_integer:
        return src.bits == dst.bits  # type: ignore[attr-defined]
    if src.is_pointer and dst.is_pointer:
        return True
    return False
