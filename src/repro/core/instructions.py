"""The virtual instruction set: exactly 31 opcodes (paper section 2.1).

The instruction set captures the key operations of ordinary processors
while avoiding machine-specific constraints.  It is small because (a)
there is one opcode per operation (``not``/``neg`` are spelled with
``xor``/``sub``) and (b) opcodes are overloaded over operand types: the
opcode plus the operand type determines exact semantics (e.g. ``add``
on ``int`` vs ``double``).

Instruction layout conventions:

* all operands (including branch targets, which are basic blocks of
  ``label`` type) live in the uniform operand list, so the def-use
  machinery covers control flow too;
* every basic block ends in exactly one *terminator* (``ret``, ``br``,
  ``switch``, ``invoke``, ``unwind``), and each terminator explicitly
  names its successor blocks, making the CFG explicit.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Sequence

from . import types
from .types import Type
from .values import Constant, ConstantInt, User, Value


class Opcode(enum.Enum):
    """The complete 31-opcode instruction set."""

    # Terminators (5)
    RET = "ret"
    BR = "br"
    SWITCH = "switch"
    INVOKE = "invoke"
    UNWIND = "unwind"
    # Binary arithmetic / logic / comparison (14)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SETEQ = "seteq"
    SETNE = "setne"
    SETLT = "setlt"
    SETGT = "setgt"
    SETLE = "setle"
    SETGE = "setge"
    # Memory (6)
    MALLOC = "malloc"
    FREE = "free"
    ALLOCA = "alloca"
    LOAD = "load"
    STORE = "store"
    GETELEMENTPTR = "getelementptr"
    # Other (6)
    PHI = "phi"
    CAST = "cast"
    CALL = "call"
    SHL = "shl"
    SHR = "shr"
    VAARG = "vaarg"


TERMINATOR_OPCODES = frozenset(
    {Opcode.RET, Opcode.BR, Opcode.SWITCH, Opcode.INVOKE, Opcode.UNWIND}
)
BINARY_OPCODES = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
        Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SETEQ, Opcode.SETNE, Opcode.SETLT, Opcode.SETGT,
        Opcode.SETLE, Opcode.SETGE,
    }
)
COMPARISON_OPCODES = frozenset(
    {Opcode.SETEQ, Opcode.SETNE, Opcode.SETLT, Opcode.SETGT, Opcode.SETLE, Opcode.SETGE}
)
COMMUTATIVE_OPCODES = frozenset(
    {Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SETEQ, Opcode.SETNE}
)

assert len(Opcode) == 31, "the paper's instruction set has exactly 31 opcodes"


class Instruction(User):
    """Base class for all instructions."""

    __slots__ = ("opcode", "parent", "loc")

    def __init__(self, opcode: Opcode, ty: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(ty, operands, name)
        self.opcode = opcode
        #: The basic block containing this instruction, set on insertion.
        self.parent = None  # type: ignore[assignment]
        #: Source line this instruction was generated from (None when the
        #: instruction did not come from a front-end, e.g. parsed IR).
        #: Threaded from the LC front-end so diagnostics can point at
        #: source even after optimization moves code around.
        self.loc: Optional[int] = None

    # -- classification -----------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATOR_OPCODES

    @property
    def is_binary_op(self) -> bool:
        return self.opcode in BINARY_OPCODES

    @property
    def is_comparison(self) -> bool:
        return self.opcode in COMPARISON_OPCODES

    @property
    def is_commutative(self) -> bool:
        return self.opcode in COMMUTATIVE_OPCODES

    def may_write_memory(self) -> bool:
        return self.opcode in (Opcode.STORE, Opcode.CALL, Opcode.INVOKE,
                               Opcode.FREE, Opcode.VAARG)

    def may_read_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.CALL, Opcode.INVOKE, Opcode.VAARG)

    def has_side_effects(self) -> bool:
        """Whether deleting this (unused) instruction could change behaviour.

        An unused ``malloc``/``alloca``/``load`` is deletable; calls are
        conservatively kept unless the callee is known side-effect free.
        """
        if self.is_terminator:
            return True
        if self.opcode in (Opcode.STORE, Opcode.FREE, Opcode.VAARG):
            return True
        if self.opcode in (Opcode.CALL, Opcode.INVOKE):
            callee = self.operands[0]
            known_pure = getattr(callee, "is_pure", False)
            return not known_pure
        return False

    # -- placement ------------------------------------------------------------

    def erase_from_parent(self) -> None:
        """Unlink from the containing block and drop operand references."""
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None
        self.drop_all_references()

    @property
    def function(self):
        """The function containing this instruction (via its block)."""
        return self.parent.parent if self.parent is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "<unnamed>"
        return f"<{self.opcode.value} {self.type} {label}>"


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------

class ReturnInst(Instruction):
    """``ret void`` or ``ret <ty> <value>``."""

    __slots__ = ()

    def __init__(self, value: Optional[Value] = None):
        operands = () if value is None else (value,)
        super().__init__(Opcode.RET, types.VOID, operands)

    @property
    def return_value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    @property
    def successors(self) -> list:
        return []


class BranchInst(Instruction):
    """Unconditional ``br label %dest`` or conditional
    ``br bool %cond, label %iftrue, label %iffalse``."""

    __slots__ = ()

    def __init__(self, dest, cond: Optional[Value] = None, false_dest=None):
        if cond is None:
            if false_dest is not None:
                raise ValueError("unconditional branch takes a single destination")
            operands = (dest,)
        else:
            if false_dest is None:
                raise ValueError("conditional branch requires two destinations")
            if not cond.type.is_bool:
                raise TypeError(f"branch condition must be bool, got {cond.type}")
            operands = (cond, dest, false_dest)
        super().__init__(Opcode.BR, types.VOID, operands)

    @property
    def is_conditional(self) -> bool:
        return len(self.operands) == 3

    @property
    def condition(self) -> Value:
        if not self.is_conditional:
            raise ValueError("unconditional branch has no condition")
        return self.operands[0]

    @property
    def successors(self) -> list:
        if self.is_conditional:
            return [self.operands[1], self.operands[2]]
        return [self.operands[0]]


class SwitchInst(Instruction):
    """``switch <ty> <value>, label %default [ <ty> <c>, label %dest ... ]``.

    Operand layout: ``[value, default, case0_val, case0_dest, ...]``.
    """

    __slots__ = ()

    def __init__(self, value: Value, default, cases: Iterable[tuple[ConstantInt, object]] = ()):
        if not value.type.is_integral:
            raise TypeError(f"switch value must be integral, got {value.type}")
        operands: list = [value, default]
        for case_value, dest in cases:
            operands.append(case_value)
            operands.append(dest)
        super().__init__(Opcode.SWITCH, types.VOID, operands)

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def default_dest(self):
        return self.operands[1]

    def add_case(self, case_value: ConstantInt, dest) -> None:
        if case_value.type is not self.value.type:
            raise TypeError("switch case type must match the switched value")
        self._append_operand(case_value)
        self._append_operand(dest)

    @property
    def cases(self) -> list[tuple[Value, object]]:
        pairs = []
        for index in range(2, len(self.operands), 2):
            pairs.append((self.operands[index], self.operands[index + 1]))
        return pairs

    @property
    def successors(self) -> list:
        return [self.operands[1]] + [self.operands[i] for i in range(3, len(self.operands), 2)]


class InvokeInst(Instruction):
    """A call that names an unwind handler (paper section 2.4).

    ``invoke`` works like ``call`` but specifies an extra basic block
    that starts the unwind handler.  When a callee executes ``unwind``,
    the stack unwinds to the most recent invoke activation and control
    transfers to that block, exposing exceptional control flow in the
    CFG.  Operand layout: ``[callee, args..., normal_dest, unwind_dest]``.
    """

    __slots__ = ()

    def __init__(self, callee: Value, args: Sequence[Value], normal_dest, unwind_dest, name: str = ""):
        fn_ty = _callee_function_type(callee)
        _check_call_args(fn_ty, args)
        operands = (callee, *args, normal_dest, unwind_dest)
        super().__init__(Opcode.INVOKE, fn_ty.return_type, operands, name)

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> list[Value]:
        return self.operands[1:-2]

    @property
    def normal_dest(self):
        return self.operands[-2]

    @property
    def unwind_dest(self):
        return self.operands[-1]

    @property
    def successors(self) -> list:
        return [self.operands[-2], self.operands[-1]]


class UnwindInst(Instruction):
    """Unwind the stack to the nearest dynamically-enclosing ``invoke``."""

    __slots__ = ()

    def __init__(self):
        super().__init__(Opcode.UNWIND, types.VOID, ())

    @property
    def successors(self) -> list:
        return []


# ---------------------------------------------------------------------------
# Binary operators
# ---------------------------------------------------------------------------

class BinaryOperator(Instruction):
    """Arithmetic, logical, and set-condition instructions.

    Both operands must have the same first-class type.  Arithmetic
    requires an arithmetic type, logic an integral type; the ``set*``
    comparisons accept any first-class type and produce ``bool``.
    """

    __slots__ = ()

    def __init__(self, opcode: Opcode, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"{opcode} is not a binary opcode")
        if lhs.type is not rhs.type:
            raise TypeError(f"operand type mismatch: {lhs.type} vs {rhs.type}")
        ty = lhs.type
        if opcode in COMPARISON_OPCODES:
            if not ty.is_first_class:
                raise TypeError(f"cannot compare values of type {ty}")
            result = types.BOOL
        elif opcode in (Opcode.AND, Opcode.OR, Opcode.XOR):
            if not ty.is_integral:
                raise TypeError(f"logical op requires an integral type, got {ty}")
            result = ty
        else:
            if not ty.is_arithmetic:
                raise TypeError(f"arithmetic requires int or float type, got {ty}")
            result = ty
        super().__init__(opcode, result, (lhs, rhs), name)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class ShiftInst(Instruction):
    """``shl``/``shr``: shift by a ``ubyte`` amount.

    ``shr`` is arithmetic when the operand type is signed and logical
    when unsigned — signedness lives in the type, not the opcode.
    """

    __slots__ = ()

    def __init__(self, opcode: Opcode, value: Value, amount: Value, name: str = ""):
        if opcode not in (Opcode.SHL, Opcode.SHR):
            raise ValueError(f"{opcode} is not a shift opcode")
        if not value.type.is_integer:
            raise TypeError(f"shift requires an integer type, got {value.type}")
        if amount.type is not types.UBYTE:
            raise TypeError(f"shift amount must be ubyte, got {amount.type}")
        super().__init__(opcode, value.type, (value, amount), name)

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def amount(self) -> Value:
        return self.operands[1]


# ---------------------------------------------------------------------------
# Memory instructions (section 2.3: explicit allocation, unified model)
# ---------------------------------------------------------------------------

class AllocationInst(Instruction):
    """Common base of ``malloc`` (heap) and ``alloca`` (stack frame)."""

    __slots__ = ("allocated_type",)

    def __init__(self, opcode: Opcode, allocated_type: Type,
                 array_size: Optional[Value], name: str):
        if not (allocated_type.is_first_class or allocated_type.is_array
                or allocated_type.is_struct):
            raise TypeError(f"cannot allocate type {allocated_type}")
        operands: tuple[Value, ...] = ()
        if array_size is not None:
            if array_size.type is not types.UINT:
                raise TypeError(f"allocation count must be uint, got {array_size.type}")
            operands = (array_size,)
        super().__init__(opcode, types.pointer(allocated_type), operands, name)
        self.allocated_type = allocated_type

    @property
    def array_size(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class MallocInst(AllocationInst):
    """Typed heap allocation; lowered to the native allocator at codegen."""

    __slots__ = ()

    def __init__(self, allocated_type: Type, array_size: Optional[Value] = None, name: str = ""):
        super().__init__(Opcode.MALLOC, allocated_type, array_size, name)


class AllocaInst(AllocationInst):
    """Typed stack allocation, automatically freed on function return.

    All stack-resident data, including source-level automatic variables,
    is allocated explicitly with ``alloca``; front-ends need not build
    SSA form themselves (the ``mem2reg`` stack-promotion pass does it).
    """

    __slots__ = ()

    def __init__(self, allocated_type: Type, array_size: Optional[Value] = None, name: str = ""):
        super().__init__(Opcode.ALLOCA, allocated_type, array_size, name)


class FreeInst(Instruction):
    """Release memory obtained from ``malloc``."""

    __slots__ = ()

    def __init__(self, ptr: Value):
        if not ptr.type.is_pointer:
            raise TypeError(f"free requires a pointer, got {ptr.type}")
        super().__init__(Opcode.FREE, types.VOID, (ptr,))

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class LoadInst(Instruction):
    """Load a first-class value through a typed pointer (no indexing)."""

    __slots__ = ()

    def __init__(self, ptr: Value, name: str = ""):
        if not ptr.type.is_pointer:
            raise TypeError(f"load requires a pointer, got {ptr.type}")
        pointee = ptr.type.pointee
        if not pointee.is_first_class:
            raise TypeError(f"cannot load a value of type {pointee}")
        super().__init__(Opcode.LOAD, pointee, (ptr,), name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class StoreInst(Instruction):
    """Store a first-class value through a typed pointer (no indexing)."""

    __slots__ = ()

    def __init__(self, value: Value, ptr: Value):
        if not ptr.type.is_pointer:
            raise TypeError(f"store requires a pointer, got {ptr.type}")
        if ptr.type.pointee is not value.type:
            raise TypeError(
                f"store type mismatch: storing {value.type} through {ptr.type}"
            )
        super().__init__(Opcode.STORE, types.VOID, (value, ptr))

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


def gep_result_type(pointer_type: Type, indices: Sequence[Value]) -> Type:
    """Compute the result type of a ``getelementptr``.

    The first index steps *over* the pointer (array-of-objects view) and
    does not change the type; each later index steps *into* the current
    aggregate.  Structure field indices must be ``uint`` constants so
    the selected field type is statically known; array indices are
    ``long`` values.
    """
    if not pointer_type.is_pointer:
        raise TypeError(f"getelementptr requires a pointer, got {pointer_type}")
    if not indices:
        raise ValueError("getelementptr requires at least one index")
    first = indices[0]
    if first.type is not types.LONG and first.type is not types.UINT:
        raise TypeError(f"first GEP index must be long, got {first.type}")
    current = pointer_type.pointee
    for index in indices[1:]:
        if current.is_struct:
            if not isinstance(index, ConstantInt) or index.type is not types.UINT:
                raise TypeError("struct field index must be a constant uint")
            current = types.element_at(current, index.value)
        elif current.is_array:
            if not index.type.is_integer:
                raise TypeError(f"array index must be an integer, got {index.type}")
            current = current.element
        else:
            raise TypeError(f"cannot index into type {current}")
    return types.pointer(current)


class GetElementPtrInst(Instruction):
    """Typed, machine-independent address arithmetic (paper section 2.2).

    Given a typed pointer to an aggregate object, computes the address
    of a sub-element in a type-preserving manner — effectively a
    combined ``.`` and ``[]`` operator.  Making all address arithmetic
    explicit exposes it to reassociation and redundancy elimination
    without obscuring type information.
    """

    __slots__ = ()

    def __init__(self, ptr: Value, indices: Sequence[Value], name: str = ""):
        result = gep_result_type(ptr.type, indices)
        super().__init__(Opcode.GETELEMENTPTR, result, (ptr, *indices), name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> list[Value]:
        return self.operands[1:]

    def has_all_zero_indices(self) -> bool:
        return all(isinstance(i, ConstantInt) and i.value == 0 for i in self.indices)

    def has_all_constant_indices(self) -> bool:
        return all(isinstance(i, ConstantInt) for i in self.indices)


# ---------------------------------------------------------------------------
# Other instructions
# ---------------------------------------------------------------------------

class PhiNode(Instruction):
    """The standard (non-gated) SSA φ function.

    Operand layout: ``[value0, block0, value1, block1, ...]``.
    """

    __slots__ = ()

    def __init__(self, ty: Type, name: str = ""):
        if not ty.is_first_class:
            raise TypeError(f"phi requires a first-class type, got {ty}")
        super().__init__(Opcode.PHI, ty, (), name)

    def add_incoming(self, value: Value, block) -> None:
        if value.type is not self.type:
            raise TypeError(f"phi incoming type {value.type} does not match {self.type}")
        self._append_operand(value)
        self._append_operand(block)

    @property
    def incoming(self) -> list[tuple[Value, object]]:
        return [
            (self.operands[i], self.operands[i + 1])
            for i in range(0, len(self.operands), 2)
        ]

    def incoming_for_block(self, block) -> Optional[Value]:
        for value, pred in self.incoming:
            if pred is block:
                return value
        return None

    def remove_incoming(self, block) -> None:
        """Remove the incoming entry for ``block`` (rebuilding operands)."""
        pairs = [(v, b) for v, b in self.incoming if b is not block]
        self._pop_operands(0)
        for value, pred in pairs:
            self._append_operand(value)
            self._append_operand(pred)

    def replace_incoming_block(self, old, new) -> None:
        for index in range(1, len(self.operands), 2):
            if self.operands[index] is old:
                self.set_operand(index, new)


class CastInst(Instruction):
    """Convert a value to an arbitrary first-class type (section 2.2).

    ``cast`` is the *only* way to convert between types; a program
    without casts is necessarily type-safe (absent memory errors).
    """

    __slots__ = ()

    def __init__(self, value: Value, dest_type: Type, name: str = ""):
        if not value.type.is_first_class:
            raise TypeError(f"cannot cast from type {value.type}")
        if not dest_type.is_first_class:
            raise TypeError(f"cannot cast to type {dest_type}")
        if value.type.is_floating and dest_type.is_pointer:
            raise TypeError("cannot cast floating point to pointer directly")
        if value.type.is_pointer and dest_type.is_floating:
            raise TypeError("cannot cast pointer to floating point directly")
        super().__init__(Opcode.CAST, dest_type, (value,), name)

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def is_noop(self) -> bool:
        return types.is_losslessly_convertible(self.value.type, self.type)


def _callee_function_type(callee: Value) -> types.FunctionType:
    ty = callee.type
    if ty.is_pointer and ty.pointee.is_function:
        return ty.pointee  # type: ignore[return-value]
    raise TypeError(f"callee must be a function pointer, got {ty}")


def _check_call_args(fn_ty: types.FunctionType, args: Sequence[Value]) -> None:
    required = len(fn_ty.params)
    if fn_ty.is_vararg:
        if len(args) < required:
            raise TypeError(f"call needs at least {required} args, got {len(args)}")
    elif len(args) != required:
        raise TypeError(f"call needs {required} args, got {len(args)}")
    for arg, param_ty in zip(args, fn_ty.params):
        if arg.type is not param_ty:
            raise TypeError(f"argument type {arg.type} does not match parameter {param_ty}")


class CallInst(Instruction):
    """Call through a typed function pointer (abstracts calling conventions)."""

    __slots__ = ()

    def __init__(self, callee: Value, args: Sequence[Value], name: str = ""):
        fn_ty = _callee_function_type(callee)
        _check_call_args(fn_ty, args)
        super().__init__(Opcode.CALL, fn_ty.return_type, (callee, *args), name)

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> list[Value]:
        return self.operands[1:]


class VAArgInst(Instruction):
    """Fetch the next variadic argument of a given type from a va_list.

    The va_list is represented as an ``sbyte**`` slot; the instruction
    reads the current argument and advances the slot (so it both reads
    and writes memory).
    """

    __slots__ = ()

    def __init__(self, valist: Value, result_type: Type, name: str = ""):
        if not (valist.type.is_pointer and valist.type.pointee.is_pointer):
            raise TypeError(f"vaarg requires an sbyte** va_list, got {valist.type}")
        if not result_type.is_first_class:
            raise TypeError(f"vaarg cannot produce type {result_type}")
        super().__init__(Opcode.VAARG, result_type, (valist,), name)

    @property
    def valist(self) -> Value:
        return self.operands[0]


def successors_of(terminator: Instruction) -> list:
    """The successor blocks of any terminator instruction."""
    return getattr(terminator, "successors", [])
