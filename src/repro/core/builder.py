"""IRBuilder: a convenience API for constructing IR instruction-by-instruction.

The builder is positioned at the end of a basic block (or before a given
instruction) and appends new instructions there, naming them and
checking types as it goes.  It performs no optimization — constant
folding is a separate concern (:mod:`repro.core.constfold`) so that
front-ends can emit naive code and rely on the optimizer, as the paper's
compilation strategy prescribes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from . import types
from .basicblock import BasicBlock
from .instructions import (
    AllocaInst, BinaryOperator, BranchInst, CallInst, CastInst, FreeInst,
    GetElementPtrInst, Instruction, InvokeInst, LoadInst, MallocInst, Opcode,
    PhiNode, ReturnInst, ShiftInst, StoreInst, SwitchInst, UnwindInst,
    VAArgInst,
)
from .values import ConstantBool, ConstantInt, Value


class IRBuilder:
    """Appends instructions at a position within a basic block."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block
        self._insert_index: Optional[int] = None
        #: Source line stamped onto every inserted instruction (front-ends
        #: set this as they walk the AST; None leaves instructions unlocated).
        self.current_line: Optional[int] = None

    # -- positioning -------------------------------------------------------

    def position_at_end(self, block: BasicBlock) -> "IRBuilder":
        self.block = block
        self._insert_index = None
        return self

    def position_before(self, inst: Instruction) -> "IRBuilder":
        self.block = inst.parent
        self._insert_index = self.block.instructions.index(inst)
        return self

    @property
    def function(self):
        return self.block.parent if self.block is not None else None

    def _insert(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise ValueError("builder has no insertion block")
        if self._insert_index is None:
            self.block.append(inst)
        else:
            self.block.insert(self._insert_index, inst)
            self._insert_index += 1
        if self.current_line is not None:
            inst.loc = self.current_line
        return inst

    # -- terminators ----------------------------------------------------------

    def ret(self, value: Optional[Value] = None) -> Instruction:
        return self._insert(ReturnInst(value))

    def ret_void(self) -> Instruction:
        return self._insert(ReturnInst(None))

    def br(self, dest: BasicBlock) -> Instruction:
        return self._insert(BranchInst(dest))

    def cond_br(self, cond: Value, true_dest: BasicBlock,
                false_dest: BasicBlock) -> Instruction:
        return self._insert(BranchInst(true_dest, cond, false_dest))

    def switch(self, value: Value, default: BasicBlock,
               cases: Sequence[tuple[ConstantInt, BasicBlock]] = ()) -> SwitchInst:
        return self._insert(SwitchInst(value, default, cases))  # type: ignore[return-value]

    def invoke(self, callee: Value, args: Sequence[Value],
               normal_dest: BasicBlock, unwind_dest: BasicBlock,
               name: str = "") -> InvokeInst:
        return self._insert(InvokeInst(callee, args, normal_dest, unwind_dest, name))  # type: ignore[return-value]

    def unwind(self) -> Instruction:
        return self._insert(UnwindInst())

    # -- binary operations ----------------------------------------------------

    def _binary(self, opcode: Opcode, lhs: Value, rhs: Value, name: str) -> Value:
        return self._insert(BinaryOperator(opcode, lhs, rhs, name))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.ADD, lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.SUB, lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.MUL, lhs, rhs, name)

    def div(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.DIV, lhs, rhs, name)

    def rem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.REM, lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.AND, lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.OR, lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.XOR, lhs, rhs, name)

    def seteq(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.SETEQ, lhs, rhs, name)

    def setne(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.SETNE, lhs, rhs, name)

    def setlt(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.SETLT, lhs, rhs, name)

    def setgt(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.SETGT, lhs, rhs, name)

    def setle(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.SETLE, lhs, rhs, name)

    def setge(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._binary(Opcode.SETGE, lhs, rhs, name)

    def neg(self, value: Value, name: str = "") -> Value:
        """``0 - value`` (there is no dedicated neg opcode)."""
        from .values import null_value

        return self.sub(null_value(value.type), value, name)

    def not_(self, value: Value, name: str = "") -> Value:
        """``value xor all-ones`` (there is no dedicated not opcode)."""
        if value.type.is_bool:
            return self.xor(value, ConstantBool(True), name)
        all_ones = ConstantInt(value.type, -1)  # type: ignore[arg-type]
        return self.xor(value, all_ones, name)

    def shl(self, value: Value, amount: Value, name: str = "") -> Value:
        return self._insert(ShiftInst(Opcode.SHL, value, amount, name))

    def shr(self, value: Value, amount: Value, name: str = "") -> Value:
        return self._insert(ShiftInst(Opcode.SHR, value, amount, name))

    # -- memory -----------------------------------------------------------------

    def alloca(self, allocated_type: types.Type,
               array_size: Optional[Value] = None, name: str = "") -> Value:
        return self._insert(AllocaInst(allocated_type, array_size, name))

    def malloc(self, allocated_type: types.Type,
               array_size: Optional[Value] = None, name: str = "") -> Value:
        return self._insert(MallocInst(allocated_type, array_size, name))

    def free(self, ptr: Value) -> Instruction:
        return self._insert(FreeInst(ptr))

    def load(self, ptr: Value, name: str = "") -> Value:
        return self._insert(LoadInst(ptr, name))

    def store(self, value: Value, ptr: Value) -> Instruction:
        return self._insert(StoreInst(value, ptr))

    def gep(self, ptr: Value, indices: Sequence[Value], name: str = "") -> Value:
        return self._insert(GetElementPtrInst(ptr, indices, name))

    def struct_gep(self, ptr: Value, field_index: int, name: str = "") -> Value:
        """GEP to field ``field_index`` of the struct ``ptr`` points at."""
        return self.gep(
            ptr,
            [ConstantInt(types.LONG, 0), ConstantInt(types.UINT, field_index)],
            name,
        )

    def array_gep(self, ptr: Value, index: Value, name: str = "") -> Value:
        """GEP to element ``index`` of the array ``ptr`` points at."""
        return self.gep(ptr, [ConstantInt(types.LONG, 0), index], name)

    # -- other ---------------------------------------------------------------------

    def phi(self, ty: types.Type, name: str = "") -> PhiNode:
        """Create a phi node, inserted at the start of the current block."""
        node = PhiNode(ty, name)
        if self.block is None:
            raise ValueError("builder has no insertion block")
        self.block.insert(self.block.first_non_phi_index(), node)
        if self._insert_index is not None:
            self._insert_index += 1
        if self.current_line is not None:
            node.loc = self.current_line
        return node

    def cast(self, value: Value, dest_type: types.Type, name: str = "") -> Value:
        if value.type is dest_type:
            return value
        return self._insert(CastInst(value, dest_type, name))

    def call(self, callee: Value, args: Sequence[Value], name: str = "") -> Value:
        return self._insert(CallInst(callee, args, name))

    def vaarg(self, valist: Value, result_type: types.Type, name: str = "") -> Value:
        return self._insert(VAArgInst(valist, result_type, name))
