"""Modules, functions, and global variables.

A module is a translation unit: global variables, functions, and named
types.  Global variable and function definitions define a *symbol
providing the address* of the object, not the object itself — this is
the unified memory model of paper section 2.3 in which every memory
operation, including calls, happens through a typed pointer and there
are no implicit memory accesses (so no address-of operator is needed).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from . import types
from .basicblock import BasicBlock
from .datalayout import DataLayout, DEFAULT
from .values import Argument, Constant, Value


class Linkage:
    """Symbol linkage kinds."""

    EXTERNAL = "external"   #: visible to other modules; participates in linking
    INTERNAL = "internal"   #: private to this module (C ``static``)
    APPENDING = "appending" #: arrays concatenated at link time (e.g. ctor lists)

    ALL = (EXTERNAL, INTERNAL, APPENDING)


class GlobalValue(Constant):
    """Base of functions and global variables: a constant *address*."""

    __slots__ = ("linkage", "parent")

    def __init__(self, ty: types.PointerType, name: str, linkage: str):
        if linkage not in Linkage.ALL:
            raise ValueError(f"bad linkage: {linkage}")
        super().__init__(ty, (), name)
        self.linkage = linkage
        self.parent: Optional[Module] = None

    @property
    def is_internal(self) -> bool:
        return self.linkage == Linkage.INTERNAL

    @property
    def is_declaration(self) -> bool:
        raise NotImplementedError


class GlobalVariable(GlobalValue):
    """A module-level variable; its value is a pointer to the storage."""

    __slots__ = ("is_constant",)

    def __init__(self, value_type: types.Type, name: str,
                 initializer: Optional[Constant] = None,
                 linkage: str = Linkage.EXTERNAL,
                 is_constant: bool = False):
        super().__init__(types.pointer(value_type), name, linkage)
        self.is_constant = is_constant
        if initializer is not None:
            self.set_initializer(initializer)

    @property
    def value_type(self) -> types.Type:
        return self.type.pointee

    @property
    def initializer(self) -> Optional[Constant]:
        return self.operands[0] if self.operands else None  # type: ignore[return-value]

    def set_initializer(self, initializer: Optional[Constant]) -> None:
        if self.operands:
            self._pop_operands(0)
        if initializer is not None:
            if not _init_matches(initializer.type, self.value_type):
                raise TypeError(
                    f"initializer type {initializer.type} does not match {self.value_type}"
                )
            self._append_operand(initializer)

    @property
    def is_declaration(self) -> bool:
        return self.initializer is None

    def erase_from_parent(self) -> None:
        if self.parent is not None:
            self.parent._remove_global(self)
        self.drop_all_references()


def _init_matches(init_ty: types.Type, slot_ty: types.Type) -> bool:
    if init_ty is slot_ty:
        return True
    # A ConstantString of N bytes may initialise [N x sbyte].
    if init_ty.is_array and slot_ty.is_array:
        return (init_ty.count == slot_ty.count
                and init_ty.element is slot_ty.element)
    return False


class Function(GlobalValue):
    """A function: arguments plus a CFG of basic blocks (or a declaration).

    The function value itself has type *pointer to function*, so it can
    be called, stored in vtables, or passed around like any constant.
    """

    __slots__ = ("args", "blocks", "is_pure", "source_module", "_next_anon")

    def __init__(self, fn_type: types.FunctionType, name: str,
                 linkage: str = Linkage.EXTERNAL,
                 arg_names: Optional[Sequence[str]] = None):
        super().__init__(types.pointer(fn_type), name, linkage)
        self.args: list[Argument] = []
        self.blocks: list[BasicBlock] = []
        #: Marked by front-ends/analyses for calls safe to delete if unused.
        self.is_pure = False
        #: Name of the translation unit that defined this function; the
        #: linker preserves it across merging so whole-program
        #: diagnostics can point at the original file.
        self.source_module: Optional[str] = None
        self._next_anon = 0
        for index, param_ty in enumerate(fn_type.params):
            arg_name = arg_names[index] if arg_names else f"arg{index}"
            self.args.append(Argument(param_ty, arg_name, self, index))

    @property
    def function_type(self) -> types.FunctionType:
        return self.type.pointee  # type: ignore[return-value]

    @property
    def return_type(self) -> types.Type:
        return self.function_type.return_type

    @property
    def is_vararg(self) -> bool:
        return self.function_type.is_vararg

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no body")
        return self.blocks[0]

    def append_block(self, name: str = "") -> BasicBlock:
        return BasicBlock(name, parent=self)

    def instructions(self) -> Iterator:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def next_anon_name(self, prefix: str = "tmp") -> str:
        self._next_anon += 1
        return f"{prefix}.{self._next_anon}"

    def delete_body(self) -> None:
        """Turn a definition back into a declaration.

        Instructions are dropped in two phases (references first) so
        mutual references between dying instructions cause no errors.
        """
        for block in self.blocks:
            for inst in block.instructions:
                inst.drop_all_references()
        for block in list(self.blocks):
            block.instructions.clear()
            block.remove_from_parent()
        self.blocks.clear()

    def erase_from_parent(self) -> None:
        self.delete_body()
        if self.parent is not None:
            self.parent._remove_function(self)
        self.drop_all_references()

    def verify(self) -> None:
        """Convenience wrapper over :mod:`repro.core.verifier`."""
        from .verifier import verify_function

        verify_function(self)


class Module:
    """A translation unit: named types, global variables, and functions."""

    def __init__(self, name: str = "module", data_layout: DataLayout = DEFAULT):
        self.name = name
        self.data_layout = data_layout
        self.globals: dict[str, GlobalVariable] = {}
        self.functions: dict[str, Function] = {}
        self.named_types: dict[str, types.StructType] = {}

    # -- named types ---------------------------------------------------------

    def add_named_type(self, struct_ty: types.StructType) -> types.StructType:
        if struct_ty.name is None:
            raise ValueError("only named structs go in the module type table")
        existing = self.named_types.get(struct_ty.name)
        if existing is not None and existing is not struct_ty:
            raise ValueError(f"type name {struct_ty.name!r} already defined")
        self.named_types[struct_ty.name] = struct_ty
        return struct_ty

    # -- globals -------------------------------------------------------------

    def add_global(self, global_var: GlobalVariable) -> GlobalVariable:
        self._claim_symbol(global_var.name)
        global_var.parent = self
        self.globals[global_var.name] = global_var
        return global_var

    def new_global(self, value_type: types.Type, name: str,
                   initializer: Optional[Constant] = None,
                   linkage: str = Linkage.EXTERNAL,
                   is_constant: bool = False) -> GlobalVariable:
        return self.add_global(
            GlobalVariable(value_type, name, initializer, linkage, is_constant)
        )

    def _remove_global(self, global_var: GlobalVariable) -> None:
        if self.globals.get(global_var.name) is global_var:
            del self.globals[global_var.name]
        global_var.parent = None

    # -- functions -----------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        self._claim_symbol(function.name)
        function.parent = self
        self.functions[function.name] = function
        return function

    def new_function(self, fn_type: types.FunctionType, name: str,
                     linkage: str = Linkage.EXTERNAL,
                     arg_names: Optional[Sequence[str]] = None) -> Function:
        return self.add_function(Function(fn_type, name, linkage, arg_names))

    def get_or_insert_function(self, fn_type: types.FunctionType, name: str) -> Function:
        existing = self.functions.get(name)
        if existing is not None:
            if existing.function_type is not fn_type:
                raise TypeError(
                    f"function {name!r} redeclared with different type: "
                    f"{existing.function_type} vs {fn_type}"
                )
            return existing
        return self.new_function(fn_type, name)

    def _remove_function(self, function: Function) -> None:
        if self.functions.get(function.name) is function:
            del self.functions[function.name]
        function.parent = None

    # -- symbols ----------------------------------------------------------------

    def _claim_symbol(self, name: str) -> None:
        if not name:
            raise ValueError("module-level symbols must be named")
        if name in self.globals or name in self.functions:
            raise ValueError(f"symbol {name!r} already defined in module")

    def get_symbol(self, name: str) -> Optional[GlobalValue]:
        return self.functions.get(name) or self.globals.get(name)

    def unique_symbol(self, base: str) -> str:
        """A symbol name not yet used in this module, derived from ``base``."""
        if base not in self.globals and base not in self.functions:
            return base
        counter = 1
        while f"{base}.{counter}" in self.globals or f"{base}.{counter}" in self.functions:
            counter += 1
        return f"{base}.{counter}"

    # -- iteration ----------------------------------------------------------------

    def defined_functions(self) -> Iterator[Function]:
        for function in self.functions.values():
            if not function.is_declaration:
                yield function

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def verify(self) -> None:
        from .verifier import verify_module

        verify_module(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Module {self.name!r}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")
