"""Values, uses, and constants: the SSA dataflow substrate.

Everything computed or referenced by the IR is a :class:`Value` with a
type.  Values that reference other values (instructions, constant
expressions, global initializers) are :class:`User`\\ s; every operand
slot is tracked by a :class:`Use`, giving the explicit def-use graph the
paper relies on ("SSA form provides a compact def-use graph that
simplifies many dataflow optimizations").
"""

from __future__ import annotations

import struct as _struct
from typing import Iterator, Optional, Sequence

from . import types
from .types import Type


class Use:
    """One operand slot of a user: the edge ``user.operands[index] -> value``.

    ``position`` is the back-link into ``value.uses`` that makes unlink
    O(1): removal swaps the last use into this slot instead of scanning
    (and shifting) the list, so ``replace_all_uses_with`` and
    ``drop_all_references`` stay O(uses) even on high-fanout values.
    The position is maintained exclusively by :class:`User`; nothing
    else may mutate a use list.
    """

    __slots__ = ("user", "index", "position")

    def __init__(self, user: "User", index: int):
        self.user = user
        self.index = index
        self.position = -1  # set when registered on a value's use list

    @property
    def value(self) -> "Value":
        return self.user.operands[self.index]


class Value:
    """Base of the IR value hierarchy: a typed, optionally named entity."""

    __slots__ = ("type", "name", "uses", "__weakref__")

    def __init__(self, ty: Type, name: str = ""):
        self.type = ty
        self.name = name
        #: Uses of this value, maintained by :class:`User`.
        self.uses: list[Use] = []

    # -- use-list queries ---------------------------------------------------

    @property
    def is_used(self) -> bool:
        return bool(self.uses)

    def users(self) -> Iterator["User"]:
        """Iterate the users of this value (a user may appear repeatedly)."""
        for use in self.uses:
            yield use.user

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every use of ``self`` to refer to ``new`` instead."""
        if new is self:
            raise ValueError("cannot replace a value with itself")
        for use in list(self.uses):
            use.user.set_operand(use.index, new)

    # -- presentation ---------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "<unnamed>"
        return f"<{type(self).__name__} {self.type} {label}>"


class User(Value):
    """A value that references other values through operand slots.

    ``operand_uses`` mirrors ``operands`` slot for slot, holding the
    :class:`Use` edge registered on each operand's use list; it is what
    lets :meth:`_unlink_use` find the edge without scanning.
    """

    __slots__ = ("operands", "operand_uses")

    def __init__(self, ty: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(ty, name)
        self.operands: list[Value] = []
        self.operand_uses: list[Use] = []
        for operand in operands:
            self._append_operand(operand)

    def _append_operand(self, value: Value) -> None:
        use = Use(self, len(self.operands))
        self.operands.append(value)
        self.operand_uses.append(use)
        use.position = len(value.uses)
        value.uses.append(use)

    def _pop_operands(self, start: int) -> None:
        """Drop operand slots from ``start`` to the end."""
        while len(self.operands) > start:
            index = len(self.operands) - 1
            self._unlink_use(index)
            self.operands.pop()
            self.operand_uses.pop()

    def _unlink_use(self, index: int) -> None:
        """Unregister the use of operand ``index``: O(1) swap-remove.

        The last use on the list moves into the vacated position (and
        has its back-link patched), so no scan and no shifting happen
        regardless of where on a high-fanout use list this edge sits.
        """
        old = self.operands[index]
        use = self.operand_uses[index]
        last = old.uses[-1]
        old.uses[use.position] = last
        last.position = use.position
        old.uses.pop()
        use.position = -1

    def set_operand(self, index: int, value: Value) -> None:
        """Replace operand ``index``, keeping use-lists consistent."""
        self._unlink_use(index)
        use = self.operand_uses[index]
        self.operands[index] = value
        use.position = len(value.uses)
        value.uses.append(use)

    def drop_all_references(self) -> None:
        """Detach this user from all of its operands (before deletion)."""
        for index in range(len(self.operands)):
            self._unlink_use(index)
        self.operands.clear()
        self.operand_uses.clear()


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("parent", "index")

    def __init__(self, ty: Type, name: str, parent, index: int):
        super().__init__(ty, name)
        self.parent = parent
        self.index = index


# ---------------------------------------------------------------------------
# Constants
# ---------------------------------------------------------------------------

class Constant(User):
    """Base class for immutable, use-tracked constant values."""

    __slots__ = ()

    def is_null_value(self) -> bool:
        """Whether this constant is the all-zero value of its type."""
        return False


class ConstantInt(Constant):
    """An integer constant, stored wrapped to its type's range."""

    __slots__ = ("value",)

    def __init__(self, ty: types.IntegerType, value: int):
        if not ty.is_integer:
            raise TypeError(f"ConstantInt requires an integer type, got {ty}")
        super().__init__(ty, ())
        self.value = ty.wrap(value)

    def is_null_value(self) -> bool:
        return self.value == 0

    def __str__(self) -> str:
        return str(self.value)


class ConstantBool(Constant):
    """The ``true`` / ``false`` constants."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        super().__init__(types.BOOL, ())
        self.value = bool(value)

    def is_null_value(self) -> bool:
        return not self.value

    def __str__(self) -> str:
        return "true" if self.value else "false"


class ConstantFP(Constant):
    """A floating-point constant (stored at the precision of its type)."""

    __slots__ = ("value",)

    def __init__(self, ty: types.FloatingType, value: float):
        if not ty.is_floating:
            raise TypeError(f"ConstantFP requires a floating type, got {ty}")
        super().__init__(ty, ())
        if ty.bits == 32:
            # Round-trip through single precision so semantics match storage.
            value = _struct.unpack("<f", _struct.pack("<f", value))[0]
        self.value = float(value)

    def is_null_value(self) -> bool:
        return self.value == 0.0

    def __str__(self) -> str:
        return repr(self.value)


class ConstantPointerNull(Constant):
    """The ``null`` pointer of a given pointer type."""

    __slots__ = ()

    def __init__(self, ty: types.PointerType):
        if not ty.is_pointer:
            raise TypeError(f"null requires a pointer type, got {ty}")
        super().__init__(ty, ())

    def is_null_value(self) -> bool:
        return True

    def __str__(self) -> str:
        return "null"


class UndefValue(Constant):
    """An unspecified value of a first-class type."""

    __slots__ = ()

    def __init__(self, ty: Type):
        super().__init__(ty, ())

    def __str__(self) -> str:
        return "undef"


class ConstantAggregateZero(Constant):
    """``zeroinitializer``: the all-zero value of an aggregate type."""

    __slots__ = ()

    def __init__(self, ty: Type):
        if not (ty.is_array or ty.is_struct):
            raise TypeError(f"zeroinitializer requires an aggregate type, got {ty}")
        super().__init__(ty, ())

    def is_null_value(self) -> bool:
        return True

    def __str__(self) -> str:
        return "zeroinitializer"


class ConstantArray(Constant):
    """A constant array; elements are the operands."""

    __slots__ = ()

    def __init__(self, ty: types.ArrayType, elements: Sequence[Constant]):
        if not ty.is_array:
            raise TypeError(f"ConstantArray requires an array type, got {ty}")
        if len(elements) != ty.count:
            raise ValueError(f"array type {ty} requires {ty.count} elements, got {len(elements)}")
        for element in elements:
            if element.type is not ty.element:
                raise TypeError(f"element type {element.type} does not match {ty.element}")
        super().__init__(ty, elements)

    @property
    def elements(self) -> list[Value]:
        return self.operands


class ConstantStruct(Constant):
    """A constant structure; fields are the operands."""

    __slots__ = ()

    def __init__(self, ty: types.StructType, fields: Sequence[Constant]):
        if not ty.is_struct:
            raise TypeError(f"ConstantStruct requires a struct type, got {ty}")
        if len(fields) != len(ty.fields):
            raise ValueError(f"struct type {ty} requires {len(ty.fields)} fields")
        for field, field_ty in zip(fields, ty.fields):
            if field.type is not field_ty:
                raise TypeError(f"field type {field.type} does not match {field_ty}")
        super().__init__(ty, fields)

    @property
    def fields_values(self) -> list[Value]:
        return self.operands


class ConstantString(Constant):
    """A constant byte-array initializer written as ``c"..."``.

    Semantically an array of ``sbyte``; kept distinct so the printer can
    emit readable string syntax for string literals.
    """

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        super().__init__(types.array(types.SBYTE, len(data)), ())
        self.data = bytes(data)

    def is_null_value(self) -> bool:
        return all(b == 0 for b in self.data)


class ConstantExpr(Constant):
    """A constant expression: ``cast`` or ``getelementptr`` over constants.

    Needed so global initializers can reference addresses derived from
    other globals (e.g. a vtable slot holding a cast function pointer, or
    the address of a string literal's first character).
    """

    __slots__ = ("opcode",)

    def __init__(self, opcode: str, ty: Type, operands: Sequence[Constant]):
        if opcode not in ("cast", "getelementptr"):
            raise ValueError(f"unsupported constant expression opcode: {opcode}")
        super().__init__(ty, operands)
        self.opcode = opcode


def null_value(ty: Type) -> Constant:
    """The zero/null constant of any first-class or aggregate type."""
    if ty.is_integer:
        return ConstantInt(ty, 0)  # type: ignore[arg-type]
    if ty.is_bool:
        return ConstantBool(False)
    if ty.is_floating:
        return ConstantFP(ty, 0.0)  # type: ignore[arg-type]
    if ty.is_pointer:
        return ConstantPointerNull(ty)  # type: ignore[arg-type]
    if ty.is_array or ty.is_struct:
        return ConstantAggregateZero(ty)
    raise TypeError(f"type {ty} has no null value")
