"""Plain-text representation writer (paper section 2.5).

The IR is a first-class language with equivalent textual, binary, and
in-memory forms.  This module renders the in-memory form as text in the
LLVM 1.x style; :mod:`repro.core.irparser` reads it back with no
information loss, which the property tests exercise as a round-trip.
"""

from __future__ import annotations

from io import StringIO
from typing import Optional

from . import types
from .basicblock import BasicBlock
from .instructions import (
    AllocationInst, BranchInst, CallInst, CastInst, GetElementPtrInst,
    Instruction, InvokeInst, Opcode, PhiNode, ReturnInst, ShiftInst,
    SwitchInst, VAArgInst,
)
from .module import Function, GlobalVariable, Linkage, Module
from .values import (
    Argument, Constant, ConstantAggregateZero, ConstantArray, ConstantBool,
    ConstantExpr, ConstantFP, ConstantInt, ConstantPointerNull,
    ConstantString, ConstantStruct, UndefValue, Value,
)

_IDENT_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._")


def _quote_name(name: str) -> str:
    """Render a symbol name, quoting when it needs escaping."""
    if name and all(c in _IDENT_OK for c in name):
        return name
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _escape_string(data: bytes) -> str:
    parts = []
    for byte in data:
        if 32 <= byte < 127 and byte not in (34, 92):  # printable, not " or \
            parts.append(chr(byte))
        else:
            parts.append(f"\\{byte:02x}")
    return "".join(parts)


def format_float(value: float) -> str:
    text = repr(value)
    return text


class _NameScope:
    """Assigns unique printed names to values within one scope."""

    def __init__(self):
        self._names: dict[int, str] = {}
        self._used: set[str] = set()
        self._counter = 0

    def name_of(self, value: Value) -> str:
        cached = self._names.get(id(value))
        if cached is not None:
            return cached
        if value.name:
            candidate = value.name
            suffix = 0
            while candidate in self._used:
                suffix += 1
                candidate = f"{value.name}.{suffix}"
        else:
            candidate = str(self._counter)
            self._counter += 1
            while candidate in self._used:
                candidate = str(self._counter)
                self._counter += 1
        self._used.add(candidate)
        self._names[id(value)] = candidate
        return candidate


class ModulePrinter:
    """Prints a module (or pieces of one) as text."""

    def __init__(self, module: Optional[Module] = None):
        self.module = module

    # -- public API ---------------------------------------------------------

    def print_module(self, module: Module) -> str:
        self.module = module
        out = StringIO()
        out.write(f"; ModuleID = '{module.name}'\n")
        if module.named_types:
            for name, struct_ty in module.named_types.items():
                out.write(f"%{_quote_name(name)} = type {struct_ty.body_str()}\n")
            out.write("\n")
        for global_var in module.globals.values():
            out.write(self.format_global(global_var))
            out.write("\n")
        if module.globals:
            out.write("\n")
        for function in module.functions.values():
            out.write(self.format_function(function))
            out.write("\n")
        return out.getvalue()

    def format_global(self, global_var: GlobalVariable) -> str:
        keyword = "constant" if global_var.is_constant else "global"
        pieces = [f"%{_quote_name(global_var.name)} ="]
        if global_var.linkage != Linkage.EXTERNAL:
            pieces.append(global_var.linkage)
        if global_var.is_declaration:
            pieces.append("external")
            pieces.append(keyword)
            pieces.append(str(global_var.value_type))
        else:
            pieces.append(keyword)
            pieces.append(self.format_typed_constant(global_var.initializer))
        return " ".join(pieces)

    def format_function(self, function: Function) -> str:
        scope = _NameScope()
        # Locals may not collide with module symbols: % names share one
        # namespace in the textual form and module scope wins fallback.
        module = function.parent or self.module
        if module is not None:
            scope._used.update(module.globals)
            scope._used.update(module.functions)
        fn_ty = function.function_type
        params = []
        for arg in function.args:
            params.append(f"{arg.type} %{_quote_name(scope.name_of(arg))}")
        if fn_ty.is_vararg:
            params.append("...")
        linkage = f"{function.linkage} " if function.linkage != Linkage.EXTERNAL else ""
        header = (f"{linkage}{fn_ty.return_type} "
                  f"%{_quote_name(function.name)}({', '.join(params)})")
        if function.is_declaration:
            return f"declare {header}\n"
        out = StringIO()
        out.write(f"{header} {{\n")
        # Pre-name blocks in layout order so labels read top-to-bottom.
        for block in function.blocks:
            scope.name_of(block)
        for index, block in enumerate(function.blocks):
            if index:
                out.write("\n")
            out.write(f"{_quote_name(scope.name_of(block))}:\n")
            for inst in block.instructions:
                out.write("  ")
                out.write(self.format_instruction(inst, scope))
                out.write("\n")
        out.write("}\n")
        return out.getvalue()

    # -- operands --------------------------------------------------------------

    def format_operand(self, value: Value, scope: _NameScope) -> str:
        """The operand text *without* its leading type."""
        if isinstance(value, BasicBlock):
            return f"%{_quote_name(scope.name_of(value))}"
        if isinstance(value, (Function, GlobalVariable)):
            return f"%{_quote_name(value.name)}"
        if isinstance(value, Constant):
            return self.format_constant_value(value)
        return f"%{_quote_name(scope.name_of(value))}"

    def format_typed(self, value: Value, scope: _NameScope) -> str:
        if isinstance(value, BasicBlock):
            return f"label {self.format_operand(value, scope)}"
        return f"{value.type} {self.format_operand(value, scope)}"

    def format_constant_value(self, constant: Constant) -> str:
        if isinstance(constant, ConstantInt):
            return str(constant.value)
        if isinstance(constant, ConstantBool):
            return "true" if constant.value else "false"
        if isinstance(constant, ConstantFP):
            return format_float(constant.value)
        if isinstance(constant, ConstantPointerNull):
            return "null"
        if isinstance(constant, UndefValue):
            return "undef"
        if isinstance(constant, ConstantAggregateZero):
            return "zeroinitializer"
        if isinstance(constant, ConstantString):
            return f'c"{_escape_string(constant.data)}"'
        if isinstance(constant, ConstantArray):
            inner = ", ".join(self.format_typed_constant(e) for e in constant.elements)
            return f"[ {inner} ]" if inner else "[ ]"
        if isinstance(constant, ConstantStruct):
            inner = ", ".join(self.format_typed_constant(f) for f in constant.fields_values)
            return f"{{ {inner} }}" if inner else "{ }"
        if isinstance(constant, ConstantExpr):
            if constant.opcode == "cast":
                source = self.format_typed_constant(constant.operands[0])
                return f"cast ({source} to {constant.type})"
            inner = ", ".join(self.format_typed_constant(op) for op in constant.operands)
            return f"getelementptr ({inner})"
        raise TypeError(f"cannot print constant {constant!r}")

    def format_typed_constant(self, constant: Constant) -> str:
        if isinstance(constant, (Function, GlobalVariable)):
            return f"{constant.type} %{_quote_name(constant.name)}"
        return f"{constant.type} {self.format_constant_value(constant)}"

    # -- instructions ---------------------------------------------------------------

    def format_instruction(self, inst: Instruction, scope: _NameScope) -> str:
        body = self._instruction_body(inst, scope)
        if inst.loc is not None:
            body = f"{body} !loc {inst.loc}"
        if inst.type.is_void:
            return body
        return f"%{_quote_name(scope.name_of(inst))} = {body}"

    def _instruction_body(self, inst: Instruction, scope: _NameScope) -> str:
        op = inst.opcode
        fmt = lambda v: self.format_operand(v, scope)  # noqa: E731
        typed = lambda v: self.format_typed(v, scope)  # noqa: E731

        if isinstance(inst, ReturnInst):
            value = inst.return_value
            return "ret void" if value is None else f"ret {typed(value)}"
        if isinstance(inst, BranchInst):
            if inst.is_conditional:
                return (f"br bool {fmt(inst.condition)}, {typed(inst.operands[1])}, "
                        f"{typed(inst.operands[2])}")
            return f"br {typed(inst.operands[0])}"
        if isinstance(inst, SwitchInst):
            cases = " ".join(
                f"{typed(value)}, {typed(dest)}" for value, dest in inst.cases
            )
            return (f"switch {typed(inst.value)}, {typed(inst.default_dest)} "
                    f"[ {cases} ]")
        if isinstance(inst, InvokeInst):
            args = ", ".join(typed(a) for a in inst.args)
            callee = self._callee_text(inst.callee, scope)
            return (f"invoke {callee}({args}) to {typed(inst.normal_dest)} "
                    f"unwind to {typed(inst.unwind_dest)}")
        if op == Opcode.UNWIND:
            return "unwind"
        if inst.is_binary_op:
            lhs, rhs = inst.operands
            return f"{op.value} {lhs.type} {fmt(lhs)}, {fmt(rhs)}"
        if isinstance(inst, ShiftInst):
            return (f"{op.value} {inst.value.type} {fmt(inst.value)}, "
                    f"ubyte {fmt(inst.amount)}")
        if isinstance(inst, AllocationInst):
            base = f"{op.value} {inst.allocated_type}"
            if inst.array_size is not None:
                return f"{base}, uint {fmt(inst.array_size)}"
            return base
        if op == Opcode.FREE:
            return f"free {typed(inst.operands[0])}"
        if op == Opcode.LOAD:
            return f"load {typed(inst.operands[0])}"
        if op == Opcode.STORE:
            value, ptr = inst.operands
            return f"store {typed(value)}, {typed(ptr)}"
        if isinstance(inst, GetElementPtrInst):
            parts = [typed(inst.pointer)]
            parts.extend(typed(index) for index in inst.indices)
            return f"getelementptr {', '.join(parts)}"
        if isinstance(inst, PhiNode):
            entries = ", ".join(
                f"[ {fmt(value)}, {fmt(block)} ]" for value, block in inst.incoming
            )
            return f"phi {inst.type} {entries}"
        if isinstance(inst, CastInst):
            return f"cast {typed(inst.value)} to {inst.type}"
        if isinstance(inst, CallInst):
            args = ", ".join(typed(a) for a in inst.args)
            callee = self._callee_text(inst.callee, scope)
            return f"call {callee}({args})"
        if isinstance(inst, VAArgInst):
            return f"vaarg {typed(inst.valist)}, {inst.type}"
        raise TypeError(f"cannot print instruction {inst!r}")

    def _callee_text(self, callee: Value, scope: _NameScope) -> str:
        """Callee with its return type, or full type when needed.

        Direct calls to a simple function print as ``call int %f``;
        varargs and indirect calls print the full function-pointer type
        so the parser can reconstruct the signature.
        """
        fn_ty = callee.type.pointee
        direct = isinstance(callee, Function)
        if direct and not fn_ty.is_vararg:
            return f"{fn_ty.return_type} {self.format_operand(callee, scope)}"
        return f"{callee.type} {self.format_operand(callee, scope)}"


def print_module(module: Module) -> str:
    """Render an entire module as text."""
    return ModulePrinter().print_module(module)


def print_function(function: Function) -> str:
    """Render one function as text."""
    return ModulePrinter(function.parent).format_function(function)


def print_instruction(inst: Instruction) -> str:
    """Render one instruction (names assigned fresh — debugging aid)."""
    return ModulePrinter().format_instruction(inst, _NameScope())
