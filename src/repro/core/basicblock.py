"""Basic blocks: straight-line instruction sequences ending in a terminator.

A function is a set of basic blocks; each block is a sequence of
instructions ending in exactly one terminator which explicitly names its
successor blocks.  Blocks are themselves values of ``label`` type so
that branch targets participate in the uniform use-list machinery —
predecessors of a block are recovered directly from its uses.
"""

from __future__ import annotations

from typing import Iterator, Optional

from . import types
from .instructions import Instruction, Opcode, PhiNode
from .values import Value


class BasicBlock(Value):
    """A labelled sequence of instructions within a function."""

    __slots__ = ("parent", "instructions")

    def __init__(self, name: str = "", parent=None):
        super().__init__(types.LABEL, name)
        self.parent = parent
        self.instructions: list[Instruction] = []
        if parent is not None:
            parent.blocks.append(self)

    # -- structure ----------------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's terminator, or None if the block is still open."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return list(term.successors) if term is not None else []

    def predecessors(self) -> list["BasicBlock"]:
        """Blocks that can branch here, recovered from the use-list.

        A predecessor appears once per use (e.g. a conditional branch
        with both arms targeting this block yields it twice), matching
        what phi nodes need; callers wanting unique preds should dedup.
        """
        preds = []
        for use in self.uses:
            user = use.user
            if isinstance(user, Instruction) and user.is_terminator:
                if user.opcode != Opcode.INVOKE or use.index >= len(user.operands) - 2:
                    preds.append(user.parent)
                elif user.opcode == Opcode.INVOKE:
                    # A block used as an invoke *argument* is impossible
                    # (labels are not first-class), so this cannot happen;
                    # guard kept for clarity.
                    preds.append(user.parent)
        return preds

    def unique_predecessors(self) -> list["BasicBlock"]:
        seen: dict[int, BasicBlock] = {}
        for pred in self.predecessors():
            seen.setdefault(id(pred), pred)
        return list(seen.values())

    def phis(self) -> Iterator[PhiNode]:
        for inst in self.instructions:
            if isinstance(inst, PhiNode):
                yield inst
            else:
                break

    def first_non_phi_index(self) -> int:
        for index, inst in enumerate(self.instructions):
            if not isinstance(inst, PhiNode):
                return index
        return len(self.instructions)

    # -- mutation -------------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(f"block {self.name!r} is already terminated")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        term = self.terminator
        if term is None:
            return self.append(inst)
        return self.insert(len(self.instructions) - 1, inst)

    def remove_from_parent(self) -> None:
        if self.parent is not None:
            self.parent.blocks.remove(self)
            self.parent = None

    def erase_from_parent(self) -> None:
        """Delete the block and all its instructions."""
        for inst in list(self.instructions):
            inst.erase_from_parent()
        self.remove_from_parent()

    def split_at(self, index: int, new_name: str = "") -> "BasicBlock":
        """Split this block before instruction ``index``.

        Instructions from ``index`` onward move to a new block, and this
        block gets an unconditional branch to it.  Phi nodes in (old)
        successors are updated to name the new block as predecessor.
        """
        from .instructions import BranchInst

        new_block = BasicBlock(new_name, parent=None)
        if self.parent is not None:
            position = self.parent.blocks.index(self)
            self.parent.blocks.insert(position + 1, new_block)
            new_block.parent = self.parent
        moved = self.instructions[index:]
        del self.instructions[index:]
        for inst in moved:
            inst.parent = new_block
            new_block.instructions.append(inst)
        for succ in new_block.successors():
            for phi in succ.phis():
                phi.replace_incoming_block(self, new_block)
        self.append(BranchInst(new_block))
        return new_block

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name or '<unnamed>'} ({len(self.instructions)} insts)>"
