"""Exact evaluation semantics for the instruction set, plus constant folding.

This module is the single source of truth for what each opcode *means*
on concrete values: the execution engine interprets instructions with
these helpers, and the optimizer folds constants with them, so the two
can never disagree.

Conventions for the raw evaluators:

* integers are Python ints already wrapped into their type's range;
* pointers are Python ints (addresses in the flat memory model);
* floats are Python floats, re-rounded through single precision after
  every operation on ``float``-typed values;
* division/remainder follow C semantics (truncation toward zero, the
  remainder takes the dividend's sign); division by zero raises
  :class:`ArithmeticFault`.
"""

from __future__ import annotations

import math
import struct as _struct
from typing import Optional

from . import types
from .instructions import Opcode
from .types import Type
from .values import (
    Constant, ConstantBool, ConstantFP, ConstantInt, ConstantPointerNull,
    UndefValue, Value,
)


class ArithmeticFault(Exception):
    """Raised for division or remainder by zero."""


def _round_fp(ty: Type, value: float) -> float:
    if ty.is_floating and ty.bits == 32:  # type: ignore[attr-defined]
        return _struct.unpack("<f", _struct.pack("<f", value))[0]
    return value


def _to_unsigned(ty: types.IntegerType, value: int) -> int:
    return value & ((1 << ty.bits) - 1)


def eval_binary(opcode: Opcode, ty: Type, lhs, rhs):
    """Evaluate a binary opcode on concrete operand values of type ``ty``.

    For comparisons the result is a Python bool; otherwise a value of
    ``ty``'s representation.
    """
    if opcode == Opcode.ADD:
        if ty.is_floating:
            return _round_fp(ty, lhs + rhs)
        return ty.wrap(lhs + rhs)  # type: ignore[attr-defined]
    if opcode == Opcode.SUB:
        if ty.is_floating:
            return _round_fp(ty, lhs - rhs)
        return ty.wrap(lhs - rhs)  # type: ignore[attr-defined]
    if opcode == Opcode.MUL:
        if ty.is_floating:
            return _round_fp(ty, lhs * rhs)
        return ty.wrap(lhs * rhs)  # type: ignore[attr-defined]
    if opcode == Opcode.DIV:
        if ty.is_floating:
            if rhs == 0.0:
                if lhs == 0.0:
                    return _round_fp(ty, math.nan)
                return _round_fp(ty, math.copysign(math.inf, lhs) * math.copysign(1.0, rhs))
            return _round_fp(ty, lhs / rhs)
        if rhs == 0:
            raise ArithmeticFault("integer division by zero")
        quotient = abs(lhs) // abs(rhs)
        if (lhs < 0) != (rhs < 0):
            quotient = -quotient
        return ty.wrap(quotient)  # type: ignore[attr-defined]
    if opcode == Opcode.REM:
        if ty.is_floating:
            if rhs == 0.0:
                return _round_fp(ty, math.nan)
            return _round_fp(ty, math.fmod(lhs, rhs))
        if rhs == 0:
            raise ArithmeticFault("integer remainder by zero")
        remainder = abs(lhs) % abs(rhs)
        if lhs < 0:
            remainder = -remainder
        return ty.wrap(remainder)  # type: ignore[attr-defined]
    if opcode in (Opcode.AND, Opcode.OR, Opcode.XOR):
        if ty.is_bool:
            a, b = int(lhs), int(rhs)
            if opcode == Opcode.AND:
                return bool(a & b)
            if opcode == Opcode.OR:
                return bool(a | b)
            return bool(a ^ b)
        bits_lhs = _to_unsigned(ty, lhs)  # type: ignore[arg-type]
        bits_rhs = _to_unsigned(ty, rhs)  # type: ignore[arg-type]
        if opcode == Opcode.AND:
            result = bits_lhs & bits_rhs
        elif opcode == Opcode.OR:
            result = bits_lhs | bits_rhs
        else:
            result = bits_lhs ^ bits_rhs
        return ty.wrap(result)  # type: ignore[attr-defined]
    if opcode == Opcode.SETEQ:
        return lhs == rhs
    if opcode == Opcode.SETNE:
        return lhs != rhs
    # Ordered comparisons: ints arrive signed-corrected, pointers as
    # non-negative addresses, so plain Python comparison is right.
    if opcode == Opcode.SETLT:
        return lhs < rhs
    if opcode == Opcode.SETGT:
        return lhs > rhs
    if opcode == Opcode.SETLE:
        return lhs <= rhs
    if opcode == Opcode.SETGE:
        return lhs >= rhs
    raise ValueError(f"not a binary opcode: {opcode}")


def eval_shift(opcode: Opcode, ty: types.IntegerType, value: int, amount: int) -> int:
    """Evaluate ``shl``/``shr``.  Over-wide shifts saturate deterministically."""
    if opcode == Opcode.SHL:
        if amount >= ty.bits:
            return 0
        return ty.wrap(value << amount)
    if opcode == Opcode.SHR:
        if ty.signed:
            if amount >= ty.bits:
                return -1 if value < 0 else 0
            return ty.wrap(value >> amount)  # Python >> is arithmetic
        if amount >= ty.bits:
            return 0
        return ty.wrap(_to_unsigned(ty, value) >> amount)
    raise ValueError(f"not a shift opcode: {opcode}")


def eval_cast(src_ty: Type, dst_ty: Type, value):
    """Evaluate ``cast`` between first-class types.

    Integer widening extends according to the *source* signedness (the
    LLVM 1.x rule); narrowing truncates bits and reinterprets by the
    destination signedness.
    """
    if src_ty is dst_ty:
        return value
    # Normalise the source to (python int | float | bool)
    if dst_ty.is_bool:
        return value != 0 if not src_ty.is_floating else value != 0.0
    if dst_ty.is_integer:
        if src_ty.is_floating:
            if math.isnan(value) or math.isinf(value):
                return 0
            return dst_ty.wrap(int(value))  # type: ignore[attr-defined]
        if src_ty.is_bool:
            return dst_ty.wrap(int(value))  # type: ignore[attr-defined]
        # int or pointer source: reinterpret the bit pattern.
        return dst_ty.wrap(int(value))  # type: ignore[attr-defined]
    if dst_ty.is_floating:
        if src_ty.is_bool:
            return _round_fp(dst_ty, float(int(value)))
        if src_ty.is_integer or src_ty.is_floating:
            return _round_fp(dst_ty, float(value))
        raise TypeError(f"cannot cast {src_ty} to {dst_ty}")
    if dst_ty.is_pointer:
        if src_ty.is_pointer:
            return value
        if src_ty.is_integer or src_ty.is_bool:
            return int(value) & ((1 << 64) - 1)
        raise TypeError(f"cannot cast {src_ty} to {dst_ty}")
    raise TypeError(f"cannot cast {src_ty} to {dst_ty}")


# ---------------------------------------------------------------------------
# Constant folding over Constant objects
# ---------------------------------------------------------------------------

def _constant_scalar(constant: Constant):
    if isinstance(constant, ConstantInt):
        return constant.value
    if isinstance(constant, ConstantBool):
        return constant.value
    if isinstance(constant, ConstantFP):
        return constant.value
    if isinstance(constant, ConstantPointerNull):
        return 0
    return None


def make_constant(ty: Type, value) -> Constant:
    """Wrap a raw evaluated value back into a Constant of type ``ty``."""
    if ty.is_bool:
        return ConstantBool(bool(value))
    if ty.is_integer:
        return ConstantInt(ty, int(value))  # type: ignore[arg-type]
    if ty.is_floating:
        return ConstantFP(ty, float(value))  # type: ignore[arg-type]
    if ty.is_pointer and value == 0:
        return ConstantPointerNull(ty)  # type: ignore[arg-type]
    raise TypeError(f"cannot materialise constant of type {ty} from {value!r}")


def fold_binary(opcode: Opcode, lhs: Constant, rhs: Constant) -> Optional[Constant]:
    """Fold a binary operation over constants; None if not foldable."""
    if isinstance(lhs, UndefValue) or isinstance(rhs, UndefValue):
        return None
    a = _constant_scalar(lhs)
    b = _constant_scalar(rhs)
    if a is None or b is None:
        return None
    ty = lhs.type
    try:
        result = eval_binary(opcode, ty, a, b)
    except ArithmeticFault:
        return None
    from .instructions import COMPARISON_OPCODES

    if opcode in COMPARISON_OPCODES:
        return ConstantBool(bool(result))
    return make_constant(ty, result)


def fold_shift(opcode: Opcode, value: Constant, amount: Constant) -> Optional[Constant]:
    if not isinstance(value, ConstantInt) or not isinstance(amount, ConstantInt):
        return None
    result = eval_shift(opcode, value.type, value.value, amount.value)  # type: ignore[arg-type]
    return ConstantInt(value.type, result)  # type: ignore[arg-type]


def fold_cast(value: Constant, dest_type: Type) -> Optional[Constant]:
    if value.type is dest_type:
        return value
    if isinstance(value, UndefValue):
        return UndefValue(dest_type)
    scalar = _constant_scalar(value)
    if scalar is None:
        return None
    if value.type.is_pointer and not isinstance(value, ConstantPointerNull):
        return None
    result = eval_cast(value.type, dest_type, scalar)
    if dest_type.is_pointer and result != 0:
        return None  # non-null pointer constants are symbolic (globals)
    return make_constant(dest_type, result)
