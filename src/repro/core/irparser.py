"""Plain-text representation reader (paper section 2.5).

Parses the textual form produced by :mod:`repro.core.printer` back into
in-memory IR with no information loss.  Being able to convert between
the representations makes debugging transformations simpler and lets
test cases be written as text.

The parser is a hand-written lexer + recursive descent parser.  Forward
references are handled with placeholders: branch targets and phi
operands may name blocks/values defined later in the function, and
calls may name functions defined later in the module.
"""

from __future__ import annotations

import re
from typing import Optional

from . import types
from .basicblock import BasicBlock
from .instructions import (
    AllocaInst, BinaryOperator, BranchInst, CallInst, CastInst, FreeInst,
    GetElementPtrInst, InvokeInst, LoadInst, MallocInst, Opcode, PhiNode,
    ReturnInst, ShiftInst, StoreInst, SwitchInst, UnwindInst, VAArgInst,
)
from .module import Function, GlobalVariable, Linkage, Module
from .values import (
    Constant, ConstantAggregateZero, ConstantArray, ConstantBool,
    ConstantExpr, ConstantFP, ConstantInt, ConstantPointerNull,
    ConstantString, ConstantStruct, UndefValue, Value,
)


class ParseError(Exception):
    """Raised on malformed IR text, with a line number."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_PUNCT = {"(", ")", "{", "}", "[", "]", ",", "=", "*", ":"}


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind  # 'word', 'local' (%foo), 'int', 'float', 'string', 'bang' (!loc), punct, 'dotdotdot', 'eof'
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            continue
        if char == ";":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("...", index):
            tokens.append(Token("dotdotdot", "...", line))
            index += 3
            continue
        if char == "!":
            # Metadata suffix such as ``!loc 42``; the token text is the
            # metadata kind word following the '!'.
            index += 1
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            if start == index:
                raise ParseError("empty !-metadata name", line)
            tokens.append(Token("bang", source[start:index], line))
            continue
        if char in _PUNCT:
            tokens.append(Token(char, char, line))
            index += 1
            continue
        if char == "%":
            index += 1
            if index < length and source[index] == '"':
                index += 1
                name_chars = []
                while index < length and source[index] != '"':
                    if source[index] == "\\" and index + 1 < length:
                        index += 1
                    name_chars.append(source[index])
                    index += 1
                index += 1  # closing quote
                tokens.append(Token("local", "".join(name_chars), line))
            else:
                start = index
                while index < length and (source[index].isalnum() or source[index] in "._"):
                    index += 1
                if start == index:
                    raise ParseError("empty %-name", line)
                tokens.append(Token("local", source[start:index], line))
            continue
        if char == "c" and index + 1 < length and source[index + 1] == '"':
            index += 2
            data = bytearray()
            while index < length and source[index] != '"':
                if source[index] == "\\":
                    hex_digits = source[index + 1:index + 3]
                    data.append(int(hex_digits, 16))
                    index += 3
                else:
                    data.append(ord(source[index]))
                    index += 1
            index += 1
            tokens.append(Token("string", data.decode("latin-1"), line))
            continue
        if char.isdigit() or (char == "-" and index + 1 < length
                              and (source[index + 1].isdigit() or source[index + 1] == "i")):
            start = index
            if char == "-":
                index += 1
            if source.startswith("inf", index):
                index += 3
                tokens.append(Token("float", source[start:index], line))
                continue
            while index < length and source[index].isdigit():
                index += 1
            is_float = False
            if index < length and source[index] == ".":
                is_float = True
                index += 1
                while index < length and source[index].isdigit():
                    index += 1
            if index < length and source[index] in "eE":
                is_float = True
                index += 1
                if index < length and source[index] in "+-":
                    index += 1
                while index < length and source[index].isdigit():
                    index += 1
            kind = "float" if is_float else "int"
            tokens.append(Token(kind, source[start:index], line))
            continue
        if char == '"':
            # A bare quoted word: block labels with awkward characters
            # print as ``"entry block":``.
            index += 1
            name_chars = []
            while index < length and source[index] != '"':
                if source[index] == "\\" and index + 1 < length:
                    index += 1
                name_chars.append(source[index])
                index += 1
            index += 1
            tokens.append(Token("word", "".join(name_chars), line))
            continue
        if char.isalpha() or char == "_":
            start = index
            # Dots are allowed inside bare words (block labels like
            # ``while.cond:``); opcodes and keywords never contain them.
            while index < length and (source[index].isalnum() or source[index] in "._"):
                index += 1
            tokens.append(Token("word", source[start:index], line))
            continue
        raise ParseError(f"unexpected character {char!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class _ForwardValue(Value):
    """Placeholder for a local value referenced before its definition."""

    __slots__ = ("ref_name",)

    def __init__(self, ty: types.Type, ref_name: str):
        super().__init__(ty, "")
        self.ref_name = ref_name


class Parser:
    def __init__(self, source: str, module_name: str = "parsed"):
        self.tokens = tokenize(source)
        self.position = 0
        self.module = Module(module_name)
        # Module-level symbols created by forward reference, not yet defined.
        self._forward_functions: dict[str, Function] = {}
        self._forward_globals: dict[str, GlobalVariable] = {}

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.position + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise ParseError(f"expected {wanted!r}, found {token.text!r}", token.line)
        return self.next()

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.peek().line)

    # -- types ----------------------------------------------------------------

    def parse_type(self) -> types.Type:
        token = self.peek()
        if token.kind == "word" and token.text in types.PRIMITIVES:
            self.next()
            base: types.Type = types.PRIMITIVES[token.text]
        elif token.kind == "local":
            self.next()
            base = self._named_type(token.text)
        elif token.kind == "{":
            base = self._parse_struct_body()
        elif token.kind == "[":
            self.next()
            count = int(self.expect("int").text)
            self.expect("word", "x")
            element = self.parse_type()
            self.expect("]")
            base = types.array(element, count)
        else:
            raise self.error(f"expected a type, found {token.text!r}")
        # Suffixes: '*' for pointers, '(...)' for function types.
        while True:
            if self.accept("*"):
                base = types.pointer(base)
            elif self.peek().kind == "(" and self._looks_like_function_type():
                base = self._parse_function_suffix(base)
            else:
                break
        return base

    def _looks_like_function_type(self) -> bool:
        """Disambiguate a function-type suffix from call-argument syntax.

        A '(' directly after a type is only a function type in type
        position; callers only invoke parse_type where that holds, so
        always treat it as a suffix.
        """
        return True

    def _parse_function_suffix(self, return_type: types.Type) -> types.Type:
        self.expect("(")
        params: list[types.Type] = []
        is_vararg = False
        if not self.accept(")"):
            while True:
                if self.accept("dotdotdot"):
                    is_vararg = True
                    break
                params.append(self.parse_type())
                if not self.accept(","):
                    break
            self.expect(")")
        return types.function(return_type, params, is_vararg)

    def _parse_struct_body(self) -> types.Type:
        self.expect("{")
        fields: list[types.Type] = []
        if not self.accept("}"):
            while True:
                fields.append(self.parse_type())
                if not self.accept(","):
                    break
            self.expect("}")
        return types.struct(fields)

    def _named_type(self, name: str) -> types.StructType:
        existing = self.module.named_types.get(name)
        if existing is not None:
            return existing
        created = types.named_struct(name)  # opaque until '= type' seen
        self.module.add_named_type(created)
        return created

    # -- module items ------------------------------------------------------------

    def parse_module(self) -> Module:
        while self.peek().kind != "eof":
            token = self.peek()
            if token.kind == "word" and token.text == "declare":
                self._parse_declare()
            elif token.kind == "local" and self.peek(1).kind == "=":
                self._parse_named_item()
            elif token.kind == "local":
                # A function definition whose return type is a named
                # struct (e.g. ``%Node* %push(...)``).
                self._parse_function_definition(linkage=Linkage.EXTERNAL)
            elif token.kind == "word":
                self._parse_function_definition(linkage=Linkage.EXTERNAL)
            else:
                raise self.error(f"unexpected token {token.text!r} at module level")
        self._finish_module()
        return self.module

    def _finish_module(self) -> None:
        for name, function in self._forward_functions.items():
            # Still undefined at end of module: keep it as a declaration.
            if name not in self.module.functions:
                self.module.add_function(function)
        for name, global_var in self._forward_globals.items():
            if name not in self.module.globals:
                self.module.add_global(global_var)

    def _parse_named_item(self) -> None:
        """``%name = type/global/constant ...`` at module level."""
        name = self.expect("local").text
        self.expect("=")
        linkage = Linkage.EXTERNAL
        token = self.peek()
        if token.kind == "word" and token.text in (Linkage.INTERNAL, Linkage.APPENDING):
            linkage = token.text
            self.next()
            token = self.peek()
        if token.kind == "word" and token.text == "type":
            self.next()
            self._parse_type_definition(name)
            return
        is_external = False
        if token.kind == "word" and token.text == "external":
            is_external = True
            self.next()
            token = self.peek()
        if token.kind == "word" and token.text in ("global", "constant"):
            is_constant = token.text == "constant"
            self.next()
            if is_external:
                value_type = self.parse_type()
                self._define_global(name, value_type, None, linkage, is_constant)
            else:
                initializer = self.parse_typed_constant()
                self._define_global(name, initializer.type, initializer, linkage, is_constant)
            return
        # Otherwise this is a function definition header written as
        # ``%name = ...`` — not produced by our printer.
        raise self.error(f"unexpected module item after %{name}")

    def _parse_type_definition(self, name: str) -> None:
        if self.accept("word", "opaque"):
            self._named_type(name)
            return
        struct_ty = self._named_type(name)
        literal = self._parse_struct_body()
        struct_ty.set_body(literal.fields)  # type: ignore[attr-defined]

    def _define_global(self, name: str, value_type: types.Type,
                       initializer: Optional[Constant], linkage: str,
                       is_constant: bool) -> None:
        forward = self._forward_globals.pop(name, None)
        if forward is not None:
            if forward.value_type is not value_type:
                raise self.error(
                    f"global %{name} type mismatch with earlier use"
                )
            forward.linkage = linkage
            forward.is_constant = is_constant
            forward.set_initializer(initializer)
            self.module.add_global(forward)
            return
        self.module.new_global(value_type, name, initializer, linkage, is_constant)

    def _parse_declare(self) -> None:
        self.expect("word", "declare")
        linkage = Linkage.EXTERNAL
        if self.peek().kind == "word" and self.peek().text == Linkage.INTERNAL:
            linkage = self.next().text
        return_type = self.parse_type()
        name = self.expect("local").text
        fn_type, arg_names = self._parse_param_list(return_type, want_names=True)
        function = self._get_or_create_function(name, fn_type, linkage)
        for arg, arg_name in zip(function.args, arg_names):
            if arg_name:
                arg.name = arg_name

    def _parse_function_definition(self, linkage: str) -> None:
        token = self.peek()
        if token.text == Linkage.INTERNAL:
            linkage = token.text
            self.next()
        return_type = self.parse_type()
        name = self.expect("local").text
        fn_type, arg_names = self._parse_param_list(return_type, want_names=True)
        function = self._get_or_create_function(name, fn_type, linkage)
        function.linkage = linkage
        for arg, arg_name in zip(function.args, arg_names):
            if arg_name:
                arg.name = arg_name
        self.expect("{")
        _FunctionBodyParser(self, function).parse()
        self.expect("}")

    def _parse_param_list(self, return_type: types.Type,
                          want_names: bool) -> tuple[types.FunctionType, list[str]]:
        self.expect("(")
        params: list[types.Type] = []
        names: list[str] = []
        is_vararg = False
        if not self.accept(")"):
            while True:
                if self.accept("dotdotdot"):
                    is_vararg = True
                    break
                params.append(self.parse_type())
                if self.peek().kind == "local":
                    names.append(self.next().text)
                else:
                    names.append("")
                if not self.accept(","):
                    break
            self.expect(")")
        return types.function(return_type, params, is_vararg), names

    def _get_or_create_function(self, name: str, fn_type: types.FunctionType,
                                linkage: str = Linkage.EXTERNAL) -> Function:
        existing = self.module.functions.get(name) or self._forward_functions.get(name)
        if existing is not None:
            if existing.function_type is not fn_type:
                raise self.error(f"function %{name} signature mismatch")
            if name in self._forward_functions:
                del self._forward_functions[name]
                self.module.add_function(existing)
            return existing
        function = Function(fn_type, name, linkage)
        self.module.add_function(function)
        return function

    # -- symbol resolution used by operand parsing -------------------------------

    def resolve_global(self, name: str, expected_type: types.Type) -> Value:
        """Resolve ``%name`` at module scope, creating a forward symbol."""
        symbol = self.module.get_symbol(name)
        if symbol is None:
            symbol = self._forward_functions.get(name) or self._forward_globals.get(name)
        if symbol is not None:
            if symbol.type is not expected_type:
                raise self.error(
                    f"%{name} has type {symbol.type}, expected {expected_type}"
                )
            return symbol
        if expected_type.is_pointer and expected_type.pointee.is_function:
            function = Function(expected_type.pointee, name)  # type: ignore[arg-type]
            self._forward_functions[name] = function
            return function
        if expected_type.is_pointer:
            global_var = GlobalVariable(expected_type.pointee, name)
            self._forward_globals[name] = global_var
            return global_var
        raise self.error(f"unknown symbol %{name}")

    # -- constants ---------------------------------------------------------------

    def parse_typed_constant(self) -> Constant:
        ty = self.parse_type()
        return self.parse_constant_value(ty)

    def parse_constant_value(self, ty: types.Type) -> Constant:
        token = self.peek()
        if token.kind == "int":
            self.next()
            if ty.is_floating:
                return ConstantFP(ty, float(token.text))  # type: ignore[arg-type]
            return ConstantInt(ty, int(token.text))  # type: ignore[arg-type]
        if token.kind == "float":
            self.next()
            return ConstantFP(ty, float(token.text))  # type: ignore[arg-type]
        if token.kind == "word":
            if token.text in ("true", "false"):
                self.next()
                return ConstantBool(token.text == "true")
            if token.text == "null":
                self.next()
                return ConstantPointerNull(ty)  # type: ignore[arg-type]
            if token.text == "undef":
                self.next()
                return UndefValue(ty)
            if token.text == "zeroinitializer":
                self.next()
                return ConstantAggregateZero(ty)
            if token.text in ("nan", "inf"):
                self.next()
                return ConstantFP(ty, float(token.text))  # type: ignore[arg-type]
            if token.text == "cast":
                self.next()
                self.expect("(")
                source = self.parse_typed_constant()
                self.expect("word", "to")
                dest = self.parse_type()
                self.expect(")")
                if dest is not ty:
                    raise self.error("constant cast type mismatch")
                return ConstantExpr("cast", dest, (source,))
            if token.text == "getelementptr":
                self.next()
                self.expect("(")
                operands = [self.parse_typed_constant()]
                while self.accept(","):
                    operands.append(self.parse_typed_constant())
                self.expect(")")
                return ConstantExpr("getelementptr", ty, operands)
        if token.kind == "string":
            self.next()
            return ConstantString(token.text.encode("latin-1"))
        if token.kind == "[":
            self.next()
            elements: list[Constant] = []
            if not self.accept("]"):
                while True:
                    elements.append(self.parse_typed_constant())
                    if not self.accept(","):
                        break
                self.expect("]")
            return ConstantArray(ty, elements)  # type: ignore[arg-type]
        if token.kind == "{":
            self.next()
            fields: list[Constant] = []
            if not self.accept("}"):
                while True:
                    fields.append(self.parse_typed_constant())
                    if not self.accept(","):
                        break
                self.expect("}")
            return ConstantStruct(ty, fields)  # type: ignore[arg-type]
        if token.kind == "local":
            self.next()
            return self.resolve_global(token.text, ty)  # type: ignore[return-value]
        raise self.error(f"expected a constant, found {token.text!r}")


class _FunctionBodyParser:
    """Parses the blocks of one function, resolving local references."""

    def __init__(self, parser: Parser, function: Function):
        self.parser = parser
        self.function = function
        self.locals: dict[str, Value] = {arg.name: arg for arg in function.args}
        self.blocks: dict[str, BasicBlock] = {}
        self.forwards: list[_ForwardValue] = []

    # -- entry point ---------------------------------------------------------

    def parse(self) -> None:
        parser = self.parser
        current: Optional[BasicBlock] = None
        while True:
            token = parser.peek()
            if token.kind == "}":
                break
            if (token.kind in ("word", "local", "int")
                    and parser.peek(1).kind == ":"):
                current = self._define_block(token.text)
                parser.next()
                parser.next()
                continue
            if current is None:
                current = self._define_block("entry")
            self._parse_instruction(current)
        self._resolve_forwards()

    def _define_block(self, name: str) -> BasicBlock:
        block = self.blocks.get(name)
        if block is None:
            block = BasicBlock(name)
            self.blocks[name] = block
        elif block.parent is not None:
            raise self.parser.error(f"duplicate block label {name!r}")
        block.parent = self.function
        self.function.blocks.append(block)
        return block

    def _block_ref(self, name: str) -> BasicBlock:
        block = self.blocks.get(name)
        if block is None:
            block = BasicBlock(name)
            self.blocks[name] = block
        return block

    def _resolve_forwards(self) -> None:
        for forward in self.forwards:
            defined = self.locals.get(forward.ref_name)
            if defined is None:
                # Not a local after all: try module scope (e.g. a call to
                # a function defined later in the file).
                defined = self.parser.resolve_global(forward.ref_name, forward.type)
            if defined.type is not forward.type:
                raise self.parser.error(
                    f"%{forward.ref_name} has type {defined.type}, "
                    f"used as {forward.type}"
                )
            forward.replace_all_uses_with(defined)
        for name, block in self.blocks.items():
            if block.parent is None:
                raise self.parser.error(f"branch to undefined label {name!r}")

    # -- operands -------------------------------------------------------------

    def _value_ref(self, name: str, expected_type: types.Type) -> Value:
        local = self.locals.get(name)
        if local is not None:
            if local.type is not expected_type:
                raise self.parser.error(
                    f"%{name} has type {local.type}, expected {expected_type}"
                )
            return local
        symbol = self.parser.module.get_symbol(name)
        if (symbol is not None or name in self.parser._forward_functions
                or name in self.parser._forward_globals):
            return self.parser.resolve_global(name, expected_type)
        # Otherwise assume a local defined later in this function; if it
        # never appears, _resolve_forwards falls back to module scope.
        forward = _ForwardValue(expected_type, name)
        self.forwards.append(forward)
        return forward

    def _parse_value(self, expected_type: types.Type) -> Value:
        parser = self.parser
        token = parser.peek()
        if token.kind == "local":
            parser.next()
            return self._value_ref(token.text, expected_type)
        return parser.parse_constant_value(expected_type)

    def _parse_typed_value(self) -> Value:
        ty = self.parser.parse_type()
        return self._parse_value(ty)

    def _parse_label(self) -> BasicBlock:
        self.parser.expect("word", "label")
        name = self.parser.expect("local").text
        return self._block_ref(name)

    # -- instructions -------------------------------------------------------------

    def _define_local(self, name: str, value: Value) -> None:
        if name in self.locals:
            raise self.parser.error(f"redefinition of %{name}")
        value.name = name
        self.locals[name] = value

    def _parse_instruction(self, block: BasicBlock) -> None:
        parser = self.parser
        result_name: Optional[str] = None
        if parser.peek().kind == "local" and parser.peek(1).kind == "=":
            result_name = parser.next().text
            parser.next()
        opcode_token = parser.expect("word")
        opcode_text = opcode_token.text
        inst = self._dispatch(opcode_text, block)
        if parser.accept("bang", "loc"):
            inst.loc = int(parser.expect("int").text)
        block.append(inst)
        if result_name is not None:
            if inst.type.is_void:
                raise parser.error(f"{opcode_text} produces no value")
            self._define_local(result_name, inst)

    def _dispatch(self, opcode_text: str, block: BasicBlock):
        parser = self.parser
        binary_ops = {
            "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
            "div": Opcode.DIV, "rem": Opcode.REM, "and": Opcode.AND,
            "or": Opcode.OR, "xor": Opcode.XOR, "seteq": Opcode.SETEQ,
            "setne": Opcode.SETNE, "setlt": Opcode.SETLT,
            "setgt": Opcode.SETGT, "setle": Opcode.SETLE,
            "setge": Opcode.SETGE,
        }
        if opcode_text in binary_ops:
            ty = parser.parse_type()
            lhs = self._parse_value(ty)
            parser.expect(",")
            rhs = self._parse_value(ty)
            return BinaryOperator(binary_ops[opcode_text], lhs, rhs)
        if opcode_text in ("shl", "shr"):
            ty = parser.parse_type()
            value = self._parse_value(ty)
            parser.expect(",")
            parser.expect("word", "ubyte")
            amount = self._parse_value(types.UBYTE)
            opcode = Opcode.SHL if opcode_text == "shl" else Opcode.SHR
            return ShiftInst(opcode, value, amount)
        if opcode_text == "ret":
            if parser.accept("word", "void"):
                return ReturnInst(None)
            return ReturnInst(self._parse_typed_value())
        if opcode_text == "br":
            if parser.peek().text == "label":
                return BranchInst(self._parse_label())
            parser.expect("word", "bool")
            cond = self._parse_value(types.BOOL)
            parser.expect(",")
            true_dest = self._parse_label()
            parser.expect(",")
            false_dest = self._parse_label()
            return BranchInst(true_dest, cond, false_dest)
        if opcode_text == "switch":
            value = self._parse_typed_value()
            parser.expect(",")
            default = self._parse_label()
            parser.expect("[")
            cases = []
            while not parser.accept("]"):
                case_ty = parser.parse_type()
                case_value = parser.parse_constant_value(case_ty)
                parser.expect(",")
                dest = self._parse_label()
                cases.append((case_value, dest))
            return SwitchInst(value, default, cases)
        if opcode_text in ("call", "invoke"):
            return self._parse_call(opcode_text)
        if opcode_text == "unwind":
            return UnwindInst()
        if opcode_text in ("malloc", "alloca"):
            allocated = parser.parse_type()
            size = None
            if parser.accept(","):
                parser.expect("word", "uint")
                size = self._parse_value(types.UINT)
            cls = MallocInst if opcode_text == "malloc" else AllocaInst
            return cls(allocated, size)
        if opcode_text == "free":
            return FreeInst(self._parse_typed_value())
        if opcode_text == "load":
            return LoadInst(self._parse_typed_value())
        if opcode_text == "store":
            value = self._parse_typed_value()
            parser.expect(",")
            ptr = self._parse_typed_value()
            return StoreInst(value, ptr)
        if opcode_text == "getelementptr":
            ptr = self._parse_typed_value()
            indices = []
            while parser.accept(","):
                indices.append(self._parse_typed_value())
            return GetElementPtrInst(ptr, indices)
        if opcode_text == "phi":
            ty = parser.parse_type()
            phi = PhiNode(ty)
            while True:
                parser.expect("[")
                value = self._parse_value(ty)
                parser.expect(",")
                pred_name = parser.expect("local").text
                parser.expect("]")
                phi.add_incoming(value, self._block_ref(pred_name))
                if not parser.accept(","):
                    break
            return phi
        if opcode_text == "cast":
            value = self._parse_typed_value()
            parser.expect("word", "to")
            dest = parser.parse_type()
            return CastInst(value, dest)
        if opcode_text == "vaarg":
            valist = self._parse_typed_value()
            parser.expect(",")
            result_type = parser.parse_type()
            return VAArgInst(valist, result_type)
        raise parser.error(f"unknown opcode {opcode_text!r}")

    def _parse_call(self, opcode_text: str):
        """``call <ty> <callee>(<args>)`` where <ty> is either the return
        type (direct, non-vararg calls) or the full function-pointer type."""
        parser = self.parser
        annotated = parser.parse_type()
        callee_name = parser.expect("local").text
        parser.expect("(")
        args: list[Value] = []
        while not parser.accept(")"):
            args.append(self._parse_typed_value())
            if parser.peek().kind != ")":
                parser.expect(",")
        if annotated.is_pointer and annotated.pointee.is_function:
            callee_type = annotated
        else:
            fn_type = types.function(annotated, [a.type for a in args])
            callee_type = types.pointer(fn_type)
        callee = self._value_ref(callee_name, callee_type)
        if opcode_text == "call":
            return CallInst(callee, args)
        parser.expect("word", "to")
        normal = self._parse_label()
        parser.expect("word", "unwind")
        parser.expect("word", "to")
        unwind = self._parse_label()
        return InvokeInst(callee, args, normal, unwind)


def parse_module(source: str, name: Optional[str] = None) -> Module:
    """Parse textual IR into a module.

    The module name is taken from the ``; ModuleID = '...'`` header
    comment when present, unless an explicit ``name`` is given.
    """
    if name is None:
        match = re.search(r";\s*ModuleID\s*=\s*'([^']*)'", source)
        name = match.group(1) if match else "parsed"
    return Parser(source, name).parse_module()


def parse_function(source: str, name: str = "parsed") -> Function:
    """Parse a single textual function definition (convenience for tests)."""
    module = parse_module(source, name)
    defined = [f for f in module.functions.values() if not f.is_declaration]
    if len(defined) != 1:
        raise ValueError(f"expected exactly one function, found {len(defined)}")
    return defined[0]
