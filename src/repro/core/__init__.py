"""The core IR: types, values, instructions, modules, and the three
equivalent representations (in-memory, textual, binary)."""

from . import types
from .basicblock import BasicBlock
from .builder import IRBuilder
from .datalayout import DataLayout, DEFAULT as DEFAULT_DATALAYOUT
from .instructions import (
    AllocaInst, AllocationInst, BinaryOperator, BranchInst, CallInst,
    CastInst, FreeInst, GetElementPtrInst, Instruction, InvokeInst,
    LoadInst, MallocInst, Opcode, PhiNode, ReturnInst, ShiftInst,
    StoreInst, SwitchInst, UnwindInst, VAArgInst,
)
from .irparser import ParseError, parse_function, parse_module
from .module import Function, GlobalVariable, Linkage, Module
from .printer import print_function, print_instruction, print_module
from .values import (
    Argument, Constant, ConstantAggregateZero, ConstantArray, ConstantBool,
    ConstantExpr, ConstantFP, ConstantInt, ConstantPointerNull,
    ConstantString, ConstantStruct, UndefValue, Use, User, Value, null_value,
)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "types", "BasicBlock", "IRBuilder", "DataLayout", "DEFAULT_DATALAYOUT",
    "AllocaInst", "AllocationInst", "BinaryOperator", "BranchInst",
    "CallInst", "CastInst", "FreeInst", "GetElementPtrInst", "Instruction",
    "InvokeInst", "LoadInst", "MallocInst", "Opcode", "PhiNode",
    "ReturnInst", "ShiftInst", "StoreInst", "SwitchInst", "UnwindInst",
    "VAArgInst", "ParseError", "parse_function", "parse_module",
    "Function", "GlobalVariable", "Linkage", "Module",
    "print_function", "print_instruction", "print_module",
    "Argument", "Constant", "ConstantAggregateZero", "ConstantArray",
    "ConstantBool", "ConstantExpr", "ConstantFP", "ConstantInt",
    "ConstantPointerNull", "ConstantString", "ConstantStruct", "UndefValue",
    "Use", "User", "Value", "null_value",
    "VerificationError", "verify_function", "verify_module",
]
