"""Whole-program checkers: interprocedural clients of the summary layer.

Each checker here is constructed with a :class:`ProgramSummaries` view
and the scope (translation-unit index) of the module it inspects, then
follows the same ``check_module(module, reporter)`` protocol as the
intraprocedural catalogue.  The division of labour mirrors the paper's
compile-time/link-time split: per-function facts come from summaries
computed (and cached) per TU; these checkers only *apply* them at call
sites, so the link-time sweep stays cheap.

Claim discipline, which is what keeps the suite zero-false-positive:

* **error**-level reports rest only on *must* facts (provably null on
  every path, freed on every path, dereferenced on every path);
* *may* facts (may escape, may free) are used exclusively to *suppress*
  claims, never to make them;
* anything unresolved (true externals, indirect calls) defaults to the
  claim-free direction of each lattice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.cfg import reachable_blocks
from ..core.instructions import (
    BinaryOperator, CallInst, CastInst, FreeInst, GetElementPtrInst,
    Instruction, InvokeInst, LoadInst, MallocInst, Opcode, PhiNode,
    ReturnInst, StoreInst, VAArgInst,
)
from ..core.module import Function, Module
from ..core.values import Argument, Constant, ConstantInt, Value
from .checkers import (
    NULL_MAYBE, NULL_NONNULL, NULL_NULL, NULL_TOP, _dereferenced_pointer,
    _Nullness,
)
from .dataflow import (
    DenseAnalysis, FORWARD, SparseAnalysis, solve_dense, solve_sparse,
)
from .diagnostics import Reporter
from .interproc import (
    KNOWN_SAFE_EXTERNALS, ProgramSummaries, TAINT_CLEAN, TAINT_TAINTED,
    TAINT_TOP, direct_callee, range_proves_in_bounds, strip_pointer,
    value_range,
)


class IPAChecker:
    """Base protocol: summary-aware, runs on the SSA view of one TU."""

    wants_ssa = True

    def __init__(self, program: ProgramSummaries, scope: int):
        self.program = program
        self.scope = scope

    def check_module(self, module: Module, reporter: Reporter) -> None:
        for function in module.defined_functions():
            self.check_function(function, reporter)

    def check_function(self, function: Function,
                       reporter: Reporter) -> None:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# ipa-null-deref
# ---------------------------------------------------------------------------

class _SummaryNullness(_Nullness):
    """The local nullness lattice, with call returns resolved through
    whole-program summaries instead of pessimistically going to maybe."""

    def __init__(self, program: ProgramSummaries, scope: int):
        self.program = program
        self.scope = scope

    def transfer(self, inst: Instruction, get):
        if isinstance(inst, (CallInst, InvokeInst)) and inst.type.is_pointer:
            element = self.program.call_return_null(self.scope, inst, get)
            if element is not None:
                return element
            return NULL_MAYBE
        return super().transfer(inst, get)


class IPANullDereferenceChecker(IPAChecker):
    """Null flowing through a call boundary into a dereference.

    Reports exactly the findings the intraprocedural ``null-deref``
    checker cannot see: the same sparse solve is run twice, once with
    calls opaque and once with summaries, and only derefs that become
    provably-null *because of* summary information are reported.  Also
    flags passing a provably-null argument to a callee whose summary
    proves it dereferences that parameter on every path.
    """

    name = "ipa-null-deref"
    description = ("dereference of a null pointer that crosses a call "
                   "boundary (whole-program)")

    def check_function(self, function: Function,
                       reporter: Reporter) -> None:
        local = solve_sparse(_Nullness(), function)
        aware_analysis = _SummaryNullness(self.program, self.scope)
        aware = solve_sparse(aware_analysis, function)
        fallback = _Nullness()

        def element_of(result, value: Value):
            element = result.get(value)
            if element is None:
                element = fallback.initial(value)
            return element

        for block in reachable_blocks(function):
            for inst in block.instructions:
                pointer = _dereferenced_pointer(inst)
                if pointer is not None:
                    if element_of(aware, pointer) == NULL_NULL and \
                            element_of(local, pointer) != NULL_NULL:
                        what = inst.opcode.value
                        reporter.error(
                            self.name,
                            f"{what} through a pointer that whole-program "
                            "analysis proves null (a callee returns null "
                            "here)",
                            instruction=inst,
                            fixit="check the returned pointer against null "
                            "before using it",
                        )
                if isinstance(inst, (CallInst, InvokeInst)):
                    self._check_null_arguments(inst, aware, element_of,
                                               reporter)

    def _check_null_arguments(self, inst, aware, element_of,
                              reporter: Reporter) -> None:
        target = direct_callee(inst.callee)
        if target is None:
            return
        resolved = self.program.resolved_for(self.scope, target.name)
        if resolved is None or not resolved.must_deref:
            return
        for j, arg in enumerate(inst.args):
            if not arg.type.is_pointer:
                continue
            if j in resolved.must_deref and \
                    element_of(aware, arg) == NULL_NULL:
                reporter.error(
                    self.name,
                    f"passing null as argument {j + 1} of "
                    f"'{target.name}', which dereferences it on every "
                    "path",
                    instruction=inst,
                    fixit="pass a valid pointer or add a null check to "
                    f"'{target.name}'",
                )


# ---------------------------------------------------------------------------
# ipa-memleak
# ---------------------------------------------------------------------------

class IPAMemoryLeakChecker(IPAChecker):
    """Heap allocations that are neither freed nor escape their function.

    An allocation is *owned* when it comes from ``malloc`` or from a
    callee whose summary proves every return hands back a fresh,
    uncaptured allocation.  May-facts only ever suppress: any path on
    which the pointer might be freed (directly or via a callee's
    ``may_free_params``) or might escape (stored, returned, phi-merged,
    captured by a callee or an unknown external, or heap-reachable per
    DSA) withdraws the claim.  ``main`` is exempt ("still reachable at
    exit"), as is any function that may terminate the process.
    """

    name = "ipa-memleak"
    description = ("a heap allocation is never freed and never escapes "
                   "(whole-program)")

    def check_module(self, module: Module, reporter: Reporter) -> None:
        from ..analysis.dsa import DataStructureAnalysis

        self._dsa = DataStructureAnalysis(module)
        for function in module.defined_functions():
            self.check_function(function, reporter)
        self._dsa = None

    def check_function(self, function: Function,
                       reporter: Reporter) -> None:
        if function.name == "main":
            return
        reachable = list(reachable_blocks(function))
        for block in reachable:
            for inst in block.instructions:
                if isinstance(inst, (CallInst, InvokeInst)):
                    target = direct_callee(inst.callee)
                    if target is not None and target.name in ("exit",
                                                              "abort"):
                        return  # allocations stay reachable at exit
        for block in reachable:
            for inst in block.instructions:
                origin = self._owned_allocation(inst)
                if origin is not None:
                    self._check_allocation(function, inst, origin, reporter)

    def _owned_allocation(self, inst: Instruction) -> Optional[str]:
        if isinstance(inst, MallocInst):
            return "allocated here"
        if isinstance(inst, (CallInst, InvokeInst)) and inst.type.is_pointer:
            target = direct_callee(inst.callee)
            if target is not None:
                resolved = self.program.resolved_for(self.scope, target.name)
                if resolved is not None and resolved.returns_fresh:
                    return f"returned (freshly allocated) by '{target.name}'"
        return None

    def _check_allocation(self, function: Function, root: Instruction,
                          origin: str, reporter: Reporter) -> None:
        if isinstance(root, MallocInst) and self._dsa is not None \
                and self._dsa.heap_escapes(root):
            # DSA only sees this TU; for summary-proven fresh returns the
            # callee is external here and its node is 'unknown' by
            # construction, so the filter applies to local mallocs only.
            return
        derived: Set[int] = {id(root)}
        worklist: List[Value] = [root]
        freed = False
        escaped = False
        while worklist and not escaped:
            current = worklist.pop()
            for use in current.uses:
                user = use.user
                if isinstance(user, (CastInst, GetElementPtrInst)):
                    if id(user) not in derived:
                        derived.add(id(user))
                        worklist.append(user)
                elif isinstance(user, FreeInst):
                    freed = True
                elif isinstance(user, StoreInst):
                    if user.value is current:
                        escaped = True
                elif isinstance(user, LoadInst):
                    pass  # reading through the pointer keeps ownership
                elif isinstance(user, ReturnInst):
                    escaped = True
                elif isinstance(user, (CallInst, InvokeInst)):
                    freed_here, escaped_here = self._call_capture(
                        user, current)
                    freed = freed or freed_here
                    escaped = escaped or escaped_here
                elif isinstance(user, BinaryOperator) \
                        and user.is_comparison:
                    pass  # comparing the pointer is not a capture
                else:
                    escaped = True  # phi, select, anything unmodelled
        if freed or escaped:
            return
        reporter.warning(
            self.name,
            f"allocation {origin} is never freed and never escapes "
            f"'{function.name}'",
            instruction=root,
            fixit="free the allocation before returning, or return it to "
            "the caller",
        )

    def _call_capture(self, inst, value: Value):
        """(may_free, may_escape) of passing ``value`` to this call."""
        if inst.callee is value:
            return (False, True)  # calling through it: out of scope here
        target = direct_callee(inst.callee)
        if target is None:
            return (True, True)  # indirect call: assume anything
        resolved = self.program.resolved_for(self.scope, target.name)
        if resolved is None:
            safe = target.name in KNOWN_SAFE_EXTERNALS
            return (not safe, not safe)
        freed = escaped = False
        for j, arg in enumerate(inst.args):
            if arg is value:
                if j in resolved.may_free_params:
                    freed = True
                if j in resolved.may_escape_params:
                    escaped = True
        return (freed, escaped)


# ---------------------------------------------------------------------------
# ipa-use-after-free (and double-free)
# ---------------------------------------------------------------------------

class IPAUseAfterFreeChecker(IPAChecker):
    """Accesses to an allocation after every path has freed it.

    A forward must-analysis tracks the set of SSA pointer bases that are
    freed on *every* path to the current point (``None`` is the
    optimistic universe, the meet intersects); a base is re-armed when
    control reaches its defining instruction again (a loop that
    re-allocates).  Frees through callees extend the kill set only via
    *must*-free summaries, so every report is a proof.
    """

    name = "ipa-use-after-free"
    description = ("use (or second free) of a pointer after every path "
                   "has freed it (whole-program)")

    def check_function(self, function: Function,
                       reporter: Reporter) -> None:
        checker = self

        def step(state: frozenset, inst: Instruction) -> frozenset:
            if inst in state:
                state = state - {inst}  # redefinition re-arms the base
            freed = checker._freed_bases(inst)
            if freed:
                state = state | freed
            return state

        class _MustFreed(DenseAnalysis):
            direction = FORWARD

            def boundary(self, fn):
                return frozenset()

            def top(self, fn):
                return None

            def meet(self, a, b):
                if a is None:
                    return b
                if b is None:
                    return a
                return a & b

            def transfer(self, block, state):
                if state is None:
                    return None
                for inst in block.instructions:
                    state = step(state, inst)
                return state

        result = solve_dense(_MustFreed(), function)
        for block in reachable_blocks(function):
            state = result.block_in.get(block)
            if state is None:
                continue
            for inst in block.instructions:
                self._check_instruction(inst, state, reporter)
                state = step(state, inst)

    def _freed_bases(self, inst: Instruction) -> frozenset:
        freed = set()
        if isinstance(inst, FreeInst):
            base = strip_pointer(inst.pointer)
            if isinstance(base, Instruction):
                freed.add(base)
        elif isinstance(inst, (CallInst, InvokeInst)):
            target = direct_callee(inst.callee)
            if target is not None:
                resolved = self.program.resolved_for(self.scope, target.name)
                if resolved is not None and resolved.must_free:
                    for j, arg in enumerate(inst.args):
                        if j in resolved.must_free and arg.type.is_pointer:
                            base = strip_pointer(arg)
                            if isinstance(base, Instruction):
                                freed.add(base)
        return frozenset(freed)

    def _check_instruction(self, inst: Instruction, state: frozenset,
                           reporter: Reporter) -> None:
        if not state:
            return
        if isinstance(inst, FreeInst):
            if strip_pointer(inst.pointer) in state:
                reporter.error(
                    self.name,
                    "free of a pointer that is already freed on every "
                    "path (double free)",
                    instruction=inst,
                    fixit="remove the duplicate free",
                )
            return
        if isinstance(inst, (LoadInst, StoreInst, VAArgInst)):
            pointer = _dereferenced_pointer(inst)
            if pointer is not None and strip_pointer(pointer) in state:
                what = inst.opcode.value
                reporter.error(
                    self.name,
                    f"{what} through a pointer that is freed on every "
                    "path to this point (use after free)",
                    instruction=inst,
                    fixit="move the access before the free, or clear the "
                    "pointer after freeing",
                )
            return
        if isinstance(inst, (CallInst, InvokeInst)):
            target = direct_callee(inst.callee)
            if target is None:
                return
            resolved = self.program.resolved_for(self.scope, target.name)
            if resolved is None:
                return
            for j, arg in enumerate(inst.args):
                if not arg.type.is_pointer or \
                        strip_pointer(arg) not in state:
                    continue
                if j in resolved.must_free:
                    reporter.error(
                        self.name,
                        f"passing a freed pointer to '{target.name}', "
                        f"which frees argument {j + 1} again (double "
                        "free)",
                        instruction=inst,
                        fixit="remove the duplicate free",
                    )
                elif j in resolved.must_deref:
                    reporter.error(
                        self.name,
                        f"passing a freed pointer to '{target.name}', "
                        f"which dereferences argument {j + 1} (use after "
                        "free)",
                        instruction=inst,
                        fixit="move the call before the free",
                    )


# ---------------------------------------------------------------------------
# ipa-taint
# ---------------------------------------------------------------------------

class _Taint(SparseAnalysis):
    """Sparse taint: does a value derive from unchecked external input?

    Sources are returns of true externals outside the known-safe list
    (resolved transitively through summaries) and ``main``'s own
    arguments.  Bounding operators (``rem``/``and``/``div``/``shr``) and
    comparisons sanitize; loads are conservatively clean (claims-safe).
    """

    def __init__(self, program: ProgramSummaries, scope: int,
                 tainted_args: Set[int]):
        self.program = program
        self.scope = scope
        self.tainted_args = tainted_args

    def top(self):
        return TAINT_TOP

    def meet(self, a, b):
        if a == TAINT_TOP:
            return b
        if b == TAINT_TOP or a == b:
            return a
        return TAINT_TAINTED

    def initial(self, value: Value):
        if isinstance(value, Argument) and id(value) in self.tainted_args:
            return TAINT_TAINTED
        return TAINT_CLEAN

    def transfer(self, inst: Instruction, get):
        if isinstance(inst, BinaryOperator):
            if inst.is_comparison or inst.opcode in (
                    Opcode.REM, Opcode.AND, Opcode.DIV, Opcode.SHR):
                return TAINT_CLEAN
            element = TAINT_TOP
            for operand in inst.operands:
                other = get(operand)
                element = self.meet(element,
                                    TAINT_CLEAN if other is None else other)
            return TAINT_CLEAN if element == TAINT_TOP else element
        if isinstance(inst, CastInst):
            element = get(inst.value)
            return TAINT_CLEAN if element in (None, TAINT_TOP) else element
        if isinstance(inst, PhiNode):
            element = TAINT_TOP
            for value, _ in inst.incoming:
                other = get(value)
                element = self.meet(element,
                                    TAINT_CLEAN if other is None else other)
            return TAINT_CLEAN if element == TAINT_TOP else element
        if isinstance(inst, (CallInst, InvokeInst)):
            def arg_element(arg: Value):
                element = get(arg)
                return TAINT_CLEAN if element in (None, TAINT_TOP) \
                    else element
            element = self.program.call_return_taint(self.scope, inst,
                                                     arg_element)
            if element is None:  # indirect call: claims-safe
                return TAINT_CLEAN
            return element
        return TAINT_CLEAN


class IPATaintChecker(IPAChecker):
    """Unchecked external input used directly as an array index."""

    name = "ipa-taint"
    description = ("an array index derives from external input and is "
                   "never bounds-checked (whole-program)")

    def check_function(self, function: Function,
                       reporter: Reporter) -> None:
        tainted_args: Set[int] = set()
        if function.name == "main":
            tainted_args = {id(arg) for arg in function.args}
        analysis = _Taint(self.program, self.scope, tainted_args)
        result = solve_sparse(analysis, function)

        compared: Set[int] = set()
        for inst in function.instructions():
            if isinstance(inst, BinaryOperator) and inst.is_comparison:
                for operand in inst.operands:
                    compared.add(id(operand))
                    stripped = operand
                    while isinstance(stripped, CastInst):
                        stripped = stripped.value
                    compared.add(id(stripped))

        def element_of(value: Value):
            element = result.get(value)
            if element is None:
                element = analysis.initial(value)
            return element

        for block in reachable_blocks(function):
            for inst in block.instructions:
                if not isinstance(inst, GetElementPtrInst):
                    continue
                current = inst.pointer.type.pointee
                for position, index in enumerate(inst.indices):
                    if position == 0:
                        continue
                    if current.is_struct:
                        current = current.fields[index.value]
                        continue
                    bound = current.count
                    current = current.element
                    if isinstance(index, ConstantInt):
                        continue
                    if element_of(index) != TAINT_TAINTED:
                        continue
                    if id(index) in compared:
                        continue
                    stripped = index
                    while isinstance(stripped, CastInst):
                        stripped = stripped.value
                    if id(stripped) in compared:
                        continue
                    reporter.warning(
                        self.name,
                        f"array index derives from unchecked external "
                        f"input (array bound is {bound})",
                        instruction=inst,
                        fixit="bounds-check or mask the index before "
                        "using it",
                    )


# ---------------------------------------------------------------------------
# gep-bounds, upgraded: range summaries prove variable indices in bounds
# ---------------------------------------------------------------------------

class IPABoundsAdvisor(IPAChecker):
    """Advisory notes for variable array indices, minus the proven-safe.

    The static ``gep-bounds`` checker only flags indices that are
    *provably out* of bounds.  In whole-program mode this advisor
    covers the remaining variable ones: any index whose range —
    computed by the abstract interpreter with callee return-range
    summaries feeding call results, with the syntactic ``value_range``
    folder as a second opinion — provably fits ``[0, N)`` is silent,
    and only the rest get an advisory note (severity below the
    ``-Werror`` gate).
    """

    name = "gep-bounds"
    description = ("variable array index that cannot be proven in bounds "
                   "(whole-program advisory)")

    def check_function(self, function: Function,
                       reporter: Reporter) -> None:
        from ..analysis.absint import analyze_function

        def call_range(inst):
            return self.program.call_return_range(self.scope, inst)

        facts = None
        for block in reachable_blocks(function):
            for inst in block.instructions:
                if not isinstance(inst, GetElementPtrInst):
                    continue
                current = inst.pointer.type.pointee
                for position, index in enumerate(inst.indices):
                    if position == 0:
                        continue
                    if current.is_struct:
                        current = current.fields[index.value]
                        continue
                    bound = current.count
                    current = current.element
                    if isinstance(index, ConstantInt):
                        continue  # the static checker owns constants
                    rng = value_range(index, call_range)
                    if range_proves_in_bounds(rng, bound):
                        continue
                    if facts is None:
                        facts = analyze_function(function,
                                                 call_range=call_range)
                    interval = facts.interval_of(index)
                    if interval is not None and \
                            0 <= interval.lo and interval.hi < bound:
                        continue
                    reporter.note(
                        self.name,
                        f"variable index into an array of {bound} "
                        "elements is not provably in bounds",
                        instruction=inst,
                        fixit=f"clamp the index into 0..{bound - 1}",
                    )


#: Whole-program checker registry, in report order.
ALL_IPA_CHECKERS = (
    IPANullDereferenceChecker,
    IPAMemoryLeakChecker,
    IPAUseAfterFreeChecker,
    IPATaintChecker,
    IPABoundsAdvisor,
)

IPA_CHECKERS = {checker.name: checker for checker in ALL_IPA_CHECKERS}
