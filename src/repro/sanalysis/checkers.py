"""The checker catalogue: IR-level static checks built on the dataflow engine.

Each checker is a small class with a ``name``, a ``description``, and a
``check_module(module, reporter)`` entry point that appends structured
:class:`~repro.sanalysis.diagnostics.Diagnostic` values and never
mutates the IR.  The catalogue (see docs/ANALYSIS.md):

========================  =====================================================
``uninit``                load-before-store on promotable allocas
``null-deref``            dereference of a pointer proven null (sparse lattice)
``gep-bounds``            statically out-of-bounds constant array indexing
``dead-store``            stores to locals that are never read back
``unreachable``           basic blocks no path from the entry can reach
``call-signature``        calls through mismatched function-pointer casts,
                          plus cross-module symbol signature conflicts
``type-safety``           pointer casts whose target object DSA collapsed
``div-by-zero-range``     division by a value proven zero by range analysis
``shift-out-of-range``    shift amounts proven >= the operand's bit width
``definite-overflow``     signed arithmetic that wraps on every execution
========================  =====================================================

The first four are dataflow clients; ``gep-bounds`` is the *static*
complement of the SAFECode runtime-check pass (safecode.py): any index
it rejects here, safecode would have turned into a guaranteed trap at
run time.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..analysis.cfg import reachable_blocks, unreachable_blocks
from ..core import types
from ..core.instructions import (
    AllocaInst, AllocationInst, BinaryOperator, CallInst, CastInst, FreeInst,
    GetElementPtrInst, Instruction, InvokeInst, LoadInst, Opcode, PhiNode,
    ShiftInst, StoreInst, VAArgInst,
)
from ..core.module import Function, GlobalValue, Module
from ..core.values import (
    ConstantExpr, ConstantInt, ConstantPointerNull, UndefValue, Value,
)
from ..transforms.mem2reg import is_promotable
from .dataflow import (
    BACKWARD, DenseAnalysis, FORWARD, SparseAnalysis, solve_dense,
    solve_sparse,
)
from .diagnostics import Reporter, Severity


def _tracked_allocas(function: Function) -> list[AllocaInst]:
    """The allocas whose every access is visible: scalar slots whose
    address never escapes (exactly the ones mem2reg can promote)."""
    return [
        inst
        for block in function.blocks
        for inst in block.instructions
        if isinstance(inst, AllocaInst) and is_promotable(inst)
    ]


# ---------------------------------------------------------------------------
# uninit: use of uninitialized memory
# ---------------------------------------------------------------------------

class _InitState(DenseAnalysis):
    """Forward may/must initialization of tracked allocas.

    ``must`` mode: meet is intersection (initialized on *every* path);
    ``may`` mode: meet is union (initialized on *some* path).
    """

    direction = FORWARD

    def __init__(self, tracked: frozenset, must: bool):
        self.tracked = tracked
        self.must = must

    def boundary(self, function: Function):
        return frozenset()  # nothing is initialized on function entry

    def top(self, function: Function):
        return self.tracked if self.must else frozenset()

    def meet(self, a, b):
        return (a & b) if self.must else (a | b)

    def transfer(self, block, state):
        for inst in block.instructions:
            if isinstance(inst, StoreInst) and inst.pointer in self.tracked:
                state = state | {inst.pointer}
        return state


class UninitializedLoadChecker:
    """Load-before-store on stack slots mem2reg could have promoted.

    After mem2reg has run these slots no longer exist, so the checker is
    naturally silent on optimized IR; run it on front-end output to see
    source-level uninitialized reads.
    """

    name = "uninit"
    description = "use of a stack variable before it is initialized"

    def check_module(self, module: Module, reporter: Reporter) -> None:
        for function in module.defined_functions():
            self.check_function(function, reporter)

    def check_function(self, function: Function, reporter: Reporter) -> None:
        tracked = frozenset(_tracked_allocas(function))
        if not tracked:
            return
        must = solve_dense(_InitState(tracked, must=True), function)
        may = solve_dense(_InitState(tracked, must=False), function)
        for block in reachable_blocks(function):
            definite = set(must.block_in[block])
            possible = set(may.block_in[block])
            for inst in block.instructions:
                if isinstance(inst, LoadInst) and inst.pointer in tracked:
                    slot = inst.pointer
                    label = slot.name or "<unnamed>"
                    if slot not in possible:
                        reporter.error(
                            self.name,
                            f"variable '{label}' is read before any "
                            "initialization",
                            instruction=inst,
                            fixit=f"initialize '{label}' at its declaration",
                        )
                    elif slot not in definite:
                        reporter.warning(
                            self.name,
                            f"variable '{label}' may be read before "
                            "initialization (uninitialized on some paths)",
                            instruction=inst,
                        )
                elif isinstance(inst, StoreInst) and inst.pointer in tracked:
                    definite.add(inst.pointer)
                    possible.add(inst.pointer)


# ---------------------------------------------------------------------------
# null-deref: nullness lattice through phis and casts
# ---------------------------------------------------------------------------

#: Four-point nullness lattice.
NULL_TOP = "top"          #: no evidence yet (optimistic)
NULL_NULL = "null"        #: provably the null pointer
NULL_NONNULL = "nonnull"  #: provably a valid object address
NULL_MAYBE = "maybe"      #: could be either


class _Nullness(SparseAnalysis):
    def top(self):
        return NULL_TOP

    def meet(self, a, b):
        if a == NULL_TOP:
            return b
        if b == NULL_TOP or a == b:
            return a
        return NULL_MAYBE

    def initial(self, value: Value):
        if not value.type.is_pointer:
            return NULL_MAYBE
        if isinstance(value, ConstantPointerNull):
            return NULL_NULL
        if isinstance(value, GlobalValue):
            return NULL_NONNULL
        if isinstance(value, UndefValue):
            return NULL_MAYBE
        if isinstance(value, ConstantExpr):
            base = value.operands[0]
            if base.type.is_pointer:
                return self.initial(base)
            return NULL_MAYBE
        return NULL_MAYBE  # arguments, anything else

    def transfer(self, inst: Instruction, get: Callable[[Value], object]):
        if not inst.type.is_pointer:
            return NULL_MAYBE
        if isinstance(inst, AllocationInst):
            return NULL_NONNULL  # alloca/malloc: the runtime traps, never null
        if isinstance(inst, GetElementPtrInst):
            # Address arithmetic preserves the verdict: stepping from
            # null still yields a pointer no object can live at.
            return get(inst.pointer)
        if isinstance(inst, CastInst):
            if inst.value.type.is_pointer:
                return get(inst.value)
            return NULL_MAYBE
        if isinstance(inst, PhiNode):
            element = NULL_TOP
            for value, _ in inst.incoming:
                element = self.meet(element, get(value))
            return element
        return NULL_MAYBE  # loads, calls, vaarg: memory contents unknown


def _dereferenced_pointer(inst: Instruction) -> Optional[Value]:
    """The pointer operand ``inst`` actually accesses, if any."""
    if isinstance(inst, LoadInst):
        return inst.pointer
    if isinstance(inst, StoreInst):
        return inst.pointer
    if isinstance(inst, FreeInst):
        return inst.pointer
    if isinstance(inst, (CallInst, InvokeInst)):
        return inst.callee
    if isinstance(inst, VAArgInst):
        return inst.valist
    return None


class NullDereferenceChecker:
    """Dereference of a pointer the sparse nullness lattice proves null.

    Sparse propagation needs real SSA to see through local pointer
    variables, so the suite runs this checker on a stack-promoted view
    of the module (``wants_ssa``); front-end output keeps pointers in
    alloca slots where no def-use chain exists yet.
    """

    name = "null-deref"
    description = "load, store, call, or free through a null pointer"
    wants_ssa = True

    def check_module(self, module: Module, reporter: Reporter) -> None:
        for function in module.defined_functions():
            self.check_function(function, reporter)

    def check_function(self, function: Function, reporter: Reporter) -> None:
        result = solve_sparse(_Nullness(), function)
        analysis = _Nullness()
        for block in reachable_blocks(function):
            for inst in block.instructions:
                pointer = _dereferenced_pointer(inst)
                if pointer is None:
                    continue
                element = result.get(pointer)
                if element is None:
                    element = analysis.initial(pointer)
                if element == NULL_NULL:
                    what = inst.opcode.value
                    reporter.error(
                        self.name,
                        f"{what} through a pointer that is provably null",
                        instruction=inst,
                        fixit="guard the access with a null check",
                    )


# ---------------------------------------------------------------------------
# gep-bounds: statically out-of-bounds array indexing
# ---------------------------------------------------------------------------

class StaticBoundsChecker:
    """Array indices provably outside ``[0, N)`` for ``[N x T]`` steps.

    The static complement of safecode.py: where the SAFECode pass
    inserts a runtime guard, this checker proves at compile time that
    the guard would always fire.  Constant indices are checked
    directly; variable indices are checked against the interval the
    abstract interpreter computed for them, and flagged only when the
    *entire* interval misses the bound (so every execution traps).
    """

    name = "gep-bounds"
    description = "getelementptr index provably outside the array bound"
    wants_ssa = True

    def check_module(self, module: Module, reporter: Reporter) -> None:
        from ..analysis.absint import analyze_function

        for function in module.defined_functions():
            facts = None
            for block in reachable_blocks(function):
                for inst in block.instructions:
                    if not isinstance(inst, GetElementPtrInst):
                        continue
                    if facts is None and self._has_variable_index(inst):
                        facts = analyze_function(function)
                    self._check_gep(inst, facts, reporter)

    @staticmethod
    def _has_variable_index(gep: GetElementPtrInst) -> bool:
        return any(not isinstance(index, ConstantInt)
                   for index in gep.indices)

    def _check_gep(self, gep: GetElementPtrInst, facts,
                   reporter: Reporter) -> None:
        current = gep.pointer.type.pointee
        for position, index in enumerate(gep.indices):
            if position == 0:
                continue  # stepping over the pointer has no static bound
            if current.is_struct:
                current = current.fields[index.value]  # type: ignore[attr-defined]
                continue
            bound = current.count  # type: ignore[attr-defined]
            if isinstance(index, ConstantInt):
                if not (0 <= index.value < bound):
                    reporter.error(
                        self.name,
                        f"index {index.value} is out of bounds for "
                        f"{current} (valid range 0..{bound - 1})",
                        instruction=gep,
                        fixit=f"clamp the index into 0..{bound - 1}",
                    )
            elif facts is not None:
                interval = facts.interval_of(index)
                if interval is not None and \
                        (interval.hi < 0 or interval.lo >= bound):
                    reporter.error(
                        self.name,
                        f"index range [{interval.lo}, {interval.hi}] is "
                        f"entirely out of bounds for {current} "
                        f"(valid range 0..{bound - 1})",
                        instruction=gep,
                        fixit=f"clamp the index into 0..{bound - 1}",
                    )
            current = current.element  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# dead-store: stores to locals never read back
# ---------------------------------------------------------------------------

class _SlotLiveness(DenseAnalysis):
    """Backward may-liveness of tracked alloca slots."""

    direction = BACKWARD

    def __init__(self, tracked: frozenset):
        self.tracked = tracked

    def boundary(self, function: Function):
        return frozenset()  # locals are dead once the function returns

    def top(self, function: Function):
        return frozenset()

    def meet(self, a, b):
        return a | b

    def transfer(self, block, state):
        for inst in reversed(block.instructions):
            if isinstance(inst, LoadInst) and inst.pointer in self.tracked:
                state = state | {inst.pointer}
            elif isinstance(inst, StoreInst) and inst.pointer in self.tracked:
                state = state - {inst.pointer}
        return state


class DeadStoreChecker:
    """Stores into tracked stack slots whose value is never read."""

    name = "dead-store"
    description = "a stored value is overwritten or discarded unread"

    def check_module(self, module: Module, reporter: Reporter) -> None:
        for function in module.defined_functions():
            self.check_function(function, reporter)

    def check_function(self, function: Function, reporter: Reporter) -> None:
        tracked = frozenset(_tracked_allocas(function))
        if not tracked:
            return
        loaded_somewhere = {
            inst.pointer
            for block in function.blocks
            for inst in block.instructions
            if isinstance(inst, LoadInst) and inst.pointer in tracked
        }
        result = solve_dense(_SlotLiveness(tracked), function)
        for block in reachable_blocks(function):
            live = set(result.block_out[block])
            for inst in reversed(block.instructions):
                if isinstance(inst, LoadInst) and inst.pointer in tracked:
                    live.add(inst.pointer)
                elif isinstance(inst, StoreInst) and inst.pointer in tracked:
                    if inst.pointer not in live:
                        label = inst.pointer.name or "<unnamed>"
                        if inst.pointer in loaded_somewhere:
                            detail = "overwritten before it is read"
                        else:
                            detail = "never read"
                        reporter.warning(
                            self.name,
                            f"value stored to '{label}' is {detail}",
                            instruction=inst,
                        )
                    live.discard(inst.pointer)


# ---------------------------------------------------------------------------
# unreachable: blocks no path from the entry reaches
# ---------------------------------------------------------------------------

class UnreachableCodeChecker:
    name = "unreachable"
    description = "basic blocks that no execution path can reach"

    def check_module(self, module: Module, reporter: Reporter) -> None:
        for function in module.defined_functions():
            for block in unreachable_blocks(function):
                reporter.warning(
                    self.name,
                    f"block '{block.name or '<unnamed>'}' is unreachable "
                    f"({len(block.instructions)} instructions of dead code)",
                    function=function,
                    block=block,
                    line=next(
                        (i.loc for i in block.instructions if i.loc is not None),
                        None,
                    ),
                    fixit="delete the dead code or run simplifycfg",
                )


# ---------------------------------------------------------------------------
# call-signature: mismatches the type system was cast around
# ---------------------------------------------------------------------------

def _underlying_function(callee: Value) -> Optional[Value]:
    """Peel constant casts off a callee to find the function beneath."""
    while isinstance(callee, ConstantExpr) and callee.opcode == "cast":
        callee = callee.operands[0]
    if isinstance(callee, GlobalValue) and callee.type.is_pointer \
            and callee.type.pointee.is_function:
        return callee
    return None


class CallSignatureChecker:
    """Calls whose cast-constructed callee hides a signature mismatch.

    In-module call sites are type-checked at construction time; what
    slips through is a call *through a cast* of a function symbol — the
    idiom the linker produces when translation units disagreed about a
    prototype.  :meth:`check_modules` performs the same check *before*
    linking, across module boundaries.
    """

    name = "call-signature"
    description = "call signature disagrees with the callee's definition"

    def check_module(self, module: Module, reporter: Reporter) -> None:
        for function in module.defined_functions():
            for block in reachable_blocks(function):
                for inst in block.instructions:
                    if isinstance(inst, (CallInst, InvokeInst)):
                        self._check_site(inst, reporter)

    def _check_site(self, inst, reporter: Reporter) -> None:
        callee = inst.callee
        if not isinstance(callee, ConstantExpr):
            return
        target = _underlying_function(callee)
        if target is None:
            return
        declared = callee.type.pointee   # what the call site believes
        defined = target.type.pointee    # what the symbol actually is
        if declared is defined:
            return
        reporter.error(
            self.name,
            f"call to '{target.name}' through a cast: call site expects "
            f"{declared} but the symbol is {defined}",
            instruction=inst,
            fixit=f"fix the prototype of '{target.name}' to match its "
            "definition",
        )

    def check_modules(self, modules, reporter: Reporter) -> None:
        """Cross-module prototype check, run before the linker merges."""
        seen: dict[str, tuple[str, str]] = {}
        for module in modules:
            for name, symbol in list(module.functions.items()) + \
                    list(module.globals.items()):
                if symbol.is_internal:
                    continue
                signature = str(symbol.type.pointee)
                previous = seen.get(name)
                if previous is None:
                    seen[name] = (signature, module.name)
                elif previous[0] != signature:
                    reporter.error(
                        self.name,
                        f"symbol '{name}' declared as {previous[0]} in "
                        f"module '{previous[1]}' but as {signature} in "
                        f"module '{module.name}'",
                        fixit=f"reconcile the declarations of '{name}'",
                    )


# ---------------------------------------------------------------------------
# type-safety: casts that defeat the declared type structure
# ---------------------------------------------------------------------------

class TypeUnsafeCastChecker:
    """Pointer casts whose target object DSA had to collapse.

    Runs Data Structure Analysis and flags every pointer-to-pointer cast
    whose abstract object lost its field structure — the paper's notion
    of memory used in a non-type-safe way.  Advisory only (NOTE): the
    code may be working punning, but no optimization can trust its types.
    """

    name = "type-safety"
    description = "pointer cast to an incompatible object layout"

    def check_module(self, module: Module, reporter: Reporter) -> None:
        from ..analysis.dsa import DataStructureAnalysis

        analysis = DataStructureAnalysis(module)
        for function in module.defined_functions():
            for block in reachable_blocks(function):
                for inst in block.instructions:
                    if not isinstance(inst, CastInst):
                        continue
                    if not (inst.type.is_pointer
                            and inst.value.type.is_pointer):
                        continue
                    if inst.type.pointee is inst.value.type.pointee:
                        continue
                    cell = analysis.cells.get(id(inst))
                    if cell is None:
                        continue
                    if cell.resolved().node.collapsed:
                        reporter.note(
                            self.name,
                            f"cast from {inst.value.type} to {inst.type} "
                            "reinterprets an object whose field structure "
                            "DSA collapsed (not type-safe)",
                            instruction=inst,
                        )


# ---------------------------------------------------------------------------
# Range-driven checkers: clients of the abstract interpreter
# ---------------------------------------------------------------------------

def _range_facts_for(function: Function, wanted) -> Optional[object]:
    """Value facts for ``function`` iff it contains a ``wanted`` inst.

    Keeps the absint solve off the common path: a checker only pays for
    the analysis in functions that can possibly trigger it.
    """
    from ..analysis.absint import analyze_function

    has_candidate = any(
        wanted(inst)
        for block in reachable_blocks(function)
        for inst in block.instructions
    )
    return analyze_function(function) if has_candidate else None


class RangeDivByZeroChecker:
    """Integer division whose divisor the range analysis proves zero.

    A constant-zero divisor is the degenerate case; the value of the
    abstract domains is catching zeros that arrive through arithmetic
    (``x & 0``, ``x % 1``, a phi of zeros, a masked byte multiplied
    away) where no constant appears in the instruction itself.
    """

    name = "div-by-zero-range"
    description = "division or remainder by a value proven to be zero"
    wants_ssa = True

    def check_module(self, module: Module, reporter: Reporter) -> None:
        def wanted(inst):
            return isinstance(inst, BinaryOperator) and \
                inst.opcode in (Opcode.DIV, Opcode.REM) and \
                inst.type.is_integer

        for function in module.defined_functions():
            facts = _range_facts_for(function, wanted)
            if facts is None:
                continue
            for block in reachable_blocks(function):
                for inst in block.instructions:
                    if not wanted(inst):
                        continue
                    divisor = facts.abs_of(inst.rhs)
                    if divisor is not None and divisor.singleton() == 0:
                        what = inst.opcode.value
                        reporter.error(
                            self.name,
                            f"{what} by a value that is provably zero",
                            instruction=inst,
                            fixit="guard the division with a zero check",
                        )


class ShiftOutOfRangeChecker:
    """Shift amounts proven >= the shifted operand's bit width.

    The IR's shifts saturate rather than trap, so the program is
    well-defined — but a full-width shift always produces 0 (or the
    sign fill), which is almost never what the source intended.
    """

    name = "shift-out-of-range"
    description = "shift amount provably >= the operand's bit width"
    wants_ssa = True

    def check_module(self, module: Module, reporter: Reporter) -> None:
        def wanted(inst):
            return isinstance(inst, ShiftInst) and inst.type.is_integer

        for function in module.defined_functions():
            facts = _range_facts_for(function, wanted)
            if facts is None:
                continue
            for block in reachable_blocks(function):
                for inst in block.instructions:
                    if not wanted(inst):
                        continue
                    amount = facts.interval_of(inst.amount)
                    bits = inst.type.bits
                    if amount is not None and amount.lo >= bits:
                        what = inst.opcode.value
                        low = (f"amount {amount.lo}"
                               if amount.is_singleton else
                               f"amount is at least {amount.lo}")
                        reporter.warning(
                            self.name,
                            f"{what} of a {bits}-bit value by {low}: the "
                            f"result is always the saturated fill value",
                            instruction=inst,
                            fixit=f"mask the shift amount to 0..{bits - 1}",
                        )


class DefiniteOverflowChecker:
    """Signed add/sub/mul whose exact result never fits the type.

    Uses the *pre-wrap* mathematical range of the operation: when that
    entire range falls outside the type's representable values, every
    execution of the instruction wraps.  Restricted to signed types —
    unsigned wraparound is idiomatic (hashing, masking, counters).
    """

    name = "definite-overflow"
    description = "signed arithmetic that overflows on every execution"
    wants_ssa = True

    _OPCODES = (Opcode.ADD, Opcode.SUB, Opcode.MUL)

    def check_module(self, module: Module, reporter: Reporter) -> None:
        from ..analysis.absint import (
            exact_binary_range, shape_bounds, shape_of,
        )

        def wanted(inst):
            return isinstance(inst, BinaryOperator) and \
                inst.opcode in self._OPCODES and inst.type.is_integer and \
                inst.type.signed

        for function in module.defined_functions():
            facts = _range_facts_for(function, wanted)
            if facts is None:
                continue
            for block in reachable_blocks(function):
                for inst in block.instructions:
                    if not wanted(inst):
                        continue
                    lhs = facts.interval_of(inst.lhs)
                    rhs = facts.interval_of(inst.rhs)
                    if lhs is None or rhs is None:
                        continue
                    exact = exact_binary_range(inst.opcode, lhs, rhs)
                    if exact is None:
                        continue
                    lo, hi = shape_bounds(shape_of(inst.type))
                    if exact[1] < lo or exact[0] > hi:
                        what = inst.opcode.value
                        reporter.warning(
                            self.name,
                            f"{what} always overflows {inst.type}: the "
                            f"exact result is in [{exact[0]}, {exact[1]}] "
                            f"but the type holds [{lo}, {hi}]",
                            instruction=inst,
                            fixit="widen the operands before the "
                            "arithmetic or rework the expression",
                        )


#: Checker registry, in report order.
ALL_CHECKERS = (
    UninitializedLoadChecker,
    NullDereferenceChecker,
    StaticBoundsChecker,
    DeadStoreChecker,
    UnreachableCodeChecker,
    CallSignatureChecker,
    TypeUnsafeCastChecker,
    RangeDivByZeroChecker,
    ShiftOutOfRangeChecker,
    DefiniteOverflowChecker,
)

CHECKERS = {checker.name: checker for checker in ALL_CHECKERS}
