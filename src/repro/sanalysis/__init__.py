"""Static analysis: a sparse dataflow engine and the `lc-lint` checker suite.

The paper's claim is that a typed, SSA-based IR supports "lifelong
program analysis", not just optimization.  This package is the analysis
half of that claim: a reusable dataflow engine (:mod:`.dataflow`)
driving a catalogue of correctness checkers (:mod:`.checkers`) that emit
structured, source-located diagnostics (:mod:`.diagnostics`).

Entry points:

* :func:`run_checkers` — run some or all checkers over a module and get
  the diagnostics back.
* :class:`StaticCheckSuite` — the same suite packaged as a pass-manager
  pass (registered as ``lint`` in ``lc-opt``), so analysis can be
  scheduled inside any pipeline; it never mutates the IR.
* ``lc-lint`` (in :mod:`repro.tools`) — the command-line driver.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core.module import Module
from .checkers import ALL_CHECKERS, CHECKERS, CallSignatureChecker
from .dataflow import (
    BACKWARD, DenseAnalysis, DenseResult, FORWARD, SparseAnalysis,
    SparseResult, solve_dense, solve_sparse,
)
from .diagnostics import Diagnostic, Reporter, Severity, dedupe, stable_order


def run_checkers(module: Module, checks: Optional[Iterable[str]] = None,
                 reporter: Optional[Reporter] = None) -> list[Diagnostic]:
    """Run the named checkers (default: all) over ``module``.

    Returns the diagnostics sorted by function and source line.  Raises
    ``ValueError`` for an unknown checker name.
    """
    if reporter is None:
        reporter = Reporter()
    selected = []
    for name in checks if checks is not None else CHECKERS:
        factory = CHECKERS.get(name)
        if factory is None:
            known = ", ".join(sorted(CHECKERS))
            raise ValueError(f"unknown checker {name!r} (known: {known})")
        selected.append(factory)
    ssa_view: Optional[Module] = None
    for factory in selected:
        target = module
        if getattr(factory, "wants_ssa", False):
            if ssa_view is None:
                ssa_view = _promoted_view(module)
            target = ssa_view
        factory().check_module(target, reporter)
    return reporter.sorted()


def _promoted_view(module: Module) -> Module:
    """A stack-promoted (mem2reg) clone for checkers that need SSA
    def-use chains; the original module is never mutated."""
    from ..linker import link_modules
    from ..transforms.mem2reg import PromoteMem2Reg

    clone = link_modules([module], module.name)
    promote = PromoteMem2Reg()
    for function in list(clone.defined_functions()):
        promote.run_on_function(function)
    return clone


class WholeProgramResult:
    """Everything the whole-program lint sweep produced."""

    def __init__(self, diagnostics, program, tables, computed_scopes):
        #: Deduplicated diagnostics in (file, line, checker) order.
        self.diagnostics = diagnostics
        #: The composed :class:`~repro.sanalysis.interproc.ProgramSummaries`.
        self.program = program
        #: Per-unit summary tables, parallel to the input units (cached
        #: entries are passed through, fresh ones are newly computed).
        self.tables = tables
        #: Indices of units whose summaries were computed this run.
        self.computed_scopes = computed_scopes

    def statistics(self) -> dict:
        stats = dict(self.program.statistics())
        stats["ipa-summaries-computed"] = len(self.computed_scopes)
        stats["ipa-summaries-cached"] = (
            len(self.tables) - len(self.computed_scopes))
        for diag in self.diagnostics:
            stats[diag.checker] = stats.get(diag.checker, 0) + 1
        stats["errors"] = sum(1 for d in self.diagnostics if d.is_error)
        return stats


def run_whole_program(units, checks: Optional[Iterable[str]] = None,
                      reporter: Optional[Reporter] = None,
                      tables=None) -> WholeProgramResult:
    """Link-time lint: summarize, compose, and check across all units.

    ``units`` is a sequence of ``(filename, module)`` translation units.
    ``tables`` optionally supplies a parallel list of cached
    :class:`~repro.sanalysis.interproc.ModuleAnalysisSummaries` (None
    entries are computed fresh) — the driver's incremental path.
    Checking always sweeps every unit; only summarization is skipped on
    a cache hit, which is the paper's compile-time/link-time division.
    """
    from .interproc import ModuleAnalysisSummaries, ProgramSummaries
    from .ipa_checkers import ALL_IPA_CHECKERS, IPA_CHECKERS

    if reporter is None:
        reporter = Reporter()
    selected = []
    for name in checks if checks is not None else IPA_CHECKERS:
        factory = IPA_CHECKERS.get(name)
        if factory is None:
            known = ", ".join(sorted(IPA_CHECKERS))
            raise ValueError(f"unknown checker {name!r} (known: {known})")
        selected.append(factory)

    units = list(units)
    views = [(filename, _promoted_view(module))
             for filename, module in units]
    result_tables = []
    computed_scopes = []
    for scope, (filename, view) in enumerate(views):
        cached = tables[scope] if tables is not None else None
        if cached is not None:
            result_tables.append(cached)
        else:
            result_tables.append(ModuleAnalysisSummaries.compute(view))
            computed_scopes.append(scope)
    program = ProgramSummaries(
        [(filename, table)
         for (filename, _), table in zip(units, result_tables)])

    for scope, (filename, view) in enumerate(views):
        before = len(reporter.diagnostics)
        for factory in selected:
            factory(program, scope).check_module(view, reporter)
        for diag in reporter.diagnostics[before:]:
            if diag.file is not None:
                continue
            # Inside an already-linked module, functions carry the name
            # of the unit that defined them (stamped by the linker);
            # prefer it over the merged module's own name.
            origin = None
            if diag.instruction is not None \
                    and diag.instruction.function is not None:
                origin = diag.instruction.function.source_module
            diag.file = origin if origin and origin != view.name \
                else filename
    diagnostics = stable_order(dedupe(reporter.diagnostics))
    return WholeProgramResult(diagnostics, program, result_tables,
                              computed_scopes)


def check_cross_module(modules: Sequence[Module],
                       reporter: Optional[Reporter] = None) -> list[Diagnostic]:
    """Pre-link prototype consistency check across translation units."""
    if reporter is None:
        reporter = Reporter()
    CallSignatureChecker().check_modules(modules, reporter)
    return reporter.sorted()


class StaticCheckSuite:
    """The checker suite as a schedulable (read-only) module pass.

    ``run_on_module`` appends to :attr:`diagnostics` and always returns
    False — linting never changes the IR — so it can sit anywhere in a
    pipeline, including between transformation passes under
    ``--verify-each``.
    """

    name = "lint"

    def __init__(self, checks: Optional[Sequence[str]] = None):
        self.checks = list(checks) if checks is not None else None
        self.reporter = Reporter()

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return self.reporter.sorted()

    @property
    def errors(self) -> list[Diagnostic]:
        return self.reporter.errors

    def run_on_module(self, module: Module) -> bool:
        run_checkers(module, self.checks, self.reporter)
        return False

    def statistics(self) -> dict[str, int]:
        """Per-checker finding counts (the ``lc-opt -stats`` hook)."""
        stats: dict[str, int] = {}
        for diag in self.reporter.diagnostics:
            stats[diag.checker] = stats.get(diag.checker, 0) + 1
        stats["errors"] = len(self.reporter.errors)
        return stats


__all__ = [
    "ALL_CHECKERS", "BACKWARD", "CHECKERS", "DenseAnalysis", "DenseResult",
    "Diagnostic", "FORWARD", "Reporter", "Severity", "SparseAnalysis",
    "SparseResult", "StaticCheckSuite", "WholeProgramResult",
    "check_cross_module", "dedupe", "run_checkers", "run_whole_program",
    "solve_dense", "solve_sparse", "stable_order",
]
