"""A reusable dataflow engine over the SSA IR.

Two solvers share the meet-over-lattice, worklist-driven core that every
checker in this package builds on:

* :class:`DenseAnalysis` / :func:`solve_dense` — classic block-level
  dataflow.  States attach to basic-block boundaries, the direction is
  forward (states flow entry -> exits) or backward, and the meet
  combines states over CFG edges.  Initialization is *optimistic*
  (every block starts at the analysis' top element) so loops converge
  to the meet-over-all-paths solution, seeded in reverse postorder
  (forward) or postorder (backward) from :mod:`repro.analysis.cfg` so
  acyclic code converges in one sweep.

* :class:`SparseAnalysis` / :func:`solve_sparse` — SCCP-style sparse
  propagation directly over the def-use graph.  Each SSA value carries
  one lattice element; when a value's element changes, exactly its
  users are revisited.  This is the "compact def-use graph that
  simplifies many dataflow optimizations" the paper credits SSA with:
  no per-block state is ever materialized.

Termination requires what it classically requires: a finite-height
lattice and monotone transfer functions.  All checkers here use small
power-set or four-point lattices.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional

from ..analysis.cfg import postorder, reachable_blocks, reverse_postorder
from ..core.basicblock import BasicBlock
from ..core.instructions import Instruction
from ..core.module import Function
from ..core.values import Value

FORWARD = "forward"
BACKWARD = "backward"


class DenseAnalysis:
    """Subclass-and-override description of a block-level dataflow problem."""

    #: :data:`FORWARD` or :data:`BACKWARD`.
    direction = FORWARD

    def boundary(self, function: Function):
        """The state at the entry (forward) or at every exit (backward)."""
        raise NotImplementedError

    def top(self, function: Function):
        """The optimistic initial state for every other block."""
        raise NotImplementedError

    def meet(self, a, b):
        """Combine two states where CFG paths join."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, state):
        """Push a state through ``block`` (in program order for forward
        analyses, reverse program order for backward ones)."""
        raise NotImplementedError


class DenseResult:
    """Fixpoint states at both boundaries of every reachable block."""

    def __init__(self, block_in: Dict[BasicBlock, object],
                 block_out: Dict[BasicBlock, object], iterations: int):
        #: State at block entry (forward: before the first instruction).
        self.block_in = block_in
        #: State at block exit (forward: after the terminator).
        self.block_out = block_out
        #: Number of block transfers executed before the fixpoint.
        self.iterations = iterations


def solve_dense(analysis: DenseAnalysis, function: Function) -> DenseResult:
    """Run ``analysis`` to a fixpoint over ``function``'s reachable CFG."""
    forward = analysis.direction == FORWARD
    order = reverse_postorder(function) if forward else postorder(function)
    reachable = set(reachable_blocks(function))

    boundary = analysis.boundary(function)
    top = analysis.top(function)
    block_in: Dict[BasicBlock, object] = {b: top for b in order}
    block_out: Dict[BasicBlock, object] = {b: top for b in order}

    def inputs(block: BasicBlock) -> list[BasicBlock]:
        if forward:
            return [p for p in block.unique_predecessors() if p in reachable]
        return [s for s in block.successors() if s in reachable]

    def outputs(block: BasicBlock) -> list[BasicBlock]:
        if forward:
            return [s for s in block.successors() if s in reachable]
        return [p for p in block.unique_predecessors() if p in reachable]

    worklist = deque(order)
    queued = set(order)
    iterations = 0
    while worklist:
        block = worklist.popleft()
        queued.discard(block)
        iterations += 1

        sources = inputs(block)
        if not sources:
            state = boundary
        else:
            state = block_out[sources[0]] if forward else block_in[sources[0]]
            for source in sources[1:]:
                other = block_out[source] if forward else block_in[source]
                state = analysis.meet(state, other)

        result = analysis.transfer(block, state)
        if forward:
            block_in[block] = state
            changed = result != block_out[block]
            block_out[block] = result
        else:
            block_out[block] = state
            changed = result != block_in[block]
            block_in[block] = result
        if changed:
            for target in outputs(block):
                if target not in queued:
                    queued.add(target)
                    worklist.append(target)
    return DenseResult(block_in, block_out, iterations)


class SparseAnalysis:
    """Subclass-and-override description of a sparse SSA-value problem.

    Sparse analyses are forward by nature: information flows from a
    definition to its uses along def-use edges.
    """

    def top(self):
        """The optimistic element every instruction starts at."""
        raise NotImplementedError

    def initial(self, value: Value):
        """The element of a non-instruction value (argument, constant,
        global); called once per value and cached."""
        raise NotImplementedError

    def transfer(self, inst: Instruction, get: Callable[[Value], object]):
        """The element of ``inst`` given its operands' elements."""
        raise NotImplementedError

    def meet(self, a, b):
        raise NotImplementedError


class SparseResult:
    """The per-value fixpoint of a sparse analysis."""

    def __init__(self, values: Dict[Value, object], iterations: int):
        self.values = values
        self.iterations = iterations

    def __getitem__(self, value: Value):
        return self.values[value]

    def get(self, value: Value, default=None):
        return self.values.get(value, default)


def solve_sparse(analysis: SparseAnalysis, function: Function) -> SparseResult:
    """Propagate lattice elements along def-use edges to a fixpoint."""
    elements: Dict[Value, object] = {}
    top = analysis.top()

    instructions: list[Instruction] = []
    in_function: set[int] = set()
    for block in reverse_postorder(function):
        for inst in block.instructions:
            instructions.append(inst)
            in_function.add(id(inst))
            elements[inst] = top

    def get(value: Value):
        existing = elements.get(value)
        if existing is not None or value in elements:
            return existing
        element = analysis.initial(value)
        elements[value] = element
        return element

    worklist = deque(instructions)
    queued = {id(inst) for inst in instructions}
    iterations = 0
    while worklist:
        inst = worklist.popleft()
        queued.discard(id(inst))
        iterations += 1
        new = analysis.transfer(inst, get)
        if new != elements[inst]:
            elements[inst] = new
            for user in inst.users():
                if (isinstance(user, Instruction) and id(user) in in_function
                        and id(user) not in queued):
                    queued.add(id(user))
                    worklist.append(user)
    return SparseResult(elements, iterations)
