"""Interprocedural summary-based analysis (the link-time half of lc-lint).

The paper's headline claim is *whole-program* analysis at link time
(sections 3.3/3.4): per-function facts are computed once, attached to
the bytecode, and composed over the call graph instead of reanalysing
every body on every link.  This module is that layer for the static
checker suite:

* :class:`AnalysisSummary` — one function's *symbolic* abstract
  transformer: nullability/taint/range of the return value as a meet
  over atoms (constants, parameter pass-throughs, callee returns),
  parameter facts proven on **every** path (dereferenced, freed),
  may-facts per pointer parameter (escapes, may be freed), and
  side-effect bits.  Summaries mention callees only *by name*, so they
  are computable per translation unit, JSON-serializable next to the
  cached bytecode, and valid until the TU's source changes.

* :class:`ProgramSummaries` — the link-time composition: summaries from
  every TU are resolved bottom-up over the call-graph SCC condensation
  (callees before callers, cycles iterated to a fixpoint) into concrete
  :class:`ResolvedSummary` values the whole-program checkers consume.
  Fixpoints start at the lattice top for *meet*-style facts and at the
  empty set for *claim*-style facts, so recursion can never make the
  solver claim ``nonnull`` (or "dereferences its argument") without
  evidence on every path.

The split is what makes warm re-lints incremental: editing one TU
invalidates one summary table; composition — a few SCC sweeps over
small dictionaries — is cheap enough to rerun every time.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.callgraph import strongly_connected_components
from ..analysis.dsa import KNOWN_SAFE_EXTERNALS
from ..core import types
from ..core.instructions import (
    AllocationInst, BinaryOperator, CallInst, CastInst, FreeInst,
    GetElementPtrInst, Instruction, InvokeInst, LoadInst, MallocInst,
    Opcode, PhiNode, ReturnInst, StoreInst, VAArgInst,
)
from ..core.module import Function, GlobalValue, Module
from ..core.values import (
    Argument, Constant, ConstantExpr, ConstantInt, ConstantPointerNull,
    UndefValue, Value,
)
from .checkers import NULL_MAYBE, NULL_NONNULL, NULL_NULL, NULL_TOP
from .dataflow import DenseAnalysis, FORWARD, solve_dense

#: Taint lattice: ``top`` (no evidence, meet identity) / ``clean`` /
#: ``tainted`` (may derive from unchecked external input).
TAINT_TOP = "top"
TAINT_CLEAN = "clean"
TAINT_TAINTED = "tainted"

#: Range lattice top (never returns / no evidence); concrete elements
#: are ``(lo, hi)`` pairs where ``None`` means unbounded on that side.
RANGE_TOP = "top"
RANGE_UNBOUNDED = (None, None)

#: Externals that write through their pointer arguments but neither
#: capture nor free them (subset of the DSA safe list).
_STORING_EXTERNALS = frozenset({
    "memcpy", "memset", "strcpy", "llvm.va_start", "llvm.va_end",
})


# ---------------------------------------------------------------------------
# Local helpers shared by the summarizer and the whole-program checkers
# ---------------------------------------------------------------------------

def strip_pointer(value: Value) -> Value:
    """Peel pointer casts and GEPs down to the pointer's SSA base.

    Address arithmetic preserves the identity of the underlying object
    for the facts tracked here (a step from null still points at no
    object; freeing a derived pointer releases the base allocation's
    object), mirroring the intraprocedural nullness checker.
    """
    depth = 0
    while depth < 64:
        depth += 1
        if isinstance(value, CastInst) and value.type.is_pointer \
                and value.value.type.is_pointer:
            value = value.value
        elif isinstance(value, GetElementPtrInst):
            value = value.pointer
        elif isinstance(value, ConstantExpr) and value.opcode == "cast" \
                and value.operands[0].type.is_pointer:
            value = value.operands[0]
        else:
            return value
    return value


def direct_callee(callee: Value) -> Optional[Function]:
    """The function a call site provably targets, through constant casts."""
    if isinstance(callee, Function):
        return callee
    if isinstance(callee, ConstantExpr) and callee.opcode == "cast":
        inner = callee.operands[0]
        if isinstance(inner, Function):
            return inner
    return None


def _merge_range(a, b):
    """Hull of two range elements (``RANGE_TOP`` is the identity)."""
    if a == RANGE_TOP:
        return b
    if b == RANGE_TOP:
        return a
    lo = None if a[0] is None or b[0] is None else min(a[0], b[0])
    hi = None if a[1] is None or b[1] is None else max(a[1], b[1])
    return (lo, hi)


def _range_arith(opcode: Opcode, a, b):
    """Interval arithmetic for the few operators the range domain folds."""
    if a == RANGE_TOP or b == RANGE_TOP:
        return RANGE_TOP
    if opcode == Opcode.ADD:
        lo = None if a[0] is None or b[0] is None else a[0] + b[0]
        hi = None if a[1] is None or b[1] is None else a[1] + b[1]
        return (lo, hi)
    if opcode == Opcode.SUB:
        lo = None if a[0] is None or b[1] is None else a[0] - b[1]
        hi = None if a[1] is None or b[0] is None else a[1] - b[0]
        return (lo, hi)
    if opcode == Opcode.MUL:
        if None in a or None in b:
            return RANGE_UNBOUNDED
        products = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
        return (min(products), max(products))
    return RANGE_UNBOUNDED


def value_range(value: Value, call_range: Optional[Callable] = None,
                depth: int = 0):
    """Best-effort integer range of ``value``: ``(lo, hi)``, ``None``
    meaning unbounded on that side.

    ``call_range(call_inst)`` lets the whole-program checkers resolve
    direct calls through :class:`ProgramSummaries`; without it a call is
    unbounded.  Only transparently-bounding operators are folded
    (constants, ``and`` masks, ``rem`` by a constant, add/sub/mul of
    bounded operands, widening casts, phi hulls) — anything else is
    conservatively unbounded, which keeps every "provably in bounds"
    claim sound.
    """
    if depth > 16:
        return RANGE_UNBOUNDED
    if isinstance(value, ConstantInt):
        return (value.value, value.value)
    if isinstance(value, BinaryOperator):
        lhs, rhs = value.operands
        if value.opcode == Opcode.AND:
            for side in (lhs, rhs):
                if isinstance(side, ConstantInt) and side.value >= 0:
                    return (0, side.value)
        if value.opcode == Opcode.REM and isinstance(rhs, ConstantInt) \
                and rhs.value > 0:
            bound = rhs.value - 1
            ty = value.type
            if getattr(ty, "signed", True):
                lo, _ = value_range(lhs, call_range, depth + 1)
                if lo is not None and lo >= 0:
                    return (0, bound)
                return (-bound, bound)
            return (0, bound)
        if value.opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL):
            a = value_range(lhs, call_range, depth + 1)
            b = value_range(rhs, call_range, depth + 1)
            return _range_arith(value.opcode, a, b)
        return RANGE_UNBOUNDED
    if isinstance(value, CastInst):
        source, target = value.value.type, value.type
        if (isinstance(source, types.IntegerType)
                and isinstance(target, types.IntegerType)
                and target.bits >= source.bits
                and (target.signed == source.signed or not source.signed)):
            return value_range(value.value, call_range, depth + 1)
        return RANGE_UNBOUNDED
    if isinstance(value, PhiNode):
        merged = RANGE_TOP
        for incoming, _ in value.incoming:
            if incoming is value:
                continue
            merged = _merge_range(
                merged, value_range(incoming, call_range, depth + 1))
            if merged == RANGE_UNBOUNDED:
                return merged
        return RANGE_UNBOUNDED if merged == RANGE_TOP else merged
    if isinstance(value, (CallInst, InvokeInst)) and call_range is not None:
        resolved = call_range(value)
        if resolved is not None and resolved != RANGE_TOP:
            return resolved
        return RANGE_UNBOUNDED
    return RANGE_UNBOUNDED


def range_proves_in_bounds(rng, bound: int) -> bool:
    """Does the range prove an index lies within ``[0, bound)``?"""
    if rng == RANGE_TOP:
        return False
    lo, hi = rng
    return lo is not None and hi is not None and 0 <= lo and hi < bound


# ---------------------------------------------------------------------------
# The per-function symbolic summary
# ---------------------------------------------------------------------------

class AnalysisSummary:
    """One function's link-time abstract transformer (see module doc).

    Atom encodings (all JSON-safe lists):

    * value atoms: ``["const", payload]``, ``["param", i]``, or
      ``["ret", callee, [arg_atom, ...]]`` (arg atoms are const/param
      only, so substitution at a call site is one level deep);
    * path tokens (facts proven on every entry-to-exit path):
      ``["deref", i]``, ``["free", i]``, ``["arg", callee, j, i]``;
    * may atoms: ``["local"]`` or ``["call", callee, j]``;
    * effect atoms: ``["local"]`` or ``["call", callee]``;
    * freshness atoms (one per pointer return site): ``["local"]``,
      ``["ret", callee]``, or ``["no"]``.
    """

    __slots__ = ("name", "is_declaration", "is_internal",
                 "return_null", "return_taint", "return_range",
                 "path_tokens", "may_free_params", "may_escape_params",
                 "may_free", "may_store", "ret_fresh")

    def __init__(self, name: str):
        self.name = name
        self.is_declaration = False
        self.is_internal = False
        self.return_null: List = []
        self.return_taint: List = []
        self.return_range: List = []
        self.path_tokens: List = []
        self.may_free_params: Dict[int, List] = {}
        self.may_escape_params: Dict[int, List] = {}
        self.may_free: List = []
        self.may_store: List = []
        self.ret_fresh: List = []

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "declaration": self.is_declaration,
            "internal": self.is_internal,
            "return_null": self.return_null,
            "return_taint": self.return_taint,
            "return_range": self.return_range,
            "path_tokens": self.path_tokens,
            "may_free_params": {str(i): v
                                for i, v in self.may_free_params.items()},
            "may_escape_params": {str(i): v
                                  for i, v in self.may_escape_params.items()},
            "may_free": self.may_free,
            "may_store": self.may_store,
            "ret_fresh": self.ret_fresh,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AnalysisSummary":
        summary = cls(payload["name"])
        summary.is_declaration = payload["declaration"]
        summary.is_internal = payload["internal"]
        summary.return_null = payload["return_null"]
        summary.return_taint = payload["return_taint"]
        summary.return_range = payload["return_range"]
        summary.path_tokens = payload["path_tokens"]
        summary.may_free_params = {int(i): v for i, v in
                                   payload["may_free_params"].items()}
        summary.may_escape_params = {int(i): v for i, v in
                                     payload["may_escape_params"].items()}
        summary.may_free = payload["may_free"]
        summary.may_store = payload["may_store"]
        summary.ret_fresh = payload["ret_fresh"]
        return summary

    def callee_names(self) -> set:
        """Every callee this summary's resolution depends on."""
        names = set()
        for atoms in (self.return_null, self.return_taint,
                      self.return_range, self.may_free, self.may_store,
                      self.ret_fresh):
            for atom in atoms:
                if atom and atom[0] in ("ret", "call"):
                    names.add(atom[1])
        for token in self.path_tokens:
            if token[0] == "arg":
                names.add(token[1])
        for table in (self.may_free_params, self.may_escape_params):
            for atoms in table.values():
                for atom in atoms:
                    if atom and atom[0] == "call":
                        names.add(atom[1])
        return names


class _MustPathFacts(DenseAnalysis):
    """Forward must-analysis: tokens generated on *every* path so far.

    ``None`` is the optimistic universe; the meet intersects, and tokens
    are never killed, so the fixpoint at an exit block is exactly the
    set of facts established on every path from entry to that exit.
    """

    direction = FORWARD

    def __init__(self, gen: Callable[[Instruction], Sequence[tuple]]):
        self.gen = gen

    def boundary(self, function: Function):
        return frozenset()

    def top(self, function: Function):
        return None

    def meet(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def transfer(self, block, state):
        if state is None:
            return None
        out = set(state)
        for inst in block.instructions:
            out.update(self.gen(inst))
        return frozenset(out)


def _cast_constant_null(value: Value) -> Optional[str]:
    """Nullness of an integer constant cast to pointer, if that is what
    ``value`` is.  The front-end lowers ``(T *)0`` to
    ``cast int 0 to T*``, so a plain ``ConstantPointerNull`` test misses
    the most common way null enters a program."""
    if isinstance(value, (CastInst, ConstantExpr)) and value.type.is_pointer:
        inner = value.operands[0] if isinstance(value, ConstantExpr) \
            else value.value
        if isinstance(inner, ConstantInt):
            return NULL_NULL if inner.value == 0 else NULL_NONNULL
    return None


def _simple_null_atom(value: Value, param_index: Dict[int, int]) -> list:
    """A one-level nullness atom for a call argument."""
    stripped = strip_pointer(value)
    index = param_index.get(id(stripped))
    if index is not None:
        return ["param", index]
    if isinstance(stripped, ConstantPointerNull):
        return ["const", NULL_NULL]
    if isinstance(stripped, (AllocationInst, GlobalValue)):
        return ["const", NULL_NONNULL]
    known = _cast_constant_null(value)
    if known is not None:
        return ["const", known]
    return ["const", NULL_MAYBE]


def summarize_function_ipa(function: Function) -> AnalysisSummary:
    """Compute one function's symbolic summary from its (SSA) body."""
    summary = AnalysisSummary(function.name)
    summary.is_declaration = function.is_declaration
    summary.is_internal = function.is_internal
    if function.is_declaration:
        return summary

    param_index = {id(arg): i for i, arg in enumerate(function.args)}
    pointer_params = {i for i, arg in enumerate(function.args)
                      if arg.type.is_pointer}

    def strip_param(value: Value) -> Optional[int]:
        index = param_index.get(id(strip_pointer(value)))
        if index is not None and index in pointer_params:
            return index
        return None

    # ---- path facts proven on every route to an exit --------------------
    def gen(inst: Instruction):
        tokens = []
        if isinstance(inst, (CallInst, InvokeInst)):
            callee_param = strip_param(inst.callee)
            if callee_param is not None:
                tokens.append(("deref", callee_param))
            target = direct_callee(inst.callee)
            if target is not None:
                for j, arg in enumerate(inst.args):
                    if arg.type.is_pointer:
                        index = strip_param(arg)
                        if index is not None:
                            tokens.append(("arg", target.name, j, index))
        elif isinstance(inst, FreeInst):
            index = strip_param(inst.pointer)
            if index is not None:
                tokens.append(("free", index))
                tokens.append(("deref", index))
        elif isinstance(inst, (LoadInst, StoreInst, VAArgInst)):
            pointer = (inst.valist if isinstance(inst, VAArgInst)
                       else inst.pointer)
            index = strip_param(pointer)
            if index is not None:
                tokens.append(("deref", index))
        return tokens

    result = solve_dense(_MustPathFacts(gen), function)
    exit_states = []
    for block, state in result.block_out.items():
        terminator = block.instructions[-1] if block.instructions else None
        if terminator is not None and terminator.opcode in (
                Opcode.RET, Opcode.UNWIND):
            if state is not None:
                exit_states.append(state)
    if exit_states:
        must = frozenset.intersection(*exit_states)
        summary.path_tokens = sorted(list(t) for t in must)

    # ---- may facts (any-path, over-approximate) -------------------------
    may_free_params: Dict[int, list] = {}
    may_escape_params: Dict[int, list] = {}
    may_free: list = []
    may_store: list = []

    def note(table: Dict[int, list], index: int, atom: list) -> None:
        atoms = table.setdefault(index, [])
        if atom not in atoms:
            atoms.append(atom)

    def note_effect(atoms: list, atom: list) -> None:
        if atom not in atoms:
            atoms.append(atom)

    for inst in function.instructions():
        if isinstance(inst, FreeInst):
            note_effect(may_free, ["local"])
            index = strip_param(inst.pointer)
            if index is not None:
                note(may_free_params, index, ["local"])
        elif isinstance(inst, StoreInst):
            note_effect(may_store, ["local"])
            if inst.value.type.is_pointer:
                index = strip_param(inst.value)
                if index is not None:
                    note(may_escape_params, index, ["local"])
        elif isinstance(inst, PhiNode):
            if inst.type.is_pointer:
                for incoming, _ in inst.incoming:
                    index = strip_param(incoming)
                    if index is not None:
                        note(may_escape_params, index, ["local"])
        elif isinstance(inst, ReturnInst):
            if inst.return_value is not None \
                    and inst.return_value.type.is_pointer:
                index = strip_param(inst.return_value)
                if index is not None:
                    note(may_escape_params, index, ["local"])
        elif isinstance(inst, (CallInst, InvokeInst)):
            target = direct_callee(inst.callee)
            if target is None:
                note_effect(may_free, ["local"])
                note_effect(may_store, ["local"])
                for arg in inst.args:
                    if arg.type.is_pointer:
                        index = strip_param(arg)
                        if index is not None:
                            note(may_free_params, index, ["local"])
                            note(may_escape_params, index, ["local"])
                continue
            note_effect(may_free, ["call", target.name])
            note_effect(may_store, ["call", target.name])
            for j, arg in enumerate(inst.args):
                if arg.type.is_pointer:
                    index = strip_param(arg)
                    if index is not None:
                        note(may_free_params, index, ["call", target.name, j])
                        note(may_escape_params, index,
                             ["call", target.name, j])
    summary.may_free_params = may_free_params
    summary.may_escape_params = may_escape_params
    summary.may_free = may_free
    summary.may_store = may_store

    # ---- return-value atoms --------------------------------------------
    returns_pointer = function.return_type.is_pointer
    returns_integer = isinstance(function.return_type, types.IntegerType)
    null_atoms: list = []
    taint_atoms: list = []
    range_atoms: list = []
    fresh_atoms: list = []

    def add_atom(atoms: list, atom: list) -> None:
        if atom not in atoms:
            atoms.append(atom)

    def eval_null(value: Value, visited: set) -> List[list]:
        if id(value) in visited:
            return []
        visited.add(id(value))
        if isinstance(value, ConstantPointerNull):
            return [["const", NULL_NULL]]
        if isinstance(value, (AllocationInst, GlobalValue)):
            return [["const", NULL_NONNULL]]
        if isinstance(value, UndefValue):
            return [["const", NULL_MAYBE]]
        known = _cast_constant_null(value)
        if known is not None:
            return [["const", known]]
        if isinstance(value, CastInst) and value.value.type.is_pointer:
            return eval_null(value.value, visited)
        if isinstance(value, GetElementPtrInst):
            return eval_null(value.pointer, visited)
        if isinstance(value, ConstantExpr):
            base = value.operands[0]
            if base.type.is_pointer:
                return eval_null(base, visited)
            return [["const", NULL_MAYBE]]
        if isinstance(value, PhiNode):
            atoms: list = []
            for incoming, _ in value.incoming:
                for atom in eval_null(incoming, visited):
                    if atom not in atoms:
                        atoms.append(atom)
            return atoms
        if isinstance(value, Argument):
            index = param_index.get(id(value))
            if index is not None:
                return [["param", index]]
            return [["const", NULL_MAYBE]]
        if isinstance(value, (CallInst, InvokeInst)):
            target = direct_callee(value.callee)
            if target is not None:
                args = [_simple_null_atom(a, param_index) if
                        a.type.is_pointer else ["const", NULL_MAYBE]
                        for a in value.args]
                return [["ret", target.name, args]]
            return [["const", NULL_MAYBE]]
        return [["const", NULL_MAYBE]]

    def simple_taint_atom(value: Value) -> list:
        if isinstance(value, Argument):
            index = param_index.get(id(value))
            if index is not None:
                return ["param", index]
        if isinstance(value, Constant):
            return ["const", TAINT_CLEAN]
        return ["const", TAINT_CLEAN]

    def eval_taint(value: Value, visited: set) -> List[list]:
        if id(value) in visited:
            return []
        visited.add(id(value))
        if isinstance(value, Constant):
            return [["const", TAINT_CLEAN]]
        if isinstance(value, Argument):
            index = param_index.get(id(value))
            if index is not None:
                return [["param", index]]
            return [["const", TAINT_CLEAN]]
        if isinstance(value, BinaryOperator):
            if value.opcode in (Opcode.REM, Opcode.AND, Opcode.DIV,
                                Opcode.SHR) or value.is_comparison:
                return [["const", TAINT_CLEAN]]
            atoms: list = []
            for operand in value.operands:
                for atom in eval_taint(operand, visited):
                    if atom not in atoms:
                        atoms.append(atom)
            return atoms
        if isinstance(value, CastInst):
            return eval_taint(value.value, visited)
        if isinstance(value, PhiNode):
            atoms = []
            for incoming, _ in value.incoming:
                for atom in eval_taint(incoming, visited):
                    if atom not in atoms:
                        atoms.append(atom)
            return atoms
        if isinstance(value, (CallInst, InvokeInst)):
            target = direct_callee(value.callee)
            if target is not None:
                args = [simple_taint_atom(a) for a in value.args]
                return [["ret", target.name, args]]
            return [["const", TAINT_CLEAN]]
        return [["const", TAINT_CLEAN]]

    absint_facts: list = []  # lazily computed, at most once per function

    def absint_range(value: Value):
        """The abstract interpreter's interval for ``value``, as a
        ``(lo, hi)`` pair, or None when it adds nothing over top."""
        if not isinstance(value.type, types.IntegerType):
            return None
        if not absint_facts:
            from ..analysis.absint import analyze_function as _absint
            absint_facts.append(_absint(function))
        fact = absint_facts[0].abs_of(value)
        if fact is None or fact.interval.is_top(fact.shape):
            return None
        return (fact.interval.lo, fact.interval.hi)

    def best_range(value: Value):
        """``value_range`` sharpened by the abstract interpreter: keep
        the tighter bound on each side (both are sound over-approxima-
        tions, so their intersection is too)."""
        rng = value_range(value)
        lo, hi = (None, None) if rng == RANGE_TOP else rng
        sharp = absint_range(value)
        if sharp is not None:
            lo = sharp[0] if lo is None else max(lo, sharp[0])
            hi = sharp[1] if hi is None else min(hi, sharp[1])
            if lo > hi:  # contradictory — trust neither side
                return RANGE_UNBOUNDED
        return (lo, hi)

    def simple_range_atom(value: Value) -> list:
        if isinstance(value, Argument):
            index = param_index.get(id(value))
            if index is not None:
                return ["param", index]
        rng = best_range(value)
        return ["const", rng[0], rng[1]]

    def eval_range(value: Value, visited: set) -> List[list]:
        if id(value) in visited:
            return []
        visited.add(id(value))
        if isinstance(value, PhiNode):
            atoms: list = []
            for incoming, _ in value.incoming:
                for atom in eval_range(incoming, visited):
                    if atom not in atoms:
                        atoms.append(atom)
            return atoms
        if isinstance(value, Argument):
            index = param_index.get(id(value))
            if index is not None:
                return [["param", index]]
            return [["const", None, None]]
        if isinstance(value, (CallInst, InvokeInst)):
            target = direct_callee(value.callee)
            if target is not None:
                args = [simple_range_atom(a) for a in value.args]
                return [["ret", target.name, args]]
            return [["const", None, None]]
        rng = best_range(value)
        return [["const", rng[0], rng[1]]]

    def malloc_is_owned(alloc: MallocInst, ret_value: Value) -> bool:
        """True when the returned malloc is this function's to give:
        nothing else captures it (stores of the value, unknown callees,
        phis), so the caller receives exclusive ownership."""
        worklist = [alloc]
        seen = set()
        while worklist:
            current = worklist.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            for use in current.uses:
                user = use.user
                if isinstance(user, (CastInst, GetElementPtrInst)):
                    worklist.append(user)
                elif isinstance(user, StoreInst):
                    if user.value is current:
                        return False
                elif isinstance(user, (CallInst, InvokeInst)):
                    return False
                elif isinstance(user, (PhiNode, FreeInst)):
                    return False
        return True

    for block in function.blocks:
        for inst in block.instructions:
            if not isinstance(inst, ReturnInst) or inst.return_value is None:
                continue
            value = inst.return_value
            if returns_pointer:
                for atom in eval_null(value, set()):
                    add_atom(null_atoms, atom)
                stripped = value
                while isinstance(stripped, CastInst) \
                        and stripped.value.type.is_pointer:
                    stripped = stripped.value
                if isinstance(stripped, (ConstantPointerNull, UndefValue)) \
                        or _cast_constant_null(stripped) == NULL_NULL:
                    pass  # nothing to own on this path
                elif isinstance(stripped, MallocInst) \
                        and malloc_is_owned(stripped, value):
                    add_atom(fresh_atoms, ["local"])
                elif isinstance(stripped, (CallInst, InvokeInst)):
                    target = direct_callee(stripped.callee)
                    if target is not None:
                        add_atom(fresh_atoms, ["ret", target.name])
                    else:
                        add_atom(fresh_atoms, ["no"])
                else:
                    add_atom(fresh_atoms, ["no"])
            if returns_integer:
                for atom in eval_taint(value, set()):
                    add_atom(taint_atoms, atom)
                for atom in eval_range(value, set()):
                    add_atom(range_atoms, atom)
    summary.return_null = null_atoms
    summary.return_taint = taint_atoms
    summary.return_range = range_atoms
    summary.ret_fresh = fresh_atoms
    return summary


class ModuleAnalysisSummaries:
    """All per-function analysis summaries of one translation unit."""

    FORMAT = 1

    def __init__(self, summaries: Dict[str, AnalysisSummary]):
        self.summaries = summaries

    @classmethod
    def compute(cls, module: Module) -> "ModuleAnalysisSummaries":
        """Summarize every function.  ``module`` should be an SSA
        (stack-promoted) view; the whole-program driver guarantees it."""
        return cls({
            function.name: summarize_function_ipa(function)
            for function in module.functions.values()
        })

    def to_json(self) -> str:
        return json.dumps({
            "format": self.FORMAT,
            "functions": [self.summaries[name].to_dict()
                          for name in sorted(self.summaries)],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ModuleAnalysisSummaries":
        payload = json.loads(text)
        if payload.get("format") != cls.FORMAT:
            raise ValueError("unsupported analysis-summary format")
        return cls({
            entry["name"]: AnalysisSummary.from_dict(entry)
            for entry in payload["functions"]
        })


# ---------------------------------------------------------------------------
# Link-time composition
# ---------------------------------------------------------------------------

class ResolvedSummary:
    """Concrete whole-program facts for one function."""

    __slots__ = ("name", "is_declaration", "return_null", "return_taint",
                 "return_range", "returns_fresh", "must_deref", "must_free",
                 "may_free_params", "may_escape_params", "may_free",
                 "may_store")

    def __init__(self, name: str, is_declaration: bool):
        self.name = name
        self.is_declaration = is_declaration
        self.return_null = NULL_TOP
        self.return_taint = TAINT_TOP
        self.return_range = RANGE_TOP
        self.returns_fresh = False
        self.must_deref: frozenset = frozenset()
        self.must_free: frozenset = frozenset()
        self.may_free_params: frozenset = frozenset()
        self.may_escape_params: frozenset = frozenset()
        self.may_free = False
        self.may_store = False

    def snapshot(self):
        return (self.return_null, self.return_taint, self.return_range,
                self.returns_fresh, self.must_deref, self.must_free,
                self.may_free_params, self.may_escape_params,
                self.may_free, self.may_store)


def _meet_null(a, b):
    if a == NULL_TOP:
        return b
    if b == NULL_TOP or a == b:
        return a
    return NULL_MAYBE


def _meet_taint(a, b):
    if a == TAINT_TOP:
        return b
    if b == TAINT_TOP or a == b:
        return a
    return TAINT_TAINTED


class ProgramSummaries:
    """The composed, whole-program view over per-TU summary tables.

    Scopes model linkage: a callee reference resolves first to a
    *definition* in its own translation unit (internal or external),
    then to the unique external definition in any other unit — exactly
    what the linker would do — and otherwise stays unresolved
    (a true external), for which every domain answers conservatively.
    """

    #: Iteration backstop per SCC (the lattices are tiny, so real
    #: convergence happens in a handful of sweeps).
    MAX_SCC_ITERATIONS = 64
    #: Substitution depth bound for context-sensitive evaluation.
    MAX_DEPTH = 8

    def __init__(self, tables: Sequence[Tuple[str,
                                              "ModuleAnalysisSummaries"]]):
        self.tables = list(tables)
        self._summaries: Dict[Tuple[int, str], AnalysisSummary] = {}
        self._extern_defs: Dict[str, Tuple[int, str]] = {}
        self.resolved: Dict[Tuple[int, str], ResolvedSummary] = {}
        self.iterations = 0
        self.scc_count = 0
        self.largest_scc = 0
        for scope, (label, table) in enumerate(self.tables):
            for name, summary in table.summaries.items():
                qid = (scope, name)
                self._summaries[qid] = summary
                if not summary.is_declaration and not summary.is_internal:
                    self._extern_defs.setdefault(name, qid)
        self._solve()

    # -- name resolution ----------------------------------------------------

    def _resolve_ref(self, scope: int, name: str) -> Optional[Tuple[int, str]]:
        local = self._summaries.get((scope, name))
        if local is not None and not local.is_declaration:
            return (scope, name)
        return self._extern_defs.get(name)

    def resolved_for(self, scope: int, name: str) -> Optional[ResolvedSummary]:
        """The composed summary a call from ``scope`` to ``name`` binds
        to, or None for a true external."""
        qid = self._resolve_ref(scope, name)
        if qid is None:
            return None
        return self.resolved.get(qid)

    # -- the bottom-up SCC fixpoint -----------------------------------------

    def _solve(self) -> None:
        for qid, summary in self._summaries.items():
            self.resolved[qid] = ResolvedSummary(summary.name,
                                                 summary.is_declaration)
        edges: Dict[Tuple[int, str], list] = {}
        for qid, summary in self._summaries.items():
            scope = qid[0]
            targets = []
            for name in sorted(summary.callee_names()):
                ref = self._resolve_ref(scope, name)
                if ref is not None:
                    targets.append(ref)
            edges[qid] = targets
        components = strongly_connected_components(edges)
        self.scc_count = len(components)
        for component in components:
            self.largest_scc = max(self.largest_scc, len(component))
            for _ in range(self.MAX_SCC_ITERATIONS):
                self.iterations += 1
                changed = False
                for qid in component:
                    before = self.resolved[qid].snapshot()
                    self._resolve_one(qid)
                    if self.resolved[qid].snapshot() != before:
                        changed = True
                if not changed:
                    break

    def _resolve_one(self, qid: Tuple[int, str]) -> None:
        summary = self._summaries[qid]
        resolved = self.resolved[qid]
        if summary.is_declaration:
            return
        scope = qid[0]
        resolved.return_null = self._eval_atoms(
            scope, summary.return_null, None, "null", 0)
        resolved.return_taint = self._eval_atoms(
            scope, summary.return_taint, None, "taint", 0)
        resolved.return_range = self._eval_atoms(
            scope, summary.return_range, None, "range", 0)

        must_deref = set()
        must_free = set()
        for token in summary.path_tokens:
            if token[0] == "deref":
                must_deref.add(token[1])
            elif token[0] == "free":
                must_free.add(token[1])
            elif token[0] == "arg":
                _, callee, j, i = token
                target = self.resolved_for(scope, callee)
                if target is not None:
                    if j in target.must_deref:
                        must_deref.add(i)
                    if j in target.must_free:
                        must_free.add(i)
        resolved.must_deref = frozenset(must_deref)
        resolved.must_free = frozenset(must_free)

        resolved.may_free_params = self._resolve_may_params(
            scope, summary.may_free_params, "may_free_params")
        resolved.may_escape_params = self._resolve_may_params(
            scope, summary.may_escape_params, "may_escape_params")
        resolved.may_free = self._resolve_effect(
            scope, summary.may_free, "may_free")
        resolved.may_store = self._resolve_effect(
            scope, summary.may_store, "may_store")

        if summary.ret_fresh:
            fresh = True
            for atom in summary.ret_fresh:
                if atom[0] == "local":
                    continue
                if atom[0] == "ret":
                    target = self.resolved_for(scope, atom[1])
                    if target is None or not target.returns_fresh:
                        fresh = False
                        break
                else:
                    fresh = False
                    break
            resolved.returns_fresh = fresh

    def _resolve_may_params(self, scope: int, table: Dict[int, list],
                            field: str) -> frozenset:
        result = set()
        for index, atoms in table.items():
            for atom in atoms:
                if atom[0] == "local":
                    result.add(index)
                    break
                if atom[0] == "call":
                    callee, j = atom[1], atom[2]
                    target = self.resolved_for(scope, callee)
                    if target is None:
                        if callee not in KNOWN_SAFE_EXTERNALS:
                            result.add(index)
                            break
                    elif target.is_declaration or \
                            j in getattr(target, field):
                        result.add(index)
                        break
        return frozenset(result)

    def _resolve_effect(self, scope: int, atoms: list, field: str) -> bool:
        for atom in atoms:
            if atom[0] == "local":
                return True
            if atom[0] == "call":
                callee = atom[1]
                target = self.resolved_for(scope, callee)
                if target is None:
                    if callee in KNOWN_SAFE_EXTERNALS:
                        if field == "may_store" and \
                                callee in _STORING_EXTERNALS:
                            return True
                        continue
                    return True
                if target.is_declaration or getattr(target, field):
                    return True
        return False

    # -- context-sensitive value evaluation ---------------------------------

    def _domain_unknown(self, domain: str):
        if domain == "null":
            return NULL_MAYBE
        if domain == "taint":
            return TAINT_CLEAN
        return RANGE_UNBOUNDED

    def _external_value(self, domain: str, name: str):
        if domain == "taint":
            return (TAINT_CLEAN if name in KNOWN_SAFE_EXTERNALS
                    else TAINT_TAINTED)
        return self._domain_unknown(domain)

    def _meet(self, domain: str, a, b):
        if domain == "null":
            return _meet_null(a, b)
        if domain == "taint":
            return _meet_taint(a, b)
        return _merge_range(a, b)

    def _top(self, domain: str):
        if domain == "null":
            return NULL_TOP
        if domain == "taint":
            return TAINT_TOP
        return RANGE_TOP

    def _atoms_of(self, summary: AnalysisSummary, domain: str) -> list:
        if domain == "null":
            return summary.return_null
        if domain == "taint":
            return summary.return_taint
        return summary.return_range

    def _resolved_value(self, resolved: ResolvedSummary, domain: str):
        if domain == "null":
            return resolved.return_null
        if domain == "taint":
            return resolved.return_taint
        return resolved.return_range

    def _const_payload(self, domain: str, atom: list):
        if domain == "range":
            return (atom[1], atom[2])
        return atom[1]

    def _eval_atoms(self, scope: int, atoms: list, ctx, domain: str,
                    depth: int):
        element = self._top(domain)
        for atom in atoms:
            element = self._meet(domain, element,
                                 self._eval_atom(scope, atom, ctx, domain,
                                                 depth))
        return element

    def _eval_atom(self, scope: int, atom: list, ctx, domain: str,
                   depth: int):
        kind = atom[0]
        if kind == "const":
            return self._const_payload(domain, atom)
        if kind == "param":
            index = atom[1]
            if ctx is not None and index < len(ctx):
                return ctx[index]
            return self._domain_unknown(domain)
        if kind == "ret":
            callee, arg_atoms = atom[1], atom[2]
            ref = self._resolve_ref(scope, callee)
            if ref is None:
                return self._external_value(domain, callee)
            if depth >= self.MAX_DEPTH:
                return self._resolved_value(self.resolved[ref], domain)
            callee_ctx = [self._eval_atom(scope, a, ctx, domain, depth + 1)
                          for a in arg_atoms]
            summary = self._summaries[ref]
            if summary.is_declaration:
                return self._domain_unknown(domain)
            return self._eval_atoms(ref[0], self._atoms_of(summary, domain),
                                    callee_ctx, domain, depth + 1)
        return self._domain_unknown(domain)

    # -- call-site queries used by the whole-program checkers ---------------

    def _call_value(self, scope: int, inst, domain: str,
                    arg_value: Callable[[Value], object]):
        target = direct_callee(inst.callee)
        if target is None:
            return None
        ref = self._resolve_ref(scope, target.name)
        if ref is None:
            return self._external_value(domain, target.name)
        summary = self._summaries[ref]
        if summary.is_declaration:
            return self._domain_unknown(domain)
        ctx = [arg_value(arg) for arg in inst.args]
        return self._eval_atoms(ref[0], self._atoms_of(summary, domain),
                                ctx, domain, 1)

    def call_return_null(self, scope: int, inst,
                         get: Callable[[Value], object]):
        """Nullness of a call's return, with actual-argument context."""
        def arg_value(arg: Value):
            if not arg.type.is_pointer:
                return NULL_MAYBE
            element = get(arg)
            return NULL_MAYBE if element is None else element
        value = self._call_value(scope, inst, "null", arg_value)
        if value == NULL_TOP:
            return NULL_MAYBE  # function never returns; claim nothing
        return value

    def call_return_taint(self, scope: int, inst,
                          get: Callable[[Value], object]):
        def arg_value(arg: Value):
            element = get(arg)
            return TAINT_CLEAN if element is None else element
        value = self._call_value(scope, inst, "taint", arg_value)
        if value == TAINT_TOP:
            return TAINT_CLEAN
        return value

    def call_return_range(self, scope: int, inst):
        """Concrete return range of a direct call (context from locally
        foldable arguments)."""
        def arg_value(arg: Value):
            return value_range(arg)
        value = self._call_value(scope, inst, "range", arg_value)
        if value == RANGE_TOP:
            return None
        return value

    # -- observability -------------------------------------------------------

    def statistics(self) -> dict:
        return {
            "ipa-functions": len(self._summaries),
            "ipa-sccs": self.scc_count,
            "ipa-largest-scc": self.largest_scc,
            "ipa-iterations": self.iterations,
        }
