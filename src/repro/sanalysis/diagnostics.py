"""Structured diagnostics for the static checker suite.

Every checker reports findings as :class:`Diagnostic` values rather than
printing text, so the same result can drive the ``lc-lint`` CLI, the
driver's post-link analyze stage, or a test asserting golden output.
Source locations come from the ``loc`` field the LC front-end stamps on
instructions; IR that was parsed or built by hand simply has no line.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..core.instructions import Instruction


class Severity(enum.IntEnum):
    """Diagnostic severities, ordered so ``max()`` picks the worst."""

    NOTE = 0      #: advisory (e.g. a type-unsafe but working cast)
    WARNING = 1   #: suspicious code that still has defined behaviour
    ERROR = 2     #: code whose execution is a definite memory/type error

    def __str__(self) -> str:
        return self.name.lower()


class Diagnostic:
    """One finding: what is wrong, where, and how severe it is."""

    __slots__ = ("severity", "checker", "message", "function", "block",
                 "instruction", "line", "fixit", "file")

    def __init__(self, severity: Severity, checker: str, message: str,
                 function: Optional[str] = None, block: Optional[str] = None,
                 instruction: Optional[Instruction] = None,
                 line: Optional[int] = None, fixit: Optional[str] = None,
                 file: Optional[str] = None):
        self.severity = severity
        self.checker = checker
        self.message = message
        self.function = function
        self.block = block
        self.instruction = instruction
        #: Explicit line wins; otherwise taken from the instruction.
        if line is None and instruction is not None:
            line = instruction.loc
        self.line = line
        #: Optional human-readable suggested fix.
        self.fixit = fixit
        #: Originating translation unit, when known (whole-program mode
        #: stamps this; per-TU callers pass the filename to render()).
        self.file = file

    @property
    def is_error(self) -> bool:
        return self.severity == Severity.ERROR

    def render(self, filename: str = "<module>") -> str:
        """One-line clang-style rendering: ``file:line: sev: msg [checker]``."""
        name = self.file or filename
        where = name if self.line is None else f"{name}:{self.line}"
        text = f"{where}: {self.severity}: {self.message} [{self.checker}]"
        context = []
        if self.function:
            context.append(f"function %{self.function}")
        if self.block:
            context.append(f"block %{self.block}")
        if context:
            text += f" ({', '.join(context)})"
        if self.fixit:
            text += f"\n{where}: note: fix-it: {self.fixit}"
        return text

    def to_dict(self, filename: Optional[str] = None) -> dict:
        """The machine-readable record behind ``lc-lint --format=json``."""
        return {
            "file": self.file or filename,
            "line": self.line,
            "checker": self.checker,
            "severity": str(self.severity),
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "fixit": self.fixit,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Diagnostic {self.severity} [{self.checker}] {self.message!r}>"


class Reporter:
    """Accumulates diagnostics across checkers, in a stable order."""

    def __init__(self):
        self.diagnostics: list[Diagnostic] = []

    def report(self, severity: Severity, checker: str, message: str,
               instruction: Optional[Instruction] = None,
               function=None, block=None, line: Optional[int] = None,
               fixit: Optional[str] = None) -> Diagnostic:
        fn_name = getattr(function, "name", function)
        block_name = getattr(block, "name", block)
        if instruction is not None:
            if block_name is None and instruction.parent is not None:
                block_name = instruction.parent.name
            if fn_name is None and instruction.function is not None:
                fn_name = instruction.function.name
        diag = Diagnostic(severity, checker, message, fn_name, block_name,
                          instruction, line, fixit)
        self.diagnostics.append(diag)
        return diag

    def error(self, checker: str, message: str, **kwargs) -> Diagnostic:
        return self.report(Severity.ERROR, checker, message, **kwargs)

    def warning(self, checker: str, message: str, **kwargs) -> Diagnostic:
        return self.report(Severity.WARNING, checker, message, **kwargs)

    def note(self, checker: str, message: str, **kwargs) -> Diagnostic:
        return self.report(Severity.NOTE, checker, message, **kwargs)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics ordered by function, source line, then severity."""
        return sorted(
            self.diagnostics,
            key=lambda d: (d.function or "", d.line or 0, -int(d.severity),
                           d.checker, d.message),
        )


def stable_order(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Multi-file ordering: (file, line, checker, …), independent of
    checker scheduling and ``--jobs`` interleaving."""
    return sorted(
        diagnostics,
        key=lambda d: (d.file or "", d.line or 0, d.checker,
                       -int(d.severity), d.message, d.function or "",
                       d.block or ""),
    )


def dedupe(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Drop diagnostics identical in everything but originating file.

    Linking clones a function defined in several translation units; its
    findings would otherwise repeat once per copy.
    """
    seen = set()
    unique: list[Diagnostic] = []
    for diag in diagnostics:
        key = (diag.checker, int(diag.severity), diag.message,
               diag.function, diag.block, diag.line, diag.fixit)
        if key in seen:
            continue
        seen.add(key)
        unique.append(diag)
    return unique
