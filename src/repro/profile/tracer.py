"""Hot-path trace formation (paper section 3.5).

"Once hot paths are identified, we duplicate the original code into a
trace, perform optimizations on it, and then regenerate native code
into a software-managed trace cache.  We then insert branches between
the original code and the new native code."

The reproduction forms the trace *in the IR*: the hot path through a
hot loop is tail-duplicated into a superblock (single entry from the
loop header, side exits to the original cold blocks), and local
optimizations run over the straightened code.  SSA safety comes from
the demote/duplicate/promote sandwich: ``reg2mem`` removes cross-block
SSA values, duplication is then trivially sound, and ``mem2reg``
rebuilds SSA over the new shape.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.loops import Loop, LoopInfo
from ..core.basicblock import BasicBlock
from ..core.instructions import BranchInst
from ..core.module import Function
from ..core.values import Value
from ..transforms.cloning import clone_instruction
from ..transforms.dce import AggressiveDCE
from ..transforms.gvn import GVN
from ..transforms.instcombine import InstCombine
from ..transforms.mem2reg import PromoteMem2Reg
from ..transforms.reg2mem import DemoteRegisters
from ..transforms.simplifycfg import SimplifyCFG


class TraceFormation:
    """Forms superblock traces for hot loops, given block counts."""

    def __init__(self, min_path_length: int = 2, hot_fraction: float = 0.6):
        self.min_path_length = min_path_length
        #: A successor is "on trace" when it received at least this
        #: fraction of the block's outgoing executions.
        self.hot_fraction = hot_fraction
        self.traces_formed = 0

    def optimize_function(self, function: Function,
                          block_counts: dict[str, int]) -> bool:
        """Form traces for every sufficiently-biased hot loop."""
        loop_info = LoopInfo(function)
        paths = []
        for loop in loop_info.all_loops():
            path = self._select_path(loop, block_counts)
            if path is not None:
                paths.append(path)
        if not paths:
            return False
        DemoteRegisters().run_on_function(function)
        for path in paths:
            self._duplicate_path(function, path)
            self.traces_formed += 1
        # Rebuild SSA and optimize the straightened code.
        PromoteMem2Reg().run_on_function(function)
        SimplifyCFG().run_on_function(function)
        InstCombine().run_on_function(function)
        GVN().run_on_function(function)
        AggressiveDCE().run_on_function(function)
        SimplifyCFG().run_on_function(function)
        return True

    # -- path selection ------------------------------------------------------

    def _select_path(self, loop: Loop,
                     block_counts: dict[str, int]) -> Optional[list[BasicBlock]]:
        header = loop.header
        path = [header]
        seen = {id(header)}
        current = header
        while True:
            successors = [s for s in current.successors() if loop.contains(s)]
            if not successors:
                break
            # Dedupe before summing: a conditional branch with both
            # targets equal yields the same successor twice, and
            # double-counting it would make a perfectly biased edge
            # look like a 50% split and fail the hot_fraction test.
            unique = {id(s): s for s in current.successors()}.values()
            total = sum(block_counts.get(s.name, 0) for s in unique)
            best = max(successors, key=lambda s: block_counts.get(s.name, 0))
            best_count = block_counts.get(best.name, 0)
            if total == 0 or best_count < self.hot_fraction * total:
                break  # branch not biased enough to bet on
            if id(best) in seen:
                break  # back at the header (or an inner cycle)
            path.append(best)
            seen.add(id(best))
            current = best
        if len(path) < self.min_path_length + 1:
            return None
        return path

    # -- duplication -----------------------------------------------------------

    def _duplicate_path(self, function: Function, path: list[BasicBlock]) -> None:
        """Tail-duplicate ``path[1:]`` into a superblock entered from
        ``path[0]`` (the loop header).

        Runs on reg2mem'd IR: no phis, no cross-block SSA values, so a
        per-block clone with terminator retargeting is sound.
        """
        header = path[0]
        originals = path[1:]
        clones: list[BasicBlock] = []
        position = function.blocks.index(header) + 1
        for original in originals:
            clone = BasicBlock(f"{original.name}.trace")
            function.blocks.insert(position, clone)
            position += 1
            clone.parent = function
            value_map: dict[int, Value] = {}
            for inst in original.instructions:
                copied = clone_instruction(inst, value_map)
                value_map[id(inst)] = copied
                clone.instructions.append(copied)
                copied.parent = clone
            clones.append(clone)
        # Retarget: header enters the first clone; each clone's on-trace
        # successor is the next clone; side exits stay on originals.
        chain = list(zip(originals, clones))
        entry_term = header.terminator
        for index, operand in enumerate(entry_term.operands):
            if operand is originals[0]:
                entry_term.set_operand(index, clones[0])
        for position_in_path, (original, clone) in enumerate(chain[:-1]):
            next_original, next_clone = chain[position_in_path + 1]
            term = clone.terminator
            for index, operand in enumerate(term.operands):
                if operand is next_original:
                    term.set_operand(index, next_clone)
