"""Lifelong optimization: runtime profiling, trace formation, and the
offline profile-guided reoptimizer (paper sections 3.5 and 3.6)."""

from .collector import ProfileData
from .instrument import Granularity, ProfileInstrumentation, ProfileMap
from .reoptimizer import OfflineReoptimizer, ReoptimizationReport
from .tracer import TraceFormation

__all__ = [
    "ProfileData", "Granularity", "ProfileInstrumentation", "ProfileMap",
    "OfflineReoptimizer", "ReoptimizationReport", "TraceFormation",
]
