"""Profiling instrumentation (paper section 3.4/3.5).

"The native code generator inserts light-weight instrumentation to
detect frequently executed code regions (currently loop nests and
traces)."  This pass inserts calls to the runtime counter function
``__profile_count(uint id)`` at function entries and at loop headers
(region mode), or at every basic block (block mode, used by the trace
former to pick the hot path through a region).
"""

from __future__ import annotations

import enum
from typing import Optional

from ..analysis.loops import LoopInfo
from ..core import types
from ..core.instructions import CallInst
from ..core.module import Function, Module
from ..core.values import ConstantInt

COUNTER_FUNCTION = "__profile_count"


class Granularity(enum.Enum):
    REGIONS = "regions"  # function entries + loop headers
    BLOCKS = "blocks"    # every basic block


class CounterInfo:
    """What one counter id measures."""

    __slots__ = ("counter_id", "function_name", "kind", "block_name")

    def __init__(self, counter_id: int, function_name: str, kind: str,
                 block_name: str):
        self.counter_id = counter_id
        self.function_name = function_name
        self.kind = kind  # 'entry' | 'loop' | 'block'
        self.block_name = block_name


class ProfileMap:
    """Maps counter ids back to program locations."""

    def __init__(self):
        self.counters: list[CounterInfo] = []

    def new_counter(self, function_name: str, kind: str, block_name: str) -> int:
        counter_id = len(self.counters)
        self.counters.append(
            CounterInfo(counter_id, function_name, kind, block_name)
        )
        return counter_id

    def __len__(self) -> int:
        return len(self.counters)


class ProfileInstrumentation:
    """The pass object (see module docstring)."""

    name = "instrument"

    def __init__(self, granularity: Granularity = Granularity.REGIONS):
        self.granularity = granularity
        self.profile_map = ProfileMap()

    def run_on_module(self, module: Module) -> bool:
        counter_fn = module.get_or_insert_function(
            types.function(types.VOID, [types.UINT]), COUNTER_FUNCTION
        )
        changed = False
        for function in list(module.defined_functions()):
            if function.name == COUNTER_FUNCTION:
                continue
            changed |= self._instrument_function(function, counter_fn)
        return changed

    def _instrument_function(self, function: Function, counter_fn) -> bool:
        if self.granularity == Granularity.BLOCKS:
            _ensure_unique_block_names(function)
            loop_info = LoopInfo(function)
            loop_headers = {id(l.header) for l in loop_info.all_loops()}
            for block in function.blocks:
                if block is function.entry_block:
                    kind = "entry"
                elif id(block) in loop_headers:
                    kind = "loop"
                else:
                    kind = "block"
                counter_id = self.profile_map.new_counter(
                    function.name, kind, block.name
                )
                self._insert_counter(block, counter_fn, counter_id)
            return bool(function.blocks)
        entry_id = self.profile_map.new_counter(function.name, "entry", "entry")
        self._insert_counter(function.entry_block, counter_fn, entry_id)
        loop_info = LoopInfo(function)
        for loop in loop_info.all_loops():
            loop_id = self.profile_map.new_counter(
                function.name, "loop", loop.header.name
            )
            self._insert_counter(loop.header, counter_fn, loop_id)
        return True

    def _insert_counter(self, block, counter_fn, counter_id: int) -> None:
        call = CallInst(counter_fn, [ConstantInt(types.UINT, counter_id)])
        block.insert(block.first_non_phi_index(), call)


def _ensure_unique_block_names(function: Function) -> None:
    """Counters key on block names; make them unique within the function."""
    seen: set[str] = set()
    for block in function.blocks:
        name = block.name or "bb"
        if name in seen:
            suffix = 1
            while f"{name}.{suffix}" in seen:
                suffix += 1
            name = f"{name}.{suffix}"
        block.name = name
        seen.add(name)
