"""The offline (idle-time) reoptimizer — paper section 3.6.

"Such an optimizer is simply a modified version of the link-time
interprocedural optimizer, but with a greater emphasis on profile-
driven and target-specific optimizations."  It consumes end-user
profile data gathered by the instrumentation, and:

* inlines call sites inside *hot* functions aggressively (a larger
  threshold than the static inliner would risk);
* forms superblock traces for strongly-biased hot loops
  (:mod:`repro.profile.tracer`);
* lays out each hot function so the hot path is contiguous;
* re-runs the scalar pipeline over the changed functions.

The interpreter's step count stands in for run time, so the benefit is
measured deterministically.
"""

from __future__ import annotations

from typing import Optional

from ..core.instructions import CallInst
from ..core.module import Function, Module
from ..transforms.dce import AggressiveDCE
from ..transforms.gvn import GVN
from ..transforms.instcombine import InstCombine
from ..transforms.ipo.inline import inline_call_site
from ..transforms.sccp import SCCP
from ..transforms.simplifycfg import SimplifyCFG
from .collector import ProfileData
from .tracer import TraceFormation


class ReoptimizationReport:
    def __init__(self):
        self.hot_functions: list[str] = []
        self.inlined_calls = 0
        self.traces_formed = 0
        self.blocks_reordered = 0


class OfflineReoptimizer:
    """Profile-guided idle-time reoptimization of a module."""

    def __init__(self, hot_call_threshold: int = 50,
                 hot_loop_threshold: int = 100,
                 inline_size_limit: int = 200):
        self.hot_call_threshold = hot_call_threshold
        self.hot_loop_threshold = hot_loop_threshold
        self.inline_size_limit = inline_size_limit

    def run(self, module: Module, profile: ProfileData) -> ReoptimizationReport:
        report = ReoptimizationReport()
        entry_counts = profile.function_entry_counts()
        hot = {
            name for name, count in entry_counts.items()
            if count >= self.hot_call_threshold
        }
        report.hot_functions = sorted(hot)

        # 1. Profile-guided inlining: calls *to* hot functions from any
        #    defined caller, sized by the generous profile-backed limit.
        for function in list(module.defined_functions()):
            for inst in list(function.instructions()):
                if inst.parent is None or not isinstance(inst, CallInst):
                    continue
                callee = inst.callee
                if not isinstance(callee, Function) or callee.is_declaration:
                    continue
                if callee is function or callee.name not in hot:
                    continue
                if callee.instruction_count() > self.inline_size_limit:
                    continue
                if inline_call_site(inst):
                    report.inlined_calls += 1

        # 2. Trace formation over strongly-biased hot loops.
        tracer = TraceFormation()
        for function_name, _, count in profile.hot_loops(self.hot_loop_threshold):
            function = module.functions.get(function_name)
            if function is None or function.is_declaration:
                continue
            block_counts = profile.block_counts(function_name)
            if block_counts:
                tracer.optimize_function(function, block_counts)
        report.traces_formed = tracer.traces_formed

        # 3. Hot-path code layout (affects native code, not the
        #    interpreter): place each block's hottest successor next.
        for name in hot:
            function = module.functions.get(name)
            if function is not None and not function.is_declaration:
                block_counts = profile.block_counts(name)
                if block_counts:
                    report.blocks_reordered += _layout_hot_path(
                        function, block_counts
                    )

        # 4. Clean-up pipeline over everything the above touched.
        for pass_obj in (SimplifyCFG(), InstCombine(), SCCP(), SimplifyCFG(),
                         GVN(), AggressiveDCE(), SimplifyCFG()):
            for function in list(module.defined_functions()):
                pass_obj.run_on_function(function)
        return report


def _layout_hot_path(function: Function, block_counts: dict[str, int]) -> int:
    """Reorder ``function.blocks`` greedily along the hottest successors.

    Pure layout: the CFG is unchanged, only the block list order (which
    drives native-code fallthrough placement) moves.
    """
    placed: list = []
    placed_ids: set[int] = set()
    worklist = [function.entry_block]
    while worklist:
        block = worklist.pop()
        if id(block) in placed_ids:
            continue
        current = block
        while current is not None and id(current) not in placed_ids:
            placed.append(current)
            placed_ids.add(id(current))
            successors = current.successors()
            for succ in successors:
                if id(succ) not in placed_ids:
                    worklist.append(succ)
            hottest = None
            best = -1
            for succ in successors:
                count = block_counts.get(succ.name, 0)
                if id(succ) not in placed_ids and count > best:
                    best = count
                    hottest = succ
            current = hottest
    moved = sum(
        1 for old, new in zip(function.blocks, placed) if old is not new
    )
    remaining = [b for b in function.blocks if id(b) not in placed_ids]
    function.blocks = placed + remaining
    return moved
