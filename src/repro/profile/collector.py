"""Profile collection: the runtime half of the instrumentation.

The counters represent *end-user* runs (paper section 3.6): the data is
gathered while the application runs in the field (here: under the
execution engine), persisted, and consumed later by the offline
reoptimizer — possibly accumulated over several runs with different
usage patterns.
"""

from __future__ import annotations

import json
from typing import Optional

from .instrument import ProfileMap


class ProfileData:
    """Counter values plus the map describing what they measure."""

    def __init__(self, profile_map: ProfileMap):
        self.profile_map = profile_map
        self.counts: dict[int, int] = {}

    # -- collection hook -------------------------------------------------------

    def externals(self) -> dict:
        """Extra external functions to install into an Interpreter."""
        def count(interp, args):
            counter_id = args[0]
            self.counts[counter_id] = self.counts.get(counter_id, 0) + 1
            return None

        return {"__profile_count": count}

    # -- accumulation across runs -----------------------------------------------

    def merge(self, other: "ProfileData") -> None:
        for counter_id, value in other.counts.items():
            self.counts[counter_id] = self.counts.get(counter_id, 0) + value

    # -- queries --------------------------------------------------------------------

    def count_of(self, counter_id: int) -> int:
        return self.counts.get(counter_id, 0)

    def function_entry_counts(self) -> dict[str, int]:
        result: dict[str, int] = {}
        for info in self.profile_map.counters:
            if info.kind == "entry":
                result[info.function_name] = self.count_of(info.counter_id)
        return result

    def block_counts(self, function_name: str) -> dict[str, int]:
        """Block-name -> execution count (block-granularity profiles).

        Entry and loop-header counters are block counters too (they are
        just tagged with their role).
        """
        result: dict[str, int] = {}
        for info in self.profile_map.counters:
            if (info.function_name == function_name
                    and info.kind in ("block", "entry", "loop")):
                result[info.block_name] = self.count_of(info.counter_id)
        return result

    def hot_loops(self, threshold: int) -> list[tuple[str, str, int]]:
        """(function, loop header block, trip count) over the threshold."""
        result = []
        for info in self.profile_map.counters:
            if info.kind == "loop":
                count = self.count_of(info.counter_id)
                if count >= threshold:
                    result.append((info.function_name, info.block_name, count))
        result.sort(key=lambda item: -item[2])
        return result

    def hot_functions(self, threshold: int) -> list[tuple[str, int]]:
        result = [
            (name, count)
            for name, count in self.function_entry_counts().items()
            if count >= threshold
        ]
        result.sort(key=lambda item: -item[1])
        return result

    # -- persistence (the "profile info" shipped between runs) ------------------------

    def to_json(self) -> str:
        payload = {
            "counters": [
                {
                    "id": info.counter_id,
                    "function": info.function_name,
                    "kind": info.kind,
                    "block": info.block_name,
                    "count": self.count_of(info.counter_id),
                }
                for info in self.profile_map.counters
            ]
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ProfileData":
        payload = json.loads(text)
        profile_map = ProfileMap()
        data = cls(profile_map)
        for entry in payload["counters"]:
            counter_id = profile_map.new_counter(
                entry["function"], entry["kind"], entry["block"]
            )
            data.counts[counter_id] = entry["count"]
        return data
