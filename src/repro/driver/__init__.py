"""Compilation drivers: the standard pass pipelines and the end-to-end
compile/link/execute flows of paper Figure 4."""

from .cache import BytecodeCache, toolchain_fingerprint
from .passmanager import (
    CrashReport, FaultPolicy, PassBudgetExceeded, TransactionalPassManager,
    TranslationValidationError, restore_module, snapshot_module,
)
from .pipelines import (
    analyze_module, compile_and_link, compile_translation_units,
    link_time_optimize, lint_whole_program, lto_pipeline, optimize_module,
    standard_pipeline,
)
from .lifelong import LifelongSession

__all__ = [
    "BytecodeCache", "CrashReport", "FaultPolicy", "PassBudgetExceeded",
    "TransactionalPassManager", "TranslationValidationError",
    "analyze_module", "compile_and_link",
    "compile_translation_units", "link_time_optimize",
    "lint_whole_program", "lto_pipeline", "optimize_module",
    "restore_module", "snapshot_module", "standard_pipeline",
    "toolchain_fingerprint", "LifelongSession",
]
