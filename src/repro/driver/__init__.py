"""Compilation drivers: the standard pass pipelines and the end-to-end
compile/link/execute flows of paper Figure 4."""

from .pipelines import (
    analyze_module, compile_and_link, link_time_optimize, optimize_module,
    standard_pipeline,
)
from .lifelong import LifelongSession

__all__ = [
    "analyze_module", "compile_and_link", "link_time_optimize",
    "optimize_module", "standard_pipeline", "LifelongSession",
]
