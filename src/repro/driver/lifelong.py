"""The lifelong compilation session: the full Figure 4 loop.

Ties the stages together the way the paper's system diagram does:

1. front-ends compile translation units to IR;
2. the linker + interprocedural optimizer produce the linked program,
   and bytecode is "saved with the native code";
3. the code generator adds profiling instrumentation;
4. end-user runs (the execution engine) gather profile data;
5. the offline, idle-time reoptimizer consumes the profile and rewrites
   the preserved IR, ready for the next run.

Because the representation is preserved across all stages, step 5 can
repeat forever — optimize differently as usage patterns drift.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bitcode import write_bytecode
from ..core.module import Module
from ..execution import Interpreter, TraceManager
from ..profile import (
    Granularity, OfflineReoptimizer, ProfileData, ProfileInstrumentation,
    ReoptimizationReport,
)
from .cache import BytecodeCache
from .passmanager import FaultPolicy
from .pipelines import compile_and_link


class RunResult:
    def __init__(self, exit_value, output: str, steps: int):
        self.exit_value = exit_value
        self.output = output
        self.steps = steps


class LifelongSession:
    """Owns one program through compile, run, profile, reoptimize cycles."""

    def __init__(self, sources: Sequence[str], name: str = "program",
                 level: int = 2, cache: Optional[BytecodeCache] = None,
                 jobs: int = 1,
                 fault_policy: Optional[FaultPolicy] = None,
                 jit_traces: bool = False, trace_threshold: int = 50):
        self.cache = cache
        self._sources = list(sources)
        self._name = name
        self._level = level
        self._jobs = jobs
        #: Fault-tolerant execution policy for every compile in this
        #: session (initial build and reoptimizations alike): a session
        #: that lives forever must outlive its own components' bugs.
        #: Crash reports accumulate on ``fault_policy.crash_reports``.
        self.fault_policy = fault_policy
        #: Whole-program cache key (per-TU keys live inside
        #: compile_and_link; this one names the *linked* artifact).
        self._program_key = (
            cache.key("\0".join(sources) + "\0" + name, level, tag="program")
            if cache is not None else None
        )
        self.module = compile_and_link(sources, name, level,
                                       cache=cache, jobs=jobs,
                                       policy=fault_policy)
        #: The persistent representation shipped with the executable.
        self.bytecode = write_bytecode(self.module)
        if cache is not None:
            cache.store_bytes(self._program_key, self.bytecode)
        instrumentation = ProfileInstrumentation(Granularity.BLOCKS)
        instrumentation.run_on_module(self.module)
        self.profile = ProfileData(instrumentation.profile_map)
        self.reopt_reports: list[ReoptimizationReport] = []
        #: The trace-compiling tier, shared by every run of this
        #: session: traces compiled during one end-user run keep paying
        #: off in the next (the software trace cache is as lifelong as
        #: the IR), until :meth:`reoptimize` rewrites the IR underneath
        #: them and invalidates the lot.
        self.trace_manager: Optional[TraceManager] = (
            TraceManager(hot_threshold=trace_threshold)
            if jit_traces else None
        )

    def statistics(self) -> dict[str, int]:
        """One merged ``-stats`` view of the whole session: fault-policy
        counters and cache counters under one roof.  This is what
        lc-serverd reports per reoptimize request — a daemon hosting
        many sessions aggregates these into its ``serverd.*`` totals.
        """
        stats: dict[str, int] = {}
        if self.fault_policy is not None:
            stats.update(self.fault_policy.statistics())
        if self.cache is not None:
            stats.update(self.cache.statistics())
        stats["reopt.reports"] = len(self.reopt_reports)
        return stats

    def run(self, function: str = "main", args: Sequence = (),
            step_limit: int = 50_000_000) -> RunResult:
        """One end-user run; profile counters accumulate."""
        interp = Interpreter(self.module, step_limit=step_limit,
                             extra_externals=self.profile.externals())
        if self.trace_manager is not None:
            self.trace_manager.attach(interp)
        exit_value = interp.run(function, args)
        return RunResult(exit_value, "".join(interp.output), interp.steps)

    def run_uninstrumented(self, function: str = "main",
                           args: Sequence = (),
                           step_limit: int = 50_000_000) -> RunResult:
        """A run with counters ignored (for unbiased step counting)."""
        interp = Interpreter(self.module, step_limit=step_limit,
                             extra_externals={"__profile_count":
                                              lambda i, a: None})
        if self.trace_manager is not None:
            self.trace_manager.attach(interp)
        exit_value = interp.run(function, args)
        return RunResult(exit_value, "".join(interp.output), interp.steps)

    def lint(self, checks: Optional[Sequence[str]] = None):
        """Whole-program lint over the session's sources (lint-wp).

        Rides the same bytecode cache as compilation: analysis
        summaries persist next to the per-TU bytecode, so repeated
        lints of an unchanged program summarize nothing and only rerun
        the composition + checking sweep.  Returns a
        :class:`repro.sanalysis.WholeProgramResult`.
        """
        from .pipelines import lint_whole_program

        return lint_whole_program(self._sources, name=self._name,
                                  level=self._level, checks=checks,
                                  cache=self.cache, jobs=self._jobs)

    def reoptimize(self, **kwargs) -> ReoptimizationReport:
        """The idle-time pass: consume the accumulated profile.

        The rewritten IR supersedes the cached whole-program artifact,
        so that entry is invalidated and re-stored; per-TU entries stay
        valid — the sources they were keyed on have not changed.

        Under a :attr:`fault_policy`, a crashing reoptimizer is a
        contained event: the module rolls back to its pre-reoptimization
        state (the program keeps running exactly as before) and an
        empty report is returned — a daemon doing this at idle time
        must never lose the program to its own bug.

        Either way the software trace cache is invalidated: compiled
        traces are closures over specific block objects, and both a
        successful rewrite and a snapshot rollback replace those
        objects under them.
        """
        if self.trace_manager is not None:
            self.trace_manager.invalidate_all()
        if self.fault_policy is not None:
            from .passmanager import (
                CrashReport, restore_module, snapshot_module,
            )

            snapshot = snapshot_module(self.module)
            try:
                report = OfflineReoptimizer(**kwargs).run(self.module,
                                                          self.profile)
            except Exception as error:
                restore_module(self.module, snapshot)
                self.fault_policy.count("passes.rolled_back")
                self.fault_policy.record(CrashReport(
                    pass_name="reoptimizer", module=self.module.name,
                    function=None, error_type=type(error).__name__,
                    error_message=str(error), traceback=""))
                report = ReoptimizationReport()
                self.reopt_reports.append(report)
                return report
        else:
            report = OfflineReoptimizer(**kwargs).run(self.module,
                                                      self.profile)
        self.reopt_reports.append(report)
        self.bytecode = write_bytecode(self.module)
        if self.cache is not None:
            self.cache.invalidate(self._program_key)
            self.cache.store_bytes(self._program_key, self.bytecode)
        return report
