"""Content-addressed bytecode cache: the incremental compilation layer.

The paper's lifelong model (Figure 4) keeps the IR alive between
compiler invocations precisely so later stages can *skip work that is
already done*.  This module applies that idea to the front of the
pipeline: per-translation-unit bytecode, produced after per-module
optimization, is stored under a SHA-256 key of

    (toolchain fingerprint, optimization level, source text)

so an unchanged TU costs one hash plus one bytecode deserialization
instead of a front-end run plus the whole -O pipeline.  This is sound
only because of two representation-equivalence guarantees:

* :func:`repro.bitcode.write_bytecode` is deterministic — equal modules
  serialize to equal bytes, so cache artifacts are stable; and
* the bytecode round-trip is lossless (including ``Instruction.loc``),
  so a module coming out of the cache is indistinguishable from the
  freshly compiled one — lint diagnostics, link results and native code
  are byte-for-byte the same.

Entries live one-per-file under a cache directory (``<key>.bc``), or in
memory when no directory is given.  Writes go through a temp file +
``os.replace`` so concurrent compilers never observe torn entries.
With ``max_bytes`` set the cache is bounded: every store enforces the
budget by evicting least-recently-used entries (recency is bumped on
every hit), and deletes are atomic and multi-process-safe — two
daemons evicting over one directory may race for the same victim, and
whoever loses the ``unlink`` simply finds the file already gone
(``cache.evict-race`` in the fault matrix pins this).  Lookup and
store latency plus the hit rate are tracked for ``-stats``, because a
shared cache serving a daemon is a performance citizen, not just a
correctness one.
Every entry is framed with a SHA-256 integrity digest, so *any*
corruption — a truncated file, a flipped bit, a partial disk write, an
entry written by a newer toolchain — is detected on read and handled
the same way: the entry is evicted and reported as a miss, and the
caller simply recompiles.  A corrupt cache can cost time; it can never
change the output (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Optional

from ..bitcode import read_bytecode, write_bytecode
from ..bitcode.writer import VERSION as BYTECODE_VERSION
from ..core.module import Module

#: Bump when the standard pipelines change in a way that alters the IR
#: they produce; it participates in every cache key, so old entries are
#: automatically ignored (and eventually evicted) after an upgrade.
PIPELINE_VERSION = 2

#: On-disk entry framing: magic + 16 bytes of SHA-256 over the payload.
_FRAME_MAGIC = b"lcC\x01"
_DIGEST_BYTES = 16


def _frame(payload: bytes) -> bytes:
    digest = hashlib.sha256(payload).digest()[:_DIGEST_BYTES]
    return _FRAME_MAGIC + digest + payload


def _unframe(data: bytes) -> Optional[bytes]:
    """The payload, or None if the frame or digest does not check out
    (foreign file, torn write, bit rot, newer frame format)."""
    head = len(_FRAME_MAGIC) + _DIGEST_BYTES
    if len(data) < head or data[:len(_FRAME_MAGIC)] != _FRAME_MAGIC:
        return None
    payload = data[head:]
    if hashlib.sha256(payload).digest()[:_DIGEST_BYTES] != data[len(_FRAME_MAGIC):head]:
        return None
    return payload


def _fault_hooks():
    """The fault-injection module, imported lazily so the driver does
    not pull the fuzz package in until a fault plan could exist."""
    from ..fuzz import faultinject

    return faultinject


def toolchain_fingerprint() -> str:
    """The version component of every cache key."""
    return f"lc-bc{BYTECODE_VERSION}-pipe{PIPELINE_VERSION}"


class BytecodeCache:
    """Keyed storage of serialized modules, with hit/miss accounting.

    ``directory=None`` keeps entries in memory (useful for tests and
    single-process batch runs); otherwise entries persist on disk and
    are shared between compiler processes.  The counter names mirror
    pass statistics so the cache plugs into the same ``-stats``
    reporting (see :meth:`statistics`).
    """

    name = "bytecode-cache"

    def __init__(self, directory: Optional[str] = None,
                 max_bytes: Optional[int] = None):
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        #: Byte budget for stored bytecode; None means unbounded.
        #: Enforced on every store by LRU eviction (the entry being
        #: stored is never its own victim).
        self.max_bytes = max_bytes
        self._memory: OrderedDict[str, bytes] = OrderedDict()
        self._memory_text: dict[str, str] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.lru_evictions = 0
        self.summary_hits = 0
        self.summary_misses = 0
        self.summary_stores = 0
        self.summary_evictions = 0
        self._lookup_ns = 0
        self._lookups = 0
        self._store_ns = 0
        self._stores_timed = 0

    # -- keys ---------------------------------------------------------------

    def key(self, source: str, level: int, tag: str = "tu") -> str:
        """Content-addressed key for one compilation.

        ``tag`` separates key spaces that share source text — per-TU
        entries (``"tu"``) vs whole-program entries (``"program"``,
        used by the lifelong session).
        """
        digest = hashlib.sha256()
        digest.update(toolchain_fingerprint().encode("utf-8"))
        digest.update(b"\0")
        digest.update(f"{tag}:{level}".encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    # -- raw bytes ----------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.bc")

    def load_bytes(self, key: str) -> Optional[bytes]:
        """The stored artifact, or None (counted as a miss).

        The integrity frame is verified here: an entry that fails it —
        torn write, bit flip, foreign or newer format — is evicted and
        reported as a miss, never handed to the decoder.

        A hit also bumps the entry's recency (in-memory order, or the
        file mtime on disk), which is what the LRU eviction of a
        bounded cache orders by.
        """
        started = time.perf_counter_ns()
        if self.directory is None:
            with self._lock:
                data = self._memory.get(key)
                if data is not None:
                    self._memory.move_to_end(key)
        else:
            try:
                with open(self._path(key), "rb") as handle:
                    data = handle.read()
            except OSError:
                data = None
            if data is not None:
                try:
                    os.utime(self._path(key))
                except OSError:
                    pass  # raced with an eviction; the bytes are ours
        if data is not None:
            # Injected corruption of the *stored entry* lands before the
            # frame check, exactly like real disk corruption would: the
            # digest catches any flip deterministically.
            hooks = _fault_hooks()
            data = hooks.mangle("cache.read", data)
            data = hooks.mangle("bytecode.corrupt", data)
            data = _unframe(data)
            if data is None:
                self.invalidate(key)
        with self._lock:
            if data is None:
                self.misses += 1
            else:
                self.hits += 1
            self._lookups += 1
            self._lookup_ns += time.perf_counter_ns() - started
        return data

    def store_bytes(self, key: str, data: bytes) -> None:
        """Store an artifact atomically (last writer wins); with
        ``max_bytes`` set, then evict LRU entries past the budget."""
        started = time.perf_counter_ns()
        data = _frame(data)
        if self.directory is None:
            with self._lock:
                self._memory[key] = data
                self._memory.move_to_end(key)
        else:
            fd, temp_path = tempfile.mkstemp(dir=self.directory,
                                             suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(temp_path, self._path(key))
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        self._enforce_budget(keep=key)
        with self._lock:
            self.stores += 1
            self._stores_timed += 1
            self._store_ns += time.perf_counter_ns() - started

    # -- bounded-cache eviction ---------------------------------------------

    def _enforce_budget(self, keep: Optional[str] = None) -> None:
        """Evict least-recently-used entries until under ``max_bytes``.

        Multi-process safe by construction: the scan tolerates files
        vanishing mid-walk and the delete tolerates losing the unlink
        race to a concurrent evictor (``cache.evict-race`` injects
        exactly that race) — either way the entry is gone, which is
        all eviction promises.  The just-stored entry (``keep``) is
        never its own victim, so a single oversized artifact still
        caches.
        """
        if self.max_bytes is None:
            return
        evicted = 0
        if self.directory is None:
            with self._lock:
                total = sum(len(blob) for blob in self._memory.values())
                for victim in list(self._memory):
                    if total <= self.max_bytes:
                        break
                    if victim == keep:
                        continue
                    total -= len(self._memory.pop(victim))
                    self._memory_text.pop(victim, None)
                    evicted += 1
        else:
            entries = []
            for name in os.listdir(self.directory):
                if not name.endswith(".bc"):
                    continue
                path = os.path.join(self.directory, name)
                try:
                    status = os.stat(path)
                except OSError:
                    continue  # vanished under us: a concurrent evictor
                entries.append((status.st_mtime_ns, status.st_size, path))
            total = sum(size for _, size, _ in entries)
            entries.sort()
            keep_path = self._path(keep) if keep is not None else None
            hooks = _fault_hooks()
            for _, size, path in entries:
                if total <= self.max_bytes:
                    break
                if path == keep_path:
                    continue
                # Injected race: a concurrent daemon deletes the victim
                # between our scan and our unlink.
                hooks.race_delete("cache.evict-race", path)
                try:
                    os.unlink(path)
                except OSError:
                    pass  # lost the race; the entry is gone either way
                try:
                    os.unlink(path[:-len(".bc")] + ".json")
                except OSError:
                    pass
                total -= size
                evicted += 1
        if evicted:
            with self._lock:
                self.lru_evictions += evicted

    def invalidate(self, key: str) -> bool:
        """Drop one entry (used by the reoptimizer when it rewrites the
        IR an entry was derived from); True if an entry existed."""
        if self.directory is None:
            existed = self._memory.pop(key, None) is not None
        else:
            try:
                os.unlink(self._path(key))
                existed = True
            except OSError:
                existed = False
        if existed:
            with self._lock:
                self.evictions += 1
        return existed

    # -- sidecar text artifacts ---------------------------------------------

    def _text_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def load_text(self, key: str) -> Optional[str]:
        """A sidecar artifact stored next to the bytecode (``<key>.json``)
        — analysis summaries attached per the paper's section 3.3."""
        if self.directory is None:
            text = self._memory_text.get(key)
        else:
            try:
                with open(self._text_path(key), "r",
                          encoding="utf-8") as handle:
                    text = handle.read()
            except OSError:
                text = None
        if text is not None:
            text = _fault_hooks().mangle_text("sidecar.corrupt", text)
        with self._lock:
            if text is None:
                self.summary_misses += 1
            else:
                self.summary_hits += 1
        return text

    def store_text(self, key: str, text: str) -> None:
        """Store a sidecar artifact atomically (last writer wins)."""
        if self.directory is None:
            self._memory_text[key] = text
        else:
            fd, temp_path = tempfile.mkstemp(dir=self.directory,
                                             suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(temp_path, self._text_path(key))
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        with self._lock:
            self.summary_stores += 1

    def evict_text(self, key: str) -> bool:
        """Drop one sidecar (used when its content is unparseable —
        e.g. written by a newer toolchain); True if one existed."""
        if self.directory is None:
            existed = self._memory_text.pop(key, None) is not None
        else:
            try:
                os.unlink(self._text_path(key))
                existed = True
            except OSError:
                existed = False
        if existed:
            with self._lock:
                self.summary_evictions += 1
        return existed

    # -- modules ------------------------------------------------------------

    def load(self, key: str) -> Optional[Module]:
        """Deserialize a cached module; a corrupted entry — including
        bytecode written by a *newer* toolchain version, which decodes
        to :class:`~repro.bitcode.BytecodeError` — is evicted and
        reported as a miss, so callers simply recompile."""
        data = self.load_bytes(key)
        if data is None:
            return None
        # Injected truncation lands *after* the frame check, driving the
        # decoder's own error path (every strict prefix of valid
        # bytecode raises BytecodeError — tests/test_robustness.py).
        data = _fault_hooks().mangle("bytecode.truncate", data)
        try:
            return read_bytecode(data)
        except Exception:
            # BytecodeError (truncation, corruption, unsupported newer
            # version) and anything else alike: the load_bytes hit was
            # illusory — reclassify it and evict.
            with self._lock:
                self.hits -= 1
                self.misses += 1
            self.invalidate(key)
            return None

    def store(self, key: str, module: Module) -> bytes:
        """Serialize and store a module; returns the bytes (names kept,
        so cached modules lint identically to fresh ones)."""
        data = write_bytecode(module, strip_names=False)
        self.store_bytes(key, data)
        return data

    # -- observability ------------------------------------------------------

    def statistics(self) -> dict[str, int]:
        """Counters in the shape the ``-stats`` machinery expects.

        Besides the raw hit/miss/store/eviction counts this derives the
        rates a daemon operator actually watches: the hit percentage
        and the average lookup and store latency in microseconds.
        """
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "cache-hits": self.hits,
                "cache-misses": self.misses,
                "cache-stores": self.stores,
                "cache-evictions": self.evictions,
                "cache-lru-evictions": self.lru_evictions,
                "cache-hit-rate-pct": (100 * self.hits // lookups
                                       if lookups else 0),
                "cache-lookup-avg-us": (self._lookup_ns // self._lookups
                                        // 1000 if self._lookups else 0),
                "cache-store-avg-us": (self._store_ns // self._stores_timed
                                       // 1000 if self._stores_timed else 0),
                "summary-hits": self.summary_hits,
                "summary-misses": self.summary_misses,
                "summary-stores": self.summary_stores,
                "summary-evictions": self.summary_evictions,
            }

    def __len__(self) -> int:
        if self.directory is None:
            return len(self._memory)
        return sum(1 for entry in os.listdir(self.directory)
                   if entry.endswith(".bc"))
