"""Transactional pass execution: crash containment for the optimizer.

The paper's lifelong story (sections 2.4, 4.1.2) has the optimizer
running forever — at link time, at install time, in the idle-time
reoptimizer.  A component that runs forever *will* eventually meet a
pass bug, a corrupted artifact, or a pathological input; this module
makes that an isolable, reportable event instead of a process abort.

Every transform pass runs inside a **transaction**:

1. snapshot the module (a bytecode round-trip — the cheapest faithful
   deep copy in the system, and deterministic);
2. run the pass under a step/time budget (a watchdog preempts runaway
   passes from inside);
3. verify the result.

On an exception, a verifier failure, or budget exhaustion the module is
rolled back to the snapshot, the pass is marked *poisoned* for that
function or module, a structured :class:`CrashReport` (with a
bugpoint-reduced IR testcase) is recorded, and the pipeline continues —
semantics preserved, just less optimized.  A failing *function* pass is
retried once at function granularity so only the guilty function loses
its optimization; a failing *module* pass is bisected to name the
function that kills it before being skipped.  The
:class:`FaultPolicy` owns the knobs and the ``-stats`` counters
(``passes.rolled_back``, ``crashes.reported``, ``fallbacks.taken``).

With ``translation_validate`` on, step 3 grows a fourth obligation:
every function a *function* pass changed is checked for refinement
against the pre-pass snapshot (:mod:`repro.tvalid`).  A refinement
violation is handled exactly like a crash — rollback, per-function
retry, poison, structured report with a bugpoint-reduced testcase that
still fails validation — except the report also carries the concrete
counterexample input.  Module (interprocedural) passes are exempt:
their rewrites may be justified by call-site context that per-function
refinement cannot see (docs/ANALYSIS.md).
"""

from __future__ import annotations

import json
import os
import sys
import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Optional

from ..bitcode import read_bytecode, write_bytecode
from ..core.module import Module
from ..core.verifier import verify_function, verify_module
from ..transforms.passmanager import PassManager
from ..tvalid.validate import (
    FAILED as _VALIDATION_FAILED, TranslationValidationError,
    TranslationValidator, ValidationConfig,
)


class PassBudgetExceeded(Exception):
    """A pass ran past its step or wall-clock budget."""


def snapshot_module(module: Module) -> bytes:
    """The transaction snapshot: deterministic serialized bytecode."""
    return write_bytecode(module, strip_names=False)


def restore_module(module: Module, snapshot: bytes) -> None:
    """Roll ``module`` back to ``snapshot``, in place.

    Callers all over the driver hold references to the module object
    itself, so rollback replaces its *contents* (globals, functions,
    named types) rather than the object.
    """
    restored = read_bytecode(snapshot)
    module.globals = restored.globals
    module.functions = restored.functions
    module.named_types = restored.named_types
    for symbol in (*module.globals.values(), *module.functions.values()):
        symbol.parent = module


class _Watchdog:
    """Preempt a runaway pass from inside, via the trace hook.

    The trace function fires on every Python function call made by the
    pass; it counts those as *steps* and checks the wall clock every
    256 of them.  Over budget, it raises :class:`PassBudgetExceeded`
    inside the traced frame, which unwinds out of the pass and into the
    surrounding transaction.  Thread-local (``sys.settrace``), so
    parallel TU compiles budget independently.
    """

    def __init__(self, time_budget: float, step_budget: int):
        self.deadline = time.monotonic() + time_budget
        self.step_budget = step_budget
        self.steps = 0
        self._previous = None

    def _trace(self, frame, event, arg):
        self.steps += 1
        if self.steps > self.step_budget:
            raise PassBudgetExceeded(
                f"step budget {self.step_budget} exhausted")
        if self.steps % 256 == 0 and time.monotonic() > self.deadline:
            raise PassBudgetExceeded("time budget exhausted")
        return None  # no per-line tracing: call events only

    def __enter__(self):
        self._previous = sys.gettrace()
        sys.settrace(self._trace)
        return self

    def __exit__(self, *exc_info):
        sys.settrace(self._previous)
        return False


@dataclass
class CrashReport:
    """Everything a human (or the fuzzer) needs to triage one crash."""

    pass_name: str
    module: str
    function: Optional[str]          # guilty function, when identified
    error_type: str
    error_message: str
    traceback: str
    reduced_ir: Optional[str] = None  # bugpoint-reduced testcase (.ll)
    reduced_instructions: Optional[int] = None
    path: Optional[str] = None       # where the report was written

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "module": self.module,
            "function": self.function,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "traceback": self.traceback,
            "reduced_instructions": self.reduced_instructions,
        }

    def describe(self) -> str:
        where = f" in function @{self.function}" if self.function else ""
        return (f"pass {self.pass_name} crashed{where}: "
                f"{self.error_type}: {self.error_message}")


@dataclass
class FaultPolicy:
    """Knobs + shared counters for fault-tolerant pipeline execution.

    One policy instance is threaded through a whole driver invocation
    (all TUs, all pipeline runs), so poisoning decisions and counters
    aggregate across the build.  Thread-safe: parallel TU compiles
    share one policy.
    """

    crash_dir: Optional[str] = None
    retry_function_granularity: bool = True
    #: Passes newly poisoned in one pipeline attempt beyond which the
    #: driver falls back a level (the -O2 -> -O1 -> -O0 ladder).
    max_poisoned_passes: int = 2
    pass_time_budget: float = 10.0
    pass_step_budget: int = 5_000_000
    reduce_testcases: bool = True
    reduce_time_budget: float = 2.0
    reduce_step_budget: int = 300_000
    reduce_rounds: int = 6
    verify_after_each: bool = True
    #: check refinement of every function a function pass changes
    #: (--translation-validate); violations roll back like crashes
    translation_validate: bool = False
    validation_config: Optional[ValidationConfig] = None

    crash_reports: list = field(default_factory=list)

    def __post_init__(self):
        import threading

        self._lock = threading.Lock()
        #: (pass, module, function-or-None) triples banned from running.
        self._poisoned: set = set()
        self._validator: Optional[TranslationValidator] = None
        self._counters = {
            "passes.rolled_back": 0,
            "crashes.reported": 0,
            "fallbacks.taken": 0,
            "passes.poisoned": 0,
            "passes.skipped": 0,
            "retries.function": 0,
            "link.retries": 0,
            "validations.run": 0,
            "validations.passed": 0,
            "validations.failed": 0,
            "validations.skipped-by-size": 0,
            "validations.skipped-unsupported": 0,
            "synth.rules-loaded": 0,
        }

    # -- counters -----------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: int) -> None:
        """Set a level-style counter (idempotent across pipeline builds)."""
        with self._lock:
            self._counters[name] = value

    def statistics(self) -> dict[str, int]:
        """Counters in the shape the ``-stats`` machinery expects."""
        with self._lock:
            return dict(self._counters)

    name = "fault-policy"  # the -stats source label

    # -- translation validation ---------------------------------------------

    def validator(self) -> TranslationValidator:
        """The (lazily built, shared) refinement checker."""
        with self._lock:
            if self._validator is None:
                self._validator = TranslationValidator(self.validation_config)
            return self._validator

    # -- poisoning ----------------------------------------------------------

    def poison(self, pass_name: str, module: str,
               function: Optional[str] = None) -> None:
        with self._lock:
            self._poisoned.add((pass_name, module, function))
        self.count("passes.poisoned")

    def is_poisoned(self, pass_name: str, module: str,
                    function: Optional[str] = None) -> bool:
        with self._lock:
            if (pass_name, module, None) in self._poisoned:
                return True
            return (function is not None
                    and (pass_name, module, function) in self._poisoned)

    @property
    def poisoned_count(self) -> int:
        with self._lock:
            return len(self._poisoned)

    # -- crash reports ------------------------------------------------------

    def record(self, report: CrashReport) -> None:
        with self._lock:
            self.crash_reports.append(report)
            ordinal = len(self.crash_reports)
        self.count("crashes.reported")
        if self.crash_dir is not None:
            try:
                os.makedirs(self.crash_dir, exist_ok=True)
                stem = f"crash-{ordinal:03d}-{report.pass_name}"
                path = os.path.join(self.crash_dir, stem + ".json")
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(report.to_dict(), handle, indent=2,
                              sort_keys=True)
                    handle.write("\n")
                if report.reduced_ir is not None:
                    with open(os.path.join(self.crash_dir, stem + ".ll"),
                              "w", encoding="utf-8") as handle:
                        handle.write(report.reduced_ir)
                report.path = path
            except OSError:
                pass  # reporting must never become a second crash


def _pass_name(pass_obj) -> str:
    return getattr(pass_obj, "name", type(pass_obj).__name__)


def _fresh_pass(pass_obj):
    """A clean instance for probing (passes may carry run state).

    A pass with construction-time configuration (e.g. InstCombine's
    rule set) exposes ``fresh()`` so the probe reproduces the *same*
    behaviour, not the default one.
    """
    fresh = getattr(pass_obj, "fresh", None)
    if callable(fresh):
        try:
            return fresh()
        except Exception:
            pass
    try:
        return type(pass_obj)()
    except Exception:
        return pass_obj


def _validatable(pass_obj) -> bool:
    """Translation validation applies to *function* passes: a module
    pass may rewrite a function using call-site facts (IPCP
    specializing a body for its only caller), which per-function
    refinement cannot justify."""
    return (hasattr(pass_obj, "run_on_function")
            and not hasattr(pass_obj, "run_on_module"))


def _run_pass_plain(pass_obj, module: Module) -> bool:
    if hasattr(pass_obj, "run_on_module"):
        return pass_obj.run_on_module(module)
    changed = False
    for function in list(module.defined_functions()):
        if pass_obj.run_on_function(function):
            changed = True
    return changed


class TransactionalPassManager(PassManager):
    """A :class:`PassManager` in which every pass is a transaction.

    ``run`` never raises for a pass failure: the failing pass is rolled
    back, poisoned, and reported through the policy, and the remaining
    passes still run.  (Snapshot serialization itself failing would
    mean the *input* module is broken; that still raises, by design.)
    """

    def __init__(self, policy: FaultPolicy):
        super().__init__(verify_each=False)
        self.policy = policy
        #: Passes module-poisoned during this manager's run() calls —
        #: what the degradation ladder consults.
        self.poisoned_in_run = 0

    def run(self, module: Module) -> bool:
        changed = False
        for pass_obj in self.passes:
            name = _pass_name(pass_obj)
            if self.policy.is_poisoned(name, module.name):
                self.policy.count("passes.skipped")
                continue
            start = time.perf_counter()
            if self._transact(pass_obj, name, module):
                changed = True
            self.timings.record(name, time.perf_counter() - start)
        return changed

    # -- one transaction ----------------------------------------------------

    def _transact(self, pass_obj, name: str, module: Module) -> bool:
        policy = self.policy
        snapshot = snapshot_module(module)
        try:
            with _Watchdog(policy.pass_time_budget, policy.pass_step_budget):
                self._check_injection(name)
                changed = self._run_guarded(pass_obj, name, module)
            if policy.verify_after_each:
                verify_module(module)
            if (changed and policy.translation_validate
                    and _validatable(pass_obj)):
                self._validate_changes(name, module, snapshot)
            return changed
        except Exception as error:
            restore_module(module, snapshot)
            policy.count("passes.rolled_back")
            return self._contain(pass_obj, name, module, snapshot, error)

    def _validate_changes(self, name: str, module: Module, snapshot: bytes,
                          only_function: Optional[str] = None) -> None:
        """Check refinement of every changed function against the
        snapshot; count verdicts; raise on the first violation."""
        policy = self.policy
        before = read_bytecode(snapshot)
        failure = None
        for result in policy.validator().validate(before, module,
                                                  only_function):
            if result.status in (_VALIDATION_FAILED, "passed"):
                policy.count("validations.run")
                policy.count(f"validations.{result.status}")
            else:
                policy.count(f"validations.{result.status}")
            if result.status == _VALIDATION_FAILED and failure is None:
                failure = result
        if failure is not None:
            raise TranslationValidationError(name, failure)

    def _run_guarded(self, pass_obj, name: str, module: Module) -> bool:
        """Run the pass, honouring per-function poison marks."""
        if hasattr(pass_obj, "run_on_module"):
            return pass_obj.run_on_module(module)
        changed = False
        for function in list(module.defined_functions()):
            if self.policy.is_poisoned(name, module.name, function.name):
                continue
            if pass_obj.run_on_function(function):
                changed = True
        return changed

    @staticmethod
    def _check_injection(name: str) -> None:
        from ..fuzz import faultinject

        faultinject.check(f"pass:{name}")

    # -- containment --------------------------------------------------------

    def _contain(self, pass_obj, name: str, module: Module,
                 snapshot: bytes, error: Exception) -> bool:
        """The degraded path: retry, poison, report.  Returns whether
        the retry changed the module."""
        policy = self.policy
        changed = False
        guilty: Optional[str] = None
        is_function_pass = (hasattr(pass_obj, "run_on_function")
                            and not hasattr(pass_obj, "run_on_module"))
        if is_function_pass and policy.retry_function_granularity:
            policy.count("retries.function")
            changed, guilty_functions = self._retry_per_function(
                pass_obj, name, module)
            for function_name in guilty_functions:
                policy.poison(name, module.name, function_name)
                self.poisoned_in_run += 1
            guilty = guilty_functions[0] if guilty_functions else None
        else:
            guilty = self._bisect_module_pass(pass_obj, snapshot)
            policy.poison(name, module.name)
            self.poisoned_in_run += 1
        report = CrashReport(
            pass_name=name, module=module.name, function=guilty,
            error_type=type(error).__name__, error_message=str(error),
            traceback="".join(_traceback.format_exception(
                type(error), error, error.__traceback__)),
        )
        if policy.reduce_testcases and self._is_deterministic(error):
            reduced = self._reduce_testcase(
                pass_obj, snapshot,
                validate=isinstance(error, TranslationValidationError))
            if reduced is not None:
                from ..core import print_module

                report.reduced_ir = print_module(reduced)
                report.reduced_instructions = sum(
                    f.instruction_count()
                    for f in reduced.defined_functions())
        policy.record(report)
        return changed

    @staticmethod
    def _is_deterministic(error: Exception) -> bool:
        """Budget blowouts and one-shot injected faults do not
        reproduce on a re-run, so bisecting/reducing them is wasted
        work (and the reduction predicate would never hold)."""
        if isinstance(error, PassBudgetExceeded):
            return False
        from ..fuzz.faultinject import InjectedFault

        return not isinstance(error, InjectedFault)

    def _retry_per_function(self, pass_obj, name: str,
                            module: Module) -> tuple[bool, list[str]]:
        """Re-run a failed function pass one function at a time; only
        the functions that kill it stay unoptimized (and poisoned)."""
        policy = self.policy
        changed = False
        guilty: list[str] = []
        for function_name in [f.name for f in module.defined_functions()]:
            function = module.functions.get(function_name)
            if function is None or function.is_declaration:
                continue
            if policy.is_poisoned(name, module.name, function_name):
                continue
            snapshot = snapshot_module(module)
            try:
                with _Watchdog(policy.pass_time_budget,
                               policy.pass_step_budget):
                    function_changed = pass_obj.run_on_function(function)
                if policy.verify_after_each:
                    verify_function(function)
                if function_changed and policy.translation_validate:
                    self._validate_changes(name, module, snapshot,
                                           only_function=function_name)
                changed |= function_changed
            except Exception:
                restore_module(module, snapshot)
                guilty.append(function_name)
        return changed, guilty

    def _bisect_module_pass(self, pass_obj, snapshot: bytes) -> Optional[str]:
        """Name the function that kills a module-level pass: run a
        fresh instance over one-function-at-a-time skeletons of the
        snapshot (every other body dropped) and report the first that
        still crashes it.  Attribution only — the pass stays poisoned
        module-wide either way."""
        policy = self.policy
        if not self._is_deterministic_probe_worthwhile():
            return None
        try:
            names = [f.name
                     for f in read_bytecode(snapshot).defined_functions()]
        except Exception:
            return None
        for function_name in names:
            try:
                probe = read_bytecode(snapshot)
                for other in list(probe.defined_functions()):
                    if other.name != function_name:
                        other.delete_body()
                with _Watchdog(policy.reduce_time_budget,
                               policy.reduce_step_budget):
                    _run_pass_plain(_fresh_pass(pass_obj), probe)
                verify_module(probe)
            except PassBudgetExceeded:
                continue
            except Exception:
                return function_name
        return None

    def _is_deterministic_probe_worthwhile(self) -> bool:
        return self.policy.reduce_testcases

    def _reduce_testcase(self, pass_obj, snapshot: bytes,
                         validate: bool = False) -> Optional[Module]:
        """Shrink the snapshot to a minimal module that still crashes
        the pass (reusing bugpoint's delta reduction).  For a
        validation failure the interestingness predicate is "the pass
        still miscompiles this", so the reduced testcase ships with a
        replayable refinement violation, not just a crash."""
        from ..fuzz.bugpoint import reduce_module

        policy = self.policy

        def crashes(candidate: Module) -> bool:
            try:
                pre_pass = snapshot_module(candidate) if validate else None
                with _Watchdog(policy.reduce_time_budget,
                               policy.reduce_step_budget):
                    _run_pass_plain(_fresh_pass(pass_obj), candidate)
                verify_module(candidate)
            except PassBudgetExceeded:
                return False
            except Exception:
                return True
            if validate:
                try:
                    results = policy.validator().validate(
                        read_bytecode(pre_pass), candidate)
                except Exception:
                    return False
                return any(r.status == _VALIDATION_FAILED for r in results)
            return False

        try:
            return reduce_module(read_bytecode(snapshot), crashes,
                                 max_rounds=policy.reduce_rounds)
        except Exception:
            return None
