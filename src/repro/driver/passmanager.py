"""Transactional pass execution: crash containment for the optimizer.

The paper's lifelong story (sections 2.4, 4.1.2) has the optimizer
running forever — at link time, at install time, in the idle-time
reoptimizer.  A component that runs forever *will* eventually meet a
pass bug, a corrupted artifact, or a pathological input; this module
makes that an isolable, reportable event instead of a process abort.

Every transform pass runs inside a **transaction**, at the granularity
matching its contract:

* A **function pass** is a sequence of per-function transactions.  The
  snapshot is the function's printed text (cached across passes, so an
  untouched function is snapshotted once, not once per pass); the pass
  runs under a step/time budget (a watchdog preempts runaway passes
  from inside); then the post-pass text is compared against the
  snapshot and re-verification plus translation validation run *only
  when the digest actually moved*.  A function the pass honestly
  reports not changing costs nothing at all — the changed flag is kept
  honest project-wide by the ``verify_each`` digest audit
  (:class:`repro.transforms.passmanager.ChangedFlagLie`) and the fuzzer.
  On a failure, only the guilty function is rolled back — rebuilt from
  its snapshot text via the linker's cross-module graft
  (``materialize_function``) — and the sweep continues with the next
  function, so one poisoned function no longer costs the whole module
  its optimization, and no full-module serialization happens on the
  happy path at all.

* A **module pass** transacts over full-module bytecode (the cheapest
  faithful deep copy in the system, and deterministic).  The pre-pass
  snapshot is reused from the previous transaction when nothing has
  changed in between, and re-verification is skipped when the post-pass
  serialization is byte-identical to the snapshot.

On an exception, a verifier failure, or budget exhaustion the failed
unit is rolled back, the pass is marked *poisoned* for that function or
module, a structured :class:`CrashReport` (with a bugpoint-reduced IR
testcase) is recorded, and the pipeline continues — semantics
preserved, just less optimized.  A failing *module* pass is bisected to
name the function that kills it before being skipped.  The
:class:`FaultPolicy` owns the knobs and the ``-stats`` counters
(``passes.rolled_back``, ``crashes.reported``, ``fallbacks.taken``).

With ``translation_validate`` on, every function a *function* pass
actually changed is checked for refinement against its snapshot text
(:mod:`repro.tvalid`), co-executed in a carrier module that shares the
live module's globals and other functions.  A refinement violation is
handled exactly like a crash — rollback, poison, structured report with
a bugpoint-reduced testcase that still fails validation — except the
report also carries the concrete counterexample input.  Module
(interprocedural) passes are exempt: their rewrites may be justified by
call-site context that per-function refinement cannot see
(docs/ANALYSIS.md).

Rollback itself is trusted machinery: like snapshot serialization, a
failure *inside* restore still raises, by design — it would mean the
pre-pass state cannot be reproduced, which no amount of containment can
paper over.
"""

from __future__ import annotations

import json
import os
import sys
import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Optional

from ..bitcode import read_bytecode, write_bytecode
from ..core.module import Module
from ..core.printer import print_function
from ..core.verifier import verify_function, verify_module
from ..transforms.passmanager import PassManager, PassTimings
from ..tvalid.validate import (
    FAILED as _VALIDATION_FAILED, TranslationValidationError,
    TranslationValidator, ValidationConfig,
)


class PassBudgetExceeded(Exception):
    """A pass ran past its step or wall-clock budget."""


def snapshot_module(module: Module) -> bytes:
    """The transaction snapshot: deterministic serialized bytecode."""
    return write_bytecode(module, strip_names=False)


def restore_module(module: Module, snapshot: bytes) -> None:
    """Roll ``module`` back to ``snapshot``, in place.

    Callers all over the driver hold references to the module object
    itself, so rollback replaces its *contents* (globals, functions,
    named types) rather than the object.
    """
    restored = read_bytecode(snapshot)
    module.globals = restored.globals
    module.functions = restored.functions
    module.named_types = restored.named_types
    for symbol in (*module.globals.values(), *module.functions.values()):
        symbol.parent = module


def snapshot_function(function) -> str:
    """The per-function transaction snapshot: the function's text.

    Text rather than a structural clone because it is what the digest
    comparison needs anyway, it costs nothing to keep across passes,
    and the print -> parse round trip is byte-exact (pinned by the
    differential fuzzer), so it can faithfully rebuild the function on
    the rare rollback path.
    """
    return print_function(function)


def restore_function(module: Module, function, snapshot: str) -> None:
    """Roll one function back to its snapshot text, in place.

    The snapshot is re-parsed in ``module``'s symbol/type space
    (:func:`repro.linker.linker.materialize_function`) and its body
    transplanted into the live function object, so every call site and
    vtable entry referencing the function stays valid.
    """
    from ..linker.linker import materialize_function

    rebuilt = materialize_function(module, snapshot)
    function.delete_body()
    function.args = rebuilt.args
    for arg in function.args:
        arg.parent = function
    function.blocks = rebuilt.blocks
    for block in function.blocks:
        block.parent = function
    rebuilt.args = []
    rebuilt.blocks = []


class _Watchdog:
    """Preempt a runaway pass from inside, via the trace hook.

    The trace function fires on every Python function call made by the
    pass; it counts those as *steps* and checks the wall clock every
    256 of them.  Over budget, it raises :class:`PassBudgetExceeded`
    inside the traced frame, which unwinds out of the pass and into the
    surrounding transaction.  Thread-local (``sys.settrace``), so
    parallel TU compiles budget independently.
    """

    def __init__(self, time_budget: float, step_budget: int):
        self.deadline = time.monotonic() + time_budget
        self.step_budget = step_budget
        self.steps = 0
        self._previous = None

    def _trace(self, frame, event, arg):
        self.steps += 1
        if self.steps > self.step_budget:
            raise PassBudgetExceeded(
                f"step budget {self.step_budget} exhausted")
        if self.steps % 256 == 0 and time.monotonic() > self.deadline:
            raise PassBudgetExceeded("time budget exhausted")
        return None  # no per-line tracing: call events only

    def __enter__(self):
        self._previous = sys.gettrace()
        sys.settrace(self._trace)
        return self

    def __exit__(self, *exc_info):
        sys.settrace(self._previous)
        return False


@dataclass
class CrashReport:
    """Everything a human (or the fuzzer) needs to triage one crash."""

    pass_name: str
    module: str
    function: Optional[str]          # guilty function, when identified
    error_type: str
    error_message: str
    traceback: str
    reduced_ir: Optional[str] = None  # bugpoint-reduced testcase (.ll)
    reduced_instructions: Optional[int] = None
    path: Optional[str] = None       # where the report was written

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "module": self.module,
            "function": self.function,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "traceback": self.traceback,
            "reduced_instructions": self.reduced_instructions,
        }

    def describe(self) -> str:
        where = f" in function @{self.function}" if self.function else ""
        return (f"pass {self.pass_name} crashed{where}: "
                f"{self.error_type}: {self.error_message}")


@dataclass
class FaultPolicy:
    """Knobs + shared counters for fault-tolerant pipeline execution.

    One policy instance is threaded through a whole driver invocation
    (all TUs, all pipeline runs), so poisoning decisions and counters
    aggregate across the build.  Thread-safe: parallel TU compiles
    share one policy.
    """

    crash_dir: Optional[str] = None
    retry_function_granularity: bool = True
    #: Passes newly poisoned in one pipeline attempt beyond which the
    #: driver falls back a level (the -O2 -> -O1 -> -O0 ladder).
    max_poisoned_passes: int = 2
    pass_time_budget: float = 10.0
    pass_step_budget: int = 5_000_000
    reduce_testcases: bool = True
    reduce_time_budget: float = 2.0
    reduce_step_budget: int = 300_000
    reduce_rounds: int = 6
    verify_after_each: bool = True
    #: check refinement of every function a function pass changes
    #: (--translation-validate); violations roll back like crashes
    translation_validate: bool = False
    validation_config: Optional[ValidationConfig] = None
    #: Absolute ``time.monotonic()`` deadline for the whole build this
    #: policy governs (lc-serverd threads each request's deadline in
    #: here).  Per-pass watchdog time budgets are capped to the time
    #: remaining, so a deadline-pressed compile sheds optimization —
    #: budget-exceeded passes roll back and the ladder degrades —
    #: instead of having to be killed from outside.
    deadline: Optional[float] = None

    crash_reports: list = field(default_factory=list)

    def __post_init__(self):
        import threading

        self._lock = threading.Lock()
        #: (pass, module, function-or-None) triples banned from running.
        self._poisoned: set = set()
        self._validator: Optional[TranslationValidator] = None
        self._counters = {
            "passes.rolled_back": 0,
            "crashes.reported": 0,
            "fallbacks.taken": 0,
            "passes.poisoned": 0,
            "passes.skipped": 0,
            "retries.function": 0,
            "link.retries": 0,
            "validations.run": 0,
            "validations.passed": 0,
            "validations.failed": 0,
            "validations.skipped-by-size": 0,
            "validations.skipped-unsupported": 0,
            "synth.rules-loaded": 0,
        }

    # -- counters -----------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: int) -> None:
        """Set a level-style counter (idempotent across pipeline builds)."""
        with self._lock:
            self._counters[name] = value

    def statistics(self) -> dict[str, int]:
        """Counters in the shape the ``-stats`` machinery expects."""
        with self._lock:
            return dict(self._counters)

    name = "fault-policy"  # the -stats source label

    def time_budget(self, budget: Optional[float] = None) -> float:
        """A watchdog time budget, capped by the remaining deadline.

        With no :attr:`deadline` this is just the configured budget.
        Past the deadline it bottoms out at a tiny positive slice, so
        a pass still *starts* (and immediately trips the watchdog,
        rolling back cleanly) rather than dividing by zero somewhere.
        """
        if budget is None:
            budget = self.pass_time_budget
        if self.deadline is None:
            return budget
        return min(budget, max(0.05, self.deadline - time.monotonic()))

    # -- translation validation ---------------------------------------------

    def validator(self) -> TranslationValidator:
        """The (lazily built, shared) refinement checker."""
        with self._lock:
            if self._validator is None:
                self._validator = TranslationValidator(self.validation_config)
            return self._validator

    # -- poisoning ----------------------------------------------------------

    def poison(self, pass_name: str, module: str,
               function: Optional[str] = None) -> None:
        with self._lock:
            self._poisoned.add((pass_name, module, function))
        self.count("passes.poisoned")

    def is_poisoned(self, pass_name: str, module: str,
                    function: Optional[str] = None) -> bool:
        with self._lock:
            if (pass_name, module, None) in self._poisoned:
                return True
            return (function is not None
                    and (pass_name, module, function) in self._poisoned)

    @property
    def poisoned_count(self) -> int:
        with self._lock:
            return len(self._poisoned)

    # -- crash reports ------------------------------------------------------

    def record(self, report: CrashReport) -> None:
        with self._lock:
            self.crash_reports.append(report)
            ordinal = len(self.crash_reports)
        self.count("crashes.reported")
        if self.crash_dir is not None:
            try:
                os.makedirs(self.crash_dir, exist_ok=True)
                stem = f"crash-{ordinal:03d}-{report.pass_name}"
                path = os.path.join(self.crash_dir, stem + ".json")
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(report.to_dict(), handle, indent=2,
                              sort_keys=True)
                    handle.write("\n")
                if report.reduced_ir is not None:
                    with open(os.path.join(self.crash_dir, stem + ".ll"),
                              "w", encoding="utf-8") as handle:
                        handle.write(report.reduced_ir)
                report.path = path
            except OSError:
                pass  # reporting must never become a second crash


def _pass_name(pass_obj) -> str:
    return getattr(pass_obj, "name", type(pass_obj).__name__)


def _fresh_pass(pass_obj):
    """A clean instance for probing (passes may carry run state).

    A pass with construction-time configuration (e.g. InstCombine's
    rule set) exposes ``fresh()`` so the probe reproduces the *same*
    behaviour, not the default one.
    """
    fresh = getattr(pass_obj, "fresh", None)
    if callable(fresh):
        try:
            return fresh()
        except Exception:
            pass
    try:
        return type(pass_obj)()
    except Exception:
        return pass_obj


def _run_pass_plain(pass_obj, module: Module) -> bool:
    if hasattr(pass_obj, "run_on_module"):
        return pass_obj.run_on_module(module)
    changed = False
    for function in list(module.defined_functions()):
        if pass_obj.run_on_function(function):
            changed = True
    return changed


class TransactionalPassManager(PassManager):
    """A :class:`PassManager` in which every pass is a transaction.

    ``run`` never raises for a pass failure: the failing pass is rolled
    back, poisoned, and reported through the policy, and the remaining
    passes still run.  (Snapshot serialization itself failing would
    mean the *input* module is broken; that still raises, by design.)
    """

    def __init__(self, policy: FaultPolicy,
                 timings: Optional[PassTimings] = None):
        super().__init__(verify_each=False, timings=timings)
        self.policy = policy
        #: Passes module-poisoned during this manager's run() calls —
        #: what the degradation ladder consults.
        self.poisoned_in_run = 0
        #: Per-function snapshot texts describing the module's current
        #: state: the change-detection digest *and* the rollback source.
        self._snapshots: dict[str, str] = {}
        #: Full-module bytecode of the current state, when still valid;
        #: lets consecutive module passes share one serialization.
        self._module_snapshot: Optional[bytes] = None

    def run(self, module: Module) -> bool:
        # The caches only describe mutations made through this manager;
        # between run() calls other components may touch the module.
        self._snapshots.clear()
        self._module_snapshot = None
        changed = False
        for pass_obj in self.passes:
            name = _pass_name(pass_obj)
            if self.policy.is_poisoned(name, module.name):
                self.policy.count("passes.skipped")
                continue
            start = time.perf_counter()
            if hasattr(pass_obj, "run_on_module"):
                this_changed = self._transact_module_pass(
                    pass_obj, name, module)
            else:
                this_changed = self._transact_function_pass(
                    pass_obj, name, module)
            # Containment work (rollback, bisection, reduction) bills
            # to the pass that caused it.
            self.timings.record(name, time.perf_counter() - start)
            changed |= this_changed
        return changed

    # -- function-pass transactions ----------------------------------------

    def _transact_function_pass(self, pass_obj, name: str,
                                module: Module) -> bool:
        policy = self.policy
        changed = False
        guilty: list[str] = []
        first_error: Optional[Exception] = None
        # With per-function retry disabled the whole pass is one
        # transaction: track what it changed so a failure undoes it all.
        undo_log = ([] if not policy.retry_function_granularity else None)
        try:
            self._check_injection(name)
        except Exception as error:
            # The armed fault for this pass's site fires before any
            # function is touched, so there is nothing to roll back;
            # the per-function sweep below doubles as the retry.
            policy.count("passes.rolled_back")
            first_error = error
        for function in list(module.defined_functions()):
            fn_name = function.name
            if policy.is_poisoned(name, module.name, fn_name):
                continue
            snapshot = self._snapshots.get(fn_name)
            if snapshot is None:
                snapshot = snapshot_function(function)
                self._snapshots[fn_name] = snapshot
            try:
                with _Watchdog(policy.time_budget(),
                               policy.pass_step_budget):
                    claimed = pass_obj.run_on_function(function)
                if not claimed:
                    # An honest "no change" costs nothing.  The flag is
                    # kept honest project-wide by the verify-each digest
                    # audit (ChangedFlagLie) and the fuzzer.
                    continue
                post = snapshot_function(function)
                if post == snapshot:
                    continue  # over-reported: skip re-verify and tvalid
                if policy.verify_after_each:
                    verify_function(function)
                if policy.translation_validate:
                    self._validate_function(name, module, function, snapshot)
                if undo_log is not None:
                    undo_log.append((function, snapshot))
                self._snapshots[fn_name] = post
                self._module_snapshot = None
                changed = True
            except Exception as error:
                restore_function(module, function, snapshot)
                policy.count("passes.rolled_back")
                if first_error is None:
                    first_error = error
                if undo_log is not None:
                    for done, done_snapshot in reversed(undo_log):
                        restore_function(module, done, done_snapshot)
                        self._snapshots[done.name] = done_snapshot
                    self._contain_module_level(pass_obj, name, module,
                                               first_error)
                    return False
                guilty.append(fn_name)
        if guilty or first_error is not None:
            self._contain_function_pass(pass_obj, name, module, guilty,
                                        first_error)
        return changed

    def _validate_function(self, name: str, module: Module, function,
                           snapshot: str) -> None:
        """Refinement-check one changed function against its snapshot
        text; count verdicts; raise on a violation.

        The "before" side is the snapshot re-materialized in the live
        module's symbol space, co-executed in a carrier module sharing
        the live globals and every *other* function — so callee
        differences cancel and the check isolates this function's
        change (modular refinement: callees are validated separately).
        """
        from ..linker.linker import materialize_function

        policy = self.policy
        before_fn = materialize_function(module, snapshot)
        carrier = Module(module.name, module.data_layout)
        carrier.globals = module.globals
        carrier.named_types = module.named_types
        carrier.functions = dict(module.functions)
        carrier.functions[function.name] = before_fn
        before_fn.parent = carrier
        failure = None
        for result in policy.validator().validate(carrier, module,
                                                  function.name):
            if result.status in (_VALIDATION_FAILED, "passed"):
                policy.count("validations.run")
                policy.count(f"validations.{result.status}")
            else:
                policy.count(f"validations.{result.status}")
            if result.status == _VALIDATION_FAILED and failure is None:
                failure = result
        if failure is not None:
            raise TranslationValidationError(name, failure)

    # -- module-pass transactions -------------------------------------------

    def _transact_module_pass(self, pass_obj, name: str,
                              module: Module) -> bool:
        policy = self.policy
        snapshot = self._module_snapshot
        if snapshot is None:
            snapshot = snapshot_module(module)
            self._module_snapshot = snapshot
        try:
            with _Watchdog(policy.time_budget(), policy.pass_step_budget):
                self._check_injection(name)
                claimed = pass_obj.run_on_module(module)
            if not claimed:
                return False  # snapshot cache stays valid
            post = snapshot_module(module)
            if post == snapshot:
                return False  # over-reported: skip re-verification
            if policy.verify_after_each:
                verify_module(module)
            self._module_snapshot = post
            self._snapshots.clear()  # function bodies may have moved
            return True
        except Exception as error:
            restore_module(module, snapshot)
            self._module_snapshot = snapshot
            policy.count("passes.rolled_back")
            self._contain_module_level(pass_obj, name, module, error,
                                       snapshot)
            return False

    @staticmethod
    def _check_injection(name: str) -> None:
        from ..fuzz import faultinject

        faultinject.check(f"pass:{name}")

    # -- containment --------------------------------------------------------

    def _contain_function_pass(self, pass_obj, name: str, module: Module,
                               guilty: list, error: Exception) -> None:
        """Function-granularity containment: poison the guilty
        functions, report once per (pass, run)."""
        policy = self.policy
        policy.count("retries.function")
        for function_name in guilty:
            policy.poison(name, module.name, function_name)
            self.poisoned_in_run += 1
        self._record_crash(pass_obj, name, module,
                           guilty[0] if guilty else None, error)

    def _contain_module_level(self, pass_obj, name: str, module: Module,
                              error: Exception,
                              snapshot: Optional[bytes] = None) -> None:
        """Module-granularity containment: bisect for attribution,
        poison the pass module-wide, report."""
        policy = self.policy
        if snapshot is None and policy.reduce_testcases:
            snapshot = snapshot_module(module)
        guilty = (self._bisect_module_pass(pass_obj, snapshot)
                  if snapshot is not None else None)
        policy.poison(name, module.name)
        self.poisoned_in_run += 1
        self._record_crash(pass_obj, name, module, guilty, error, snapshot)

    def _record_crash(self, pass_obj, name: str, module: Module,
                      guilty: Optional[str], error: Exception,
                      snapshot: Optional[bytes] = None) -> None:
        policy = self.policy
        report = CrashReport(
            pass_name=name, module=module.name, function=guilty,
            error_type=type(error).__name__, error_message=str(error),
            traceback="".join(_traceback.format_exception(
                type(error), error, error.__traceback__)),
        )
        if policy.reduce_testcases and self._is_deterministic(error):
            # The module is back in a reproducing state (guilty
            # functions rolled back), so snapshot it now if containment
            # did not already have one.
            if snapshot is None:
                snapshot = snapshot_module(module)
            reduced = self._reduce_testcase(
                pass_obj, snapshot,
                validate=isinstance(error, TranslationValidationError))
            if reduced is not None:
                from ..core import print_module

                report.reduced_ir = print_module(reduced)
                report.reduced_instructions = sum(
                    f.instruction_count()
                    for f in reduced.defined_functions())
        policy.record(report)

    @staticmethod
    def _is_deterministic(error: Exception) -> bool:
        """Budget blowouts and one-shot injected faults do not
        reproduce on a re-run, so bisecting/reducing them is wasted
        work (and the reduction predicate would never hold)."""
        if isinstance(error, PassBudgetExceeded):
            return False
        from ..fuzz.faultinject import InjectedFault

        return not isinstance(error, InjectedFault)

    def _bisect_module_pass(self, pass_obj, snapshot: bytes) -> Optional[str]:
        """Name the function that kills a module-level pass: run a
        fresh instance over one-function-at-a-time skeletons of the
        snapshot (every other body dropped) and report the first that
        still crashes it.  Attribution only — the pass stays poisoned
        module-wide either way."""
        policy = self.policy
        if not self._is_deterministic_probe_worthwhile():
            return None
        try:
            names = [f.name
                     for f in read_bytecode(snapshot).defined_functions()]
        except Exception:
            return None
        for function_name in names:
            try:
                probe = read_bytecode(snapshot)
                for other in list(probe.defined_functions()):
                    if other.name != function_name:
                        other.delete_body()
                with _Watchdog(policy.time_budget(
                                   policy.reduce_time_budget),
                               policy.reduce_step_budget):
                    _run_pass_plain(_fresh_pass(pass_obj), probe)
                verify_module(probe)
            except PassBudgetExceeded:
                continue
            except Exception:
                return function_name
        return None

    def _is_deterministic_probe_worthwhile(self) -> bool:
        return self.policy.reduce_testcases

    def _reduce_testcase(self, pass_obj, snapshot: bytes,
                         validate: bool = False) -> Optional[Module]:
        """Shrink the snapshot to a minimal module that still crashes
        the pass (reusing bugpoint's delta reduction).  For a
        validation failure the interestingness predicate is "the pass
        still miscompiles this", so the reduced testcase ships with a
        replayable refinement violation, not just a crash."""
        from ..fuzz.bugpoint import reduce_module

        policy = self.policy

        def crashes(candidate: Module) -> bool:
            try:
                pre_pass = snapshot_module(candidate) if validate else None
                with _Watchdog(policy.time_budget(
                                   policy.reduce_time_budget),
                               policy.reduce_step_budget):
                    _run_pass_plain(_fresh_pass(pass_obj), candidate)
                verify_module(candidate)
            except PassBudgetExceeded:
                return False
            except Exception:
                return True
            if validate:
                try:
                    results = policy.validator().validate(
                        read_bytecode(pre_pass), candidate)
                except Exception:
                    return False
                return any(r.status == _VALIDATION_FAILED for r in results)
            return False

        try:
            return reduce_module(read_bytecode(snapshot), crashes,
                                 max_rounds=policy.reduce_rounds)
        except Exception:
            return None
