"""Standard optimization pipelines (the ``-O`` levels).

Mirrors the paper's architecture: per-translation-unit optimization at
compile time (section 3.2: stack promotion and scalar expansion build
SSA, then module-level cleanups), and aggressive interprocedural
optimization at link time (section 3.3).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Optional, Sequence

from ..core.module import Module
from ..frontend import compile_source
from ..linker import link_modules
from .cache import BytecodeCache
from .passmanager import (
    FaultPolicy, TransactionalPassManager, restore_module, snapshot_module,
)
from ..transforms import (
    AggressiveDCE, ConstantPropagation, DeadCodeElimination, GVN,
    InstCombine, LICM, PassManager, PromoteMem2Reg, RangeOpt, Reassociate,
    SCCP, ScalarReplAggregates, SimplifyCFG, TailRecursionElimination,
)
from ..transforms.passmanager import PassTimings
from ..transforms.ipo import (
    DeadArgumentElimination, DeadGlobalElimination, Devirtualize,
    FunctionInlining, HeapToStackPromotion, Internalize,
    IPConstantPropagation, PruneExceptionHandlers,
)


def standard_pipeline(level: int = 2, verify_each: bool = False,
                      policy: Optional[FaultPolicy] = None,
                      timings: Optional[PassTimings] = None) -> PassManager:
    """The per-module pipeline for an optimization level (0-3).

    With a :class:`FaultPolicy` the pipeline is *transactional*: each
    pass runs under snapshot/rollback crash containment
    (docs/ROBUSTNESS.md) instead of letting a pass failure abort the
    build.  ``timings`` may supply a shared sink so one ``-time-passes``
    report covers every manager a driver invocation creates (each pass
    execution is recorded exactly once, by the manager that ran it).
    """
    if policy is not None:
        manager: PassManager = TransactionalPassManager(policy,
                                                        timings=timings)
    else:
        manager = PassManager(verify_each=verify_each, timings=timings)
    if level <= 0:
        return manager
    # SSA construction as the paper prescribes: scalar expansion, then
    # stack promotion, then cleanups over real SSA.
    manager.add(SimplifyCFG())
    manager.add(ScalarReplAggregates())
    manager.add(PromoteMem2Reg())
    combiner = InstCombine()
    if policy is not None:
        policy.gauge("synth.rules-loaded",
                     combiner.stats.generated_rules_loaded)
    manager.add(combiner)
    manager.add(SimplifyCFG())
    manager.add(ConstantPropagation())
    manager.add(DeadCodeElimination())
    if level >= 2:
        manager.add(SCCP())
        manager.add(SimplifyCFG())
        manager.add(Reassociate())
        manager.add(GVN())
        manager.add(LICM())
        manager.add(RangeOpt())
        manager.add(InstCombine())
        manager.add(AggressiveDCE())
        manager.add(SimplifyCFG())
    if level >= 3:
        manager.add(TailRecursionElimination())
        manager.add(PromoteMem2Reg())
        manager.add(GVN())
        manager.add(AggressiveDCE())
        manager.add(SimplifyCFG())
    return manager


def optimize_module(module: Module, level: int = 2,
                    verify_each: bool = False,
                    policy: Optional[FaultPolicy] = None,
                    timings: Optional[PassTimings] = None) -> Module:
    """Run the standard pipeline in place; returns the module.

    With a :class:`FaultPolicy`, runs the fault-tolerant degradation
    ladder instead of the bare pipeline: each attempt executes
    transactionally, and when an attempt poisons more passes than
    ``policy.max_poisoned_passes`` the module is restored to its
    pre-optimization state and the next lower level is tried
    (``-O2 -> -O1 -> -O0``), counting ``fallbacks.taken``.  ``-O0`` is
    the floor: the unoptimized module is always correct.
    """
    if policy is None:
        standard_pipeline(level, verify_each, timings=timings).run(module)
        return module
    pristine = snapshot_module(module)
    for attempt in range(level, -1, -1):
        if attempt == 0:
            restore_module(module, pristine)
            return module
        manager = standard_pipeline(attempt, policy=policy, timings=timings)
        manager.run(module)
        if manager.poisoned_in_run <= policy.max_poisoned_passes:
            return module
        restore_module(module, pristine)
        policy.count("fallbacks.taken")
    return module


def lto_pipeline(internalize: bool = True,
                 preserved: Sequence[str] = ("main",),
                 verify_each: bool = False,
                 policy: Optional[FaultPolicy] = None,
                 timings: Optional[PassTimings] = None) -> PassManager:
    """The interprocedural pass sequence of the link-time optimizer."""
    if policy is not None:
        manager: PassManager = TransactionalPassManager(policy,
                                                        timings=timings)
    else:
        manager = PassManager(verify_each=verify_each, timings=timings)
    if internalize:
        manager.add(Internalize(preserved))
    manager.add(Devirtualize())
    manager.add(IPConstantPropagation())
    manager.add(FunctionInlining())
    manager.add(DeadArgumentElimination())
    manager.add(DeadGlobalElimination())
    manager.add(PruneExceptionHandlers())
    manager.add(HeapToStackPromotion())
    return manager


def link_time_optimize(module: Module, level: int = 2,
                       internalize: bool = True,
                       preserved: Sequence[str] = ("main",),
                       verify_each: bool = False,
                       policy: Optional[FaultPolicy] = None,
                       timings: Optional[PassTimings] = None) -> Module:
    """The link-time interprocedural optimizer (paper section 3.3)."""
    manager = lto_pipeline(internalize, preserved, verify_each, policy,
                           timings=timings)
    manager.run(module)
    if level > 0:
        # A scalar cleanup round over the post-IPO bodies, then one more
        # IPO round to exploit what the cleanup exposed.
        optimize_module(module, level, verify_each, policy, timings=timings)
        manager.run(module)
        optimize_module(module, min(level, 2), verify_each, policy,
                        timings=timings)
    return module


def analyze_module(module: Module, checks: Optional[Sequence[str]] = None):
    """The opt-in whole-program "analyze" stage.

    Runs the lc-lint checker suite (:mod:`repro.sanalysis`) over the
    module and attaches the result to ``module.diagnostics`` so drivers
    and tests can inspect it without re-running the checkers.  Purely
    observational: the IR is never modified.
    """
    from ..sanalysis import run_checkers

    diagnostics = run_checkers(module, checks)
    module.diagnostics = diagnostics
    return diagnostics


def lint_whole_program(sources: Sequence[str],
                       filenames: Optional[Sequence[str]] = None,
                       name: str = "program", level: int = 2,
                       checks: Optional[Sequence[str]] = None,
                       cache: Optional[BytecodeCache] = None,
                       jobs: int = 1):
    """The ``lint-wp`` stage: interprocedural lint across all TUs.

    Compiles every translation unit (through the bytecode cache when
    one is given), then runs the summary-based whole-program checkers
    (:func:`repro.sanalysis.run_whole_program`).  Per-function analysis
    summaries are serialized next to the cached bytecode under the same
    content hash, so a warm run recomputes summaries only for changed
    TUs and re-runs just the cheap composition + checking sweep —
    diagnostics are byte-identical either way.

    Returns a :class:`repro.sanalysis.WholeProgramResult`.
    """
    from ..sanalysis import run_whole_program
    from ..sanalysis.interproc import ModuleAnalysisSummaries

    sources = list(sources)
    if filenames is None:
        filenames = [f"{name}.tu{index}" for index in range(len(sources))]
    modules = compile_translation_units(sources, name, level, False,
                                        cache, jobs)
    tables: list[Optional[ModuleAnalysisSummaries]] = [None] * len(sources)
    keys: list[Optional[str]] = [None] * len(sources)
    if cache is not None:
        for index, source in enumerate(sources):
            keys[index] = cache.key(source, level, tag="ipa-summary")
            text = cache.load_text(keys[index])
            if text is not None:
                try:
                    tables[index] = ModuleAnalysisSummaries.from_json(text)
                except Exception:
                    # Unparseable sidecar (corruption, stale or *newer*
                    # format): degrade to recomputing this TU's summary
                    # and evict the bad entry — counted in -stats
                    # (``summary-evictions``), never an abort.
                    tables[index] = None
                    cache.evict_text(keys[index])
    result = run_whole_program(list(zip(filenames, modules)), checks,
                               tables=tables)
    if cache is not None:
        for scope in result.computed_scopes:
            cache.store_text(keys[scope], result.tables[scope].to_json())
    return result


def _compile_translation_unit(source: str, tu_name: str, level: int,
                              verify_each: bool,
                              cache: Optional[BytecodeCache],
                              policy: Optional[FaultPolicy] = None) -> Module:
    """One TU through front-end + per-module optimization, or the cache.

    A hit deserializes the stored bytecode instead of running the
    front-end and the -O pipeline; the module name is restamped because
    it encodes the TU's *position* in this batch, which is not part of
    the content-addressed key.
    """
    if cache is not None:
        key = cache.key(source, level)
        module = cache.load(key)
        if module is not None:
            module.name = tu_name
            return module
    module = compile_source(source, tu_name)
    optimize_module(module, level, verify_each, policy)
    if cache is not None:
        cache.store(key, module)
    return module


def compile_translation_units(sources: Sequence[str], name: str = "program",
                              level: int = 2, verify_each: bool = False,
                              cache: Optional[BytecodeCache] = None,
                              jobs: int = 1,
                              policy: Optional[FaultPolicy] = None,
                              ) -> list[Module]:
    """The batch front of the driver: every TU to optimized IR.

    Translation units are independent until link time, so with
    ``jobs > 1`` they compile concurrently; results are always returned
    in input order, keeping the link order — and therefore the linked
    module and its bytecode — deterministic regardless of ``jobs``.
    """
    sources = list(sources)
    if jobs > 1 and len(sources) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as executor:
            return list(executor.map(
                lambda item: _compile_translation_unit(
                    item[1], f"{name}.tu{item[0]}", level, verify_each,
                    cache, policy),
                enumerate(sources),
            ))
    return [
        _compile_translation_unit(source, f"{name}.tu{index}", level,
                                  verify_each, cache, policy)
        for index, source in enumerate(sources)
    ]


def _link_with_retry(modules: Sequence[Module], name: str,
                     policy: Optional[FaultPolicy]) -> Module:
    """Link, retrying once under a fault policy.

    A transient link failure (an injected symbol clash, a racing writer
    of some input) is containable by simply linking again from the
    unchanged input modules; a *persistent* conflict fails both
    attempts and propagates — that is a program error, not a toolchain
    fault.
    """
    try:
        return link_modules(modules, name)
    except Exception:
        if policy is None:
            raise
        policy.count("link.retries")
        return link_modules(modules, name)


def compile_and_link(sources: Iterable[str], name: str = "program",
                     level: int = 2, lto: bool = True,
                     verify_each: bool = False, analyze: bool = False,
                     cache: Optional[BytecodeCache] = None,
                     jobs: int = 1,
                     policy: Optional[FaultPolicy] = None) -> Module:
    """Front-end + per-module optimization + link (+ link-time IPO).

    ``sources`` are LC translation units.  This is the paper's Figure 4
    static path: front-ends emit IR, the linker combines it, and the
    interprocedural optimizer runs over the whole program.  With
    ``analyze=True`` the post-link module is additionally run through
    the static checker suite (see :func:`analyze_module`); findings
    land on ``module.diagnostics``.  ``analyze="whole-program"`` runs
    the summary-based interprocedural suite instead (see
    :func:`lint_whole_program`).

    ``cache`` makes the front of the pipeline incremental: unchanged
    TUs (by content hash) skip the front-end and per-module optimizer
    and are deserialized from stored bytecode instead.  ``jobs`` sets
    the number of concurrent TU compilations; both are output-invariant
    — the linked module is identical with or without them.

    ``policy`` turns on fault-tolerant execution end to end: every
    transform pass runs transactionally, a failing pass is rolled back
    and reported instead of aborting the build, too many failures step
    the level down (-O2 -> -O1 -> -O0), and a transiently failing link
    is retried once.  See docs/ROBUSTNESS.md.
    """
    sources = list(sources)
    modules = compile_translation_units(sources, name, level, verify_each,
                                        cache, jobs, policy)
    linked = _link_with_retry(modules, name, policy)
    if lto:
        link_time_optimize(linked, level, verify_each=verify_each,
                           policy=policy)
    if analyze == "whole-program":
        # lint-wp: the summary-based interprocedural suite over the
        # pre-link TUs (per-file attribution), attached to the program.
        result = lint_whole_program(sources, name=name, level=level,
                                    cache=cache)
        linked.diagnostics = result.diagnostics
    elif analyze:
        analyze_module(linked)
    return linked
