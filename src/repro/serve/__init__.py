"""lc-serverd: the persistent, crash-only compilation service.

The lifelong compilation loop, promoted from an in-process object
(:class:`repro.driver.lifelong.LifelongSession`) to a long-lived
daemon serving many concurrent clients (docs/SERVING.md):

* :mod:`repro.serve.protocol` — hardened length-framed JSON wire
  protocol with structured, byte-offset-located errors;
* :mod:`repro.serve.workers` — the supervised crash-only worker pool;
* :mod:`repro.serve.scheduler` — bounded admission, deadlines,
  backoff retries, and the graceful-degradation controller;
* :mod:`repro.serve.server` — the daemon: front door, drain-based
  shutdown, idle-time reoptimization;
* :mod:`repro.serve.client` — the deadline- and budget-aware client.
"""

from .client import (
    ServeClient, ServeClientError, ServeRequestError, ServeTransportError,
)
from .protocol import ServeError
from .server import Server, ServerConfig

__all__ = [
    "Server", "ServerConfig", "ServeClient", "ServeClientError",
    "ServeError", "ServeRequestError", "ServeTransportError",
]
