"""Supervised worker processes: the crash domain of lc-serverd.

Every request class that runs user-supplied input (compile, lint,
reoptimize, triage) executes in a **worker process**, never in the
supervisor.  The worker is crash-only: it holds no durable state
beyond the shared on-disk bytecode cache (which is multi-process-safe
and integrity-framed), so the supervisor's whole recovery story is
"restart the process" — a worker that dies mid-request costs exactly
that request, and the next request meets a fresh worker.

Inside a request the worker still runs the fault-tolerant driver
(:class:`~repro.driver.passmanager.FaultPolicy`): a crashing *pass* is
rolled back and poisoned without the worker dying at all, and the
request deadline is threaded into the policy so a deadline-pressed
compile sheds optimization (the -O2 -> -O1 -> -O0 ladder) instead of
being killed from outside.  Only a genuine process death — a real
segfault-class bug, or ``--fault-inject server.worker-crash`` — falls
through to the supervisor's restart path.

Requests and responses travel over a :func:`multiprocessing.Pipe`;
the supervisor side lives in :class:`WorkerHandle` and is only ever
driven by that worker's one dispatcher thread.
"""

from __future__ import annotations

import base64
import os
import signal
import time
import traceback
from typing import Any, Optional

from . import protocol


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


# ---------------------------------------------------------------------------
# Worker process side
# ---------------------------------------------------------------------------

def _reset_inherited_state() -> None:
    """Make a forked child safe regardless of supervisor thread state.

    The supervisor forks workers while its own threads run; any module
    lock held at that instant is copied *locked* into the child.  The
    child only ever touches the fault-injection registry (via the
    cache's mangle hooks), so that lock is re-created fresh — and the
    child must never inherit an armed plan: injection decisions are the
    supervisor's, shipped explicitly in the job (``inject`` field).
    """
    import threading

    from ..fuzz import faultinject

    faultinject._lock = threading.Lock()
    faultinject._plan = None
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def worker_main(conn, config: dict) -> None:
    """The worker loop: recv job, execute, send response, forever.

    ``None`` is the clean-shutdown sentinel.  An injected crash exits
    via ``os._exit`` — no cleanup, no goodbye on the pipe — exactly
    like the native-code crash it stands in for.
    """
    _reset_inherited_state()
    from ..driver.cache import BytecodeCache

    cache: Optional[BytecodeCache] = None
    if config.get("cache_dir"):
        cache = BytecodeCache(config["cache_dir"],
                              max_bytes=config.get("cache_max_bytes"))
    previous_stats: dict[str, int] = {}
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if job is None:
            break
        inject = job.get("inject") or {}
        if inject.get("sleep") is not None:
            # server.request-timeout: stall past the deadline; the
            # supervisor's watchdog kills this process mid-sleep.
            time.sleep(float(inject["sleep"]))
        if inject.get("crash") is not None:
            # server.worker-crash: die the crash-only way — abruptly,
            # mid-request, without a word on the pipe.
            os._exit(70 + int(inject["crash"]) % 16)
        response = _execute(job, cache)
        if cache is not None:
            # Ship cache counters as deltas so the supervisor can
            # aggregate across restarts without double counting.
            stats = cache.statistics()
            response["cache_stats"] = {
                key: value - previous_stats.get(key, 0)
                for key, value in stats.items()
                if value != previous_stats.get(key, 0)
            }
            previous_stats = stats
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):
            break


def _execute(job: dict, cache) -> dict:
    """One request, never letting an exception reach the worker loop."""
    op = job.get("op", "?")
    try:
        handler = _HANDLERS[op]
    except KeyError:
        return {"ok": False, "error": {
            "code": protocol.BAD_REQUEST,
            "message": f"worker cannot execute op {op!r}"}}
    try:
        return {"ok": True, "result": handler(job, cache)}
    except Exception as error:
        return {"ok": False, "error": {
            "code": protocol.REQUEST_FAILED,
            "message": f"{type(error).__name__}: {error}",
            "traceback": traceback.format_exc(limit=8)}}


def _policy(job: dict):
    """A per-request fault policy carrying the request deadline."""
    from ..driver.passmanager import FaultPolicy

    policy = FaultPolicy(reduce_testcases=False)
    remaining = job.get("deadline_remaining")
    if remaining is not None:
        policy.deadline = time.monotonic() + float(remaining)
    return policy


def _clean(policy) -> bool:
    stats = policy.statistics()
    return (stats["passes.rolled_back"] == 0
            and stats["fallbacks.taken"] == 0
            and stats["passes.poisoned"] == 0)


def _do_compile(job: dict, cache) -> dict:
    from ..bitcode import write_bytecode
    from ..driver.pipelines import compile_and_link

    policy = _policy(job)
    level = job.get("level", 2)
    module = compile_and_link(job["sources"], job.get("name", "program"),
                              level=level, lto=job.get("lto", True),
                              cache=cache, policy=policy)
    data = write_bytecode(module, strip_names=False)
    return {
        "bytecode": _b64(data),
        "level": level,
        "requested_level": job.get("requested_level", level),
        "degraded": level < job.get("requested_level", level),
        "clean": _clean(policy),
        "stats": policy.statistics(),
    }


def _do_lint(job: dict, cache) -> dict:
    from ..driver.pipelines import lint_whole_program

    result = lint_whole_program(job["sources"],
                                name=job.get("name", "program"),
                                level=job.get("level", 2),
                                checks=job.get("checks"),
                                cache=cache)
    diagnostics = result.diagnostics
    rendered = [diag.render() for diag in diagnostics]
    errors = sum(1 for diag in diagnostics if diag.is_error)
    return {"diagnostics": rendered, "errors": errors,
            "warnings": len(rendered) - errors}


def _do_reoptimize(job: dict, cache) -> dict:
    from ..driver.lifelong import LifelongSession

    session = LifelongSession(job["sources"], job.get("name", "program"),
                              level=job.get("level", 2), cache=cache,
                              fault_policy=_policy(job))
    runs = []
    for run in job.get("runs") or [{"function": "main", "args": []}]:
        outcome = session.run(run.get("function", "main"),
                              run.get("args", []))
        runs.append({"exit": outcome.exit_value, "output": outcome.output,
                     "steps": outcome.steps})
    report = session.reoptimize()
    return {
        "runs": runs,
        "report": {
            "hot_functions": report.hot_functions,
            "inlined_calls": report.inlined_calls,
            "traces_formed": report.traces_formed,
            "blocks_reordered": report.blocks_reordered,
        },
        "bytecode": _b64(session.bytecode),
        "stats": session.statistics(),
    }


def _do_triage(job: dict, cache) -> dict:
    from ..fuzz.generator import generate_program
    from ..fuzz.harness import HarnessConfig, check_program

    source = job.get("source")
    if source is None:
        source = generate_program(job["seed"], job.get("size", 2))
    config = HarnessConfig(step_limit=job.get("step_limit", 500_000))
    result = check_program(source, config)
    return {
        "divergences": [div.describe() for div in result.divergences],
        "skipped": result.skipped,
        "error": result.error,
    }


def _do_sleep(job: dict, cache) -> dict:
    """A diagnostic op: hold a worker for ``ms`` — the deterministic
    load generator behind the overload and drain tests."""
    ms = min(int(job.get("ms", 0)), 10_000)
    time.sleep(ms / 1000.0)
    return {"slept_ms": ms}


_HANDLERS = {
    "compile": _do_compile,
    "lint": _do_lint,
    "reoptimize": _do_reoptimize,
    "triage": _do_triage,
    "sleep": _do_sleep,
}


# ---------------------------------------------------------------------------
# Supervisor side
# ---------------------------------------------------------------------------

def _context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


class WorkerHandle:
    """One supervised worker process and its pipe.

    Driven only by its dispatcher thread, so no locking here; the
    supervisor's restart decision *is* the crash-recovery protocol.
    """

    def __init__(self, config: dict):
        self._config = dict(config)
        self._ctx = _context()
        self.process = None
        self._conn = None
        self.restarts = 0
        self.start()

    def start(self) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        self.process = self._ctx.Process(
            target=worker_main, args=(child, self._config),
            name="lc-serverd-worker", daemon=True)
        self.process.start()
        child.close()
        self._conn = parent

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def send(self, job: dict) -> None:
        self._conn.send(job)

    def poll(self, timeout: float) -> bool:
        return self._conn.poll(max(0.0, timeout))

    def recv(self) -> Any:
        return self._conn.recv()

    def restart(self, kill: bool = False) -> None:
        """Replace the process with a fresh one (crash-only recovery)."""
        if self.process is not None:
            if kill and self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - stuck child
                self.process.kill()
                self.process.join(timeout=5.0)
        if self._conn is not None:
            self._conn.close()
        self.restarts += 1
        self.start()

    def stop(self, timeout: float = 2.0) -> None:
        """Clean shutdown: sentinel, join, then force."""
        try:
            self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)
        self._conn.close()
