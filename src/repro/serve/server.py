"""lc-serverd: the long-lived, crash-only compilation daemon.

The paper's lifelong thesis (section 2.4, Figure 4) has the compiler
*staying resident* with the programs it serves; this module is that
residency.  A :class:`Server` listens on a Unix-domain (or TCP)
socket, speaks the length-framed JSON protocol of
:mod:`repro.serve.protocol`, and runs every piece of real work —
compile, lint, reoptimize, fuzz-triage — on the supervised worker
pool of :mod:`repro.serve.workers` under the admission, deadline,
retry, and degradation policies of :mod:`repro.serve.scheduler`.

Robustness invariants (docs/SERVING.md, enforced by
tests/test_serverd.py and the CI serve gate):

* garbage on a connection kills *that connection*, never the daemon;
* a worker crash kills *that request* (and usually not even that —
  the supervisor retries it once on a fresh worker);
* a request past its deadline gets a structured ``TIMEOUT``;
* a full queue answers ``BUSY`` immediately instead of queueing
  without bound; sustained overload sheds optimization level before
  it sheds correctness;
* shutdown drains — in-flight and queued requests complete, new ones
  are refused with ``SHUTTING_DOWN`` — and never strands a client.

The **idle-time reoptimizer** (paper section 2.4) runs in the queue's
cold time: compile requests that were degraded under load are re-run
at their requested level when the daemon goes idle, warming the shared
bytecode cache so the next identical request gets the full-strength
artifact for free.  Overload pauses it; calm resumes it.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from . import protocol
from .scheduler import Job, Scheduler, ServerStats


@dataclass
class ServerConfig:
    """Everything an operator can set about one daemon."""

    socket_path: Optional[str] = None     # Unix-domain front door
    host: Optional[str] = None            # or TCP (host, port)
    port: int = 0
    workers: int = 2
    queue_depth: int = 32
    high_water: Optional[int] = None      # default: queue_depth
    degrade_water: Optional[int] = None   # default: queue_depth // 2
    server_retries: int = 1               # crash retries per request
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    idle_reopt: bool = True
    idle_delay: float = 0.25              # seconds of calm before reopt
    drain_timeout: float = 30.0

    def worker_config(self) -> dict:
        return {"cache_dir": self.cache_dir,
                "cache_max_bytes": self.cache_max_bytes}


class Server:
    """One daemon instance; embeddable (tests) or CLI-run (lc-serverd)."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self.stats = ServerStats()
        self.scheduler = Scheduler(
            self.stats, config.worker_config(),
            workers=config.workers, queue_depth=config.queue_depth,
            high_water=config.high_water,
            degrade_water=config.degrade_water,
            server_retries=config.server_retries)
        self._listener = self._bind()
        self._shutdown = threading.Event()
        self._drained = threading.Event()
        self._stop_lock = threading.Lock()
        self._stopped = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="lc-serverd-accept", daemon=True)
        self._accept_thread.start()
        #: Degraded compiles awaiting idle-time reoptimization, keyed
        #: by content so one hot source is only re-done once.
        self._reopt_backlog: OrderedDict[str, dict] = OrderedDict()
        self._reopt_lock = threading.Lock()
        self._reopt_thread: Optional[threading.Thread] = None
        if config.idle_reopt:
            self._reopt_thread = threading.Thread(
                target=self._reopt_loop, name="lc-serverd-reopt",
                daemon=True)
            self._reopt_thread.start()

    # -- listening ----------------------------------------------------------

    def _bind(self) -> socket.socket:
        if self.config.socket_path:
            path = self.config.socket_path
            try:
                os.unlink(path)
            except OSError:
                pass
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host or "127.0.0.1",
                           self.config.port))
        listener.listen(64)
        return listener

    @property
    def address(self):
        """Where clients connect: a path, or a ``(host, port)`` pair."""
        if self.config.socket_path:
            return self.config.socket_path
        return self._listener.getsockname()

    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed: we are draining
            self.stats.count("serverd.connections")
            threading.Thread(target=self._serve_connection, args=(conn,),
                             name="lc-serverd-conn", daemon=True).start()

    # -- per-connection service ---------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        stream = protocol.FrameStream(conn, self.config.max_frame_bytes)
        write_lock = threading.Lock()

        def respond(frame: dict) -> None:
            try:
                with write_lock:
                    stream.write_frame(frame)
            except (OSError, protocol.ServeError):
                pass  # client went away; its loss, not our problem

        try:
            while True:
                try:
                    obj = stream.read_frame()
                except protocol.ServeError as error:
                    # Garbage input: one structured goodbye (best
                    # effort), then this connection is done.  The
                    # daemon itself never flinches.
                    self.stats.count("serverd.protocol-errors")
                    respond(protocol.error_response(
                        None, protocol.PROTOCOL, str(error)))
                    return
                if obj is None:
                    return  # clean EOF between frames
                self._handle_request(obj, respond)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle_request(self, obj, respond) -> None:
        try:
            op, payload = protocol.validate_request(obj)
        except protocol.ServeError as error:
            self.stats.count("serverd.failed")
            respond(protocol.error_response(
                obj.get("id") if isinstance(obj, dict) else None,
                error.code, str(error)))
            return
        request_id = obj.get("id")
        deadline_ms = obj.get("deadline_ms",
                              protocol.DEFAULT_DEADLINE_MS[op])
        deadline = time.monotonic() + deadline_ms / 1000.0
        if op in protocol.SUPERVISOR_OPS:
            self._handle_supervisor_op(op, request_id, respond)
            return
        job = Job(id=request_id, op=op, payload=payload,
                  respond=respond, deadline=deadline,
                  retries_left=self.config.server_retries)
        if self.scheduler.submit(job) and op == "compile":
            self._note_compile(payload)

    def _handle_supervisor_op(self, op: str, request_id, respond) -> None:
        """ping / stats / shutdown never queue and never block."""
        if op == "ping":
            respond(protocol.ok_response(request_id, {
                "pong": True, "pid": os.getpid(),
                "draining": self._shutdown.is_set()}))
        elif op == "stats":
            respond(protocol.ok_response(request_id, self.statistics()))
        else:  # shutdown: ack first, then drain without this thread
            respond(protocol.ok_response(request_id, {"draining": True}))
            threading.Thread(target=self.stop,
                             name="lc-serverd-shutdown",
                             daemon=True).start()

    # -- idle-time reoptimization -------------------------------------------

    def _note_compile(self, payload: dict) -> None:
        """Remember a compile so idle time can redo it at full level."""
        if self.scheduler.degrade.shift == 0:
            return  # not degraded: the request already runs full-fat
        key = "\0".join(payload["sources"]) + f"\0{payload.get('level', 2)}"
        with self._reopt_lock:
            self._reopt_backlog[key] = dict(payload)
            self._reopt_backlog.move_to_end(key)
            while len(self._reopt_backlog) > 32:
                self._reopt_backlog.popitem(last=False)
        self.stats.count("serverd.reopt.queued")

    def _reopt_loop(self) -> None:
        """Work the queue's cold time; pause under load (section 2.4)."""
        while not self._shutdown.wait(self.config.idle_delay):
            if self.scheduler.busy() or self.scheduler.degrade.shift > 0:
                continue  # overload pauses the reoptimizer
            with self._reopt_lock:
                if not self._reopt_backlog:
                    continue
                _, payload = self._reopt_backlog.popitem(last=False)

            def done(frame: dict, _payload=payload) -> None:
                if frame.get("ok"):
                    self.stats.count("serverd.reopt.completed")

            job = Job(id=None, op="compile", payload=payload,
                      respond=done,
                      deadline=time.monotonic() + 120.0,
                      internal=True)
            self.scheduler.submit(job)

    # -- observability -------------------------------------------------------

    def statistics(self) -> dict:
        stats = self.stats.statistics()
        stats["serverd.queue-depth"] = self.scheduler.depth()
        stats["serverd.degrade-level"] = self.scheduler.degrade.shift
        stats["serverd.workers"] = len(self.scheduler.workers)
        stats["serverd.worker-restarts"] = max(
            stats.get("serverd.worker-restarts", 0),
            self.scheduler.worker_restarts)
        return stats

    # -- lifecycle ----------------------------------------------------------

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon has shut down (CLI main loop)."""
        return self._drained.wait(timeout)

    def request_shutdown(self) -> None:
        """Signal-safe: ask for a drain without doing it inline."""
        threading.Thread(target=self.stop, name="lc-serverd-shutdown",
                         daemon=True).start()

    def stop(self) -> bool:
        """Drain and shut down: stop accepting, finish everything
        admitted, then stop workers.  Idempotent.  True if fully
        drained within the timeout."""
        with self._stop_lock:
            if self._stopped:
                self._drained.wait()
                return True
            self._stopped = True
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:
            pass
        drained = self.scheduler.stop(self.config.drain_timeout)
        if self.config.socket_path:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass
        if self._reopt_thread is not None:
            self._reopt_thread.join(timeout=2.0)
        self._drained.set()
        return drained
