"""Admission control, deadlines, retries, and graceful degradation.

The scheduler is the daemon's load-bearing wall:

* a **bounded admission queue** — once depth crosses the high-water
  mark, new requests are shed immediately with a structured ``BUSY``
  response carrying a ``retry_after_ms`` hint (never silently dropped,
  never queued without bound);
* a **deadline** on every request (per-class default, client can set a
  tighter one) enforced twice: a request whose deadline expires while
  queued is answered ``TIMEOUT`` without ever touching a worker, and
  one that overruns while executing has its worker killed and
  restarted by the dispatch watchdog — a structured ``TIMEOUT``
  response, not a hang;
* **crash-only retry**: a worker that dies mid-request is restarted
  and the request retried once on the fresh process, under capped
  exponential backoff with deterministic per-request jitter, as long
  as the deadline allows;
* **graceful degradation**: sustained pressure on the queue steps new
  compile requests down the -O2 -> -O1 -> -O0 ladder (the same ladder
  the fault-tolerant driver uses for its own failures) and pauses the
  idle-time reoptimizer; calm restores full optimization.

Everything is observable through :class:`ServerStats` (``serverd.*``).
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from . import protocol
from .workers import WorkerHandle


class ServerStats:
    """The daemon's ``-stats`` source: one lock, monotonic counters."""

    name = "serverd"

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {
            "serverd.accepted": 0,
            "serverd.completed": 0,
            "serverd.failed": 0,
            "serverd.shed": 0,
            "serverd.timed-out": 0,
            "serverd.retried": 0,
            "serverd.degraded": 0,
            "serverd.degraded-requests": 0,
            "serverd.recovered": 0,
            "serverd.worker-crashes": 0,
            "serverd.worker-restarts": 0,
            "serverd.protocol-errors": 0,
            "serverd.connections": 0,
            "serverd.reopt.queued": 0,
            "serverd.reopt.completed": 0,
        }

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: int) -> None:
        with self._lock:
            self._counters[name] = value

    def merge(self, counters: dict, prefix: str = "") -> None:
        """Fold a worker-reported counter delta into the totals."""
        with self._lock:
            for key, value in counters.items():
                if not isinstance(value, int) or isinstance(value, bool):
                    continue
                name = prefix + key
                self._counters[name] = self._counters.get(name, 0) + value

    def statistics(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)


@dataclass
class Job:
    """One admitted request on its way to (or through) a worker."""

    id: object
    op: str
    payload: dict
    respond: Callable[[dict], None]
    deadline: float                 # absolute time.monotonic()
    enqueued: float = field(default_factory=time.monotonic)
    retries_left: int = 1
    #: Internal jobs (idle reoptimizer work) bypass degradation and are
    #: invisible to clients; their responses go to a drop callback.
    internal: bool = False

    def remaining(self) -> float:
        return self.deadline - time.monotonic()


class DegradeController:
    """Hysteresis between full optimization and survival mode.

    ``note_admit`` sees every admission with the post-admit queue
    depth; sustained depth at or above the degrade watermark steps
    ``shift`` up (each step counts ``serverd.degraded``).  Completions
    that leave the queue empty accumulate calm; enough calm steps the
    shift back down (``serverd.recovered``).  The shift is subtracted
    from compile request levels at *dispatch* time, so a request
    admitted during a burst but executed after the storm still gets
    full optimization.
    """

    def __init__(self, stats: ServerStats, degrade_water: int,
                 pressure_admits: int = 4, calm_completions: int = 8,
                 max_shift: int = 2):
        self._stats = stats
        self.degrade_water = max(1, degrade_water)
        self.pressure_admits = pressure_admits
        self.calm_completions = calm_completions
        self.max_shift = max_shift
        self._lock = threading.Lock()
        self._pressure = 0
        self._calm = 0
        self._shift = 0

    @property
    def shift(self) -> int:
        with self._lock:
            return self._shift

    def note_admit(self, depth: int) -> None:
        with self._lock:
            if depth >= self.degrade_water:
                self._pressure += 1
                self._calm = 0
                if (self._pressure >= self.pressure_admits
                        and self._shift < self.max_shift):
                    self._shift += 1
                    self._pressure = 0
                    self._stats.count("serverd.degraded")
                    self._stats.gauge("serverd.degrade-level", self._shift)
            else:
                self._pressure = max(0, self._pressure - 1)

    def note_complete(self, depth: int) -> None:
        with self._lock:
            if depth > 0:
                return
            self._calm += 1
            if self._calm >= self.calm_completions and self._shift > 0:
                self._shift -= 1
                self._calm = 0
                self._stats.count("serverd.recovered")
                self._stats.gauge("serverd.degrade-level", self._shift)


class Scheduler:
    """Bounded queue + dispatcher-per-worker + the recovery protocol."""

    def __init__(self, stats: ServerStats, worker_config: dict,
                 workers: int = 2, queue_depth: int = 32,
                 high_water: Optional[int] = None,
                 degrade_water: Optional[int] = None,
                 server_retries: int = 1,
                 backoff_base: float = 0.05, backoff_cap: float = 0.5):
        self.stats = stats
        self.queue_depth = queue_depth
        self.high_water = high_water if high_water is not None \
            else queue_depth
        self.server_retries = server_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.degrade = DegradeController(
            stats, degrade_water if degrade_water is not None
            else max(2, queue_depth // 2))
        self._queue: deque[Optional[Job]] = deque()
        self._queue_cond = threading.Condition()
        self._draining = False
        self._stopped = False
        self._in_flight = 0
        self._idle_cond = threading.Condition()
        self.workers = [WorkerHandle(worker_config)
                        for _ in range(max(1, workers))]
        self._threads = [
            threading.Thread(target=self._dispatch_loop, args=(handle,),
                             name=f"lc-serverd-dispatch-{index}",
                             daemon=True)
            for index, handle in enumerate(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- admission ----------------------------------------------------------

    def depth(self) -> int:
        with self._queue_cond:
            return len(self._queue)

    def busy(self) -> bool:
        """Anything queued or executing?  (The idle reoptimizer's cue.)"""
        with self._queue_cond:
            queued = len(self._queue)
        with self._idle_cond:
            return queued > 0 or self._in_flight > 0

    def submit(self, job: Job) -> bool:
        """Admit or shed one job; the response is always structured.

        Returns True iff the job was admitted.  Shedding answers
        ``BUSY`` with a ``retry_after_ms`` hint scaled by queue depth;
        draining answers ``SHUTTING_DOWN``.
        """
        from ..fuzz import faultinject

        with self._queue_cond:
            if self._draining or self._stopped:
                shed_code, depth = protocol.SHUTTING_DOWN, len(self._queue)
            elif (len(self._queue) >= self.high_water
                    or faultinject.claim("server.queue-overflow")
                    is not None):
                shed_code, depth = protocol.BUSY, len(self._queue)
            else:
                self._queue.append(job)
                depth = len(self._queue)
                self._queue_cond.notify()
                shed_code = None
        if shed_code is None:
            self.stats.count("serverd.accepted")
            self.stats.gauge("serverd.queue-depth", depth)
            self.degrade.note_admit(depth)
            return True
        self.stats.count("serverd.shed")
        if shed_code == protocol.BUSY:
            hint = int(100 * max(1, depth))
            job.respond(protocol.error_response(
                job.id, shed_code,
                f"admission queue at high water ({depth} queued)",
                retry_after_ms=min(hint, 2_000)))
        else:
            job.respond(protocol.error_response(
                job.id, shed_code, "daemon is draining; no new work"))
        return False

    # -- dispatch -----------------------------------------------------------

    def _pop(self) -> Optional[Job]:
        with self._queue_cond:
            while not self._queue and not self._stopped:
                self._queue_cond.wait(timeout=0.2)
            if self._queue:
                job = self._queue.popleft()
                self.stats.gauge("serverd.queue-depth", len(self._queue))
                return job
            return None

    def _dispatch_loop(self, worker: WorkerHandle) -> None:
        while True:
            job = self._pop()
            if job is None:
                return
            with self._idle_cond:
                self._in_flight += 1
            try:
                self._run_job(worker, job)
            except Exception as error:  # supervisor must never die
                try:
                    job.respond(protocol.error_response(
                        job.id, protocol.INTERNAL,
                        f"dispatch failed: {type(error).__name__}: "
                        f"{error}"))
                except Exception:
                    pass
                self.stats.count("serverd.failed")
            finally:
                with self._idle_cond:
                    self._in_flight -= 1
                    self._idle_cond.notify_all()
                self.degrade.note_complete(self.depth())

    def _backoff(self, attempt: int, job: Job) -> float:
        """Capped exponential backoff with deterministic jitter."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        rng = random.Random(hash((str(job.id), attempt)) & 0xFFFFFFFF)
        return base * (0.5 + rng.random() / 2.0)

    def _run_job(self, worker: WorkerHandle, job: Job) -> None:
        from ..fuzz import faultinject

        attempt = 0
        while True:
            remaining = job.remaining()
            if remaining <= 0:
                self.stats.count("serverd.timed-out")
                job.respond(protocol.error_response(
                    job.id, protocol.TIMEOUT,
                    f"deadline expired after "
                    f"{time.monotonic() - job.enqueued:.2f}s in queue"))
                return
            payload = dict(job.payload)
            payload["op"] = job.op
            payload["deadline_remaining"] = remaining
            if job.op == "compile" and not job.internal:
                requested = payload.get("level", 2)
                payload["requested_level"] = requested
                shifted = max(0, requested - self.degrade.shift)
                if shifted < requested:
                    self.stats.count("serverd.degraded-requests")
                payload["level"] = shifted
            inject = {}
            plan = faultinject.claim("server.worker-crash")
            if plan is not None:
                inject["crash"] = plan.seed
            plan = faultinject.claim("server.request-timeout")
            if plan is not None:
                inject["sleep"] = remaining + 0.5
            if inject:
                payload["inject"] = inject
            crashed = False
            try:
                worker.send(payload)
                if worker.poll(job.remaining()):
                    response = worker.recv()
                else:
                    # Executing past the deadline: the watchdog kills
                    # the worker — crash-only, so recovery is the same
                    # restart as for a real crash.
                    worker.restart(kill=True)
                    self.stats.count("serverd.worker-restarts")
                    self.stats.count("serverd.timed-out")
                    job.respond(protocol.error_response(
                        job.id, protocol.TIMEOUT,
                        f"deadline expired while executing "
                        f"(op {job.op})"))
                    return
            except (EOFError, BrokenPipeError, OSError):
                crashed = True
            if crashed:
                worker.restart()
                self.stats.count("serverd.worker-crashes")
                self.stats.count("serverd.worker-restarts")
                backoff = self._backoff(attempt, job)
                if (attempt < self.server_retries
                        and job.remaining() > backoff):
                    attempt += 1
                    self.stats.count("serverd.retried")
                    time.sleep(backoff)
                    continue
                job.respond(protocol.error_response(
                    job.id, protocol.WORKER_CRASH,
                    f"worker died executing op {job.op}; "
                    f"{attempt} retry(ies) spent"))
                return
            # A response came back; fold worker-side stats into ours.
            cache_stats = response.pop("cache_stats", None)
            if cache_stats:
                self.stats.merge(cache_stats, prefix="serverd.")
            if response.get("ok"):
                result = response["result"]
                worker_stats = result.get("stats")
                if isinstance(worker_stats, dict):
                    self.stats.merge(worker_stats, prefix="serverd.")
                self.stats.count("serverd.completed")
                job.respond(protocol.ok_response(job.id, result))
            else:
                error = response.get("error") or {}
                self.stats.count("serverd.failed")
                job.respond(protocol.error_response(
                    job.id, error.get("code", protocol.INTERNAL),
                    error.get("message", "request failed")))
            return

    # -- lifecycle ----------------------------------------------------------

    def start_drain(self) -> None:
        with self._queue_cond:
            self._draining = True

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is queued or in flight."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if not self.busy():
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            with self._idle_cond:
                self._idle_cond.wait(timeout=0.1)

    def stop(self, drain_timeout: float = 30.0) -> bool:
        """Drain, then stop dispatchers and workers.  True if drained."""
        self.start_drain()
        drained = self.wait_idle(drain_timeout)
        with self._queue_cond:
            self._stopped = True
            leftovers = list(self._queue)
            self._queue.clear()
            self._queue_cond.notify_all()
        for job in leftovers:  # only on a timed-out drain
            try:
                job.respond(protocol.error_response(
                    job.id, protocol.SHUTTING_DOWN,
                    "daemon stopped before this request ran"))
            except Exception:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        for worker in self.workers:
            worker.stop()
        return drained

    @property
    def worker_restarts(self) -> int:
        return sum(worker.restarts for worker in self.workers)
