"""The lc-serverd wire protocol: length-framed JSON with hard bounds.

One frame is::

    b"LCS1"  +  4-byte big-endian payload length  +  payload

where the payload is one UTF-8 JSON object.  Requests carry ``op``
(the request class), an optional client-chosen ``id`` echoed back on
the response, an optional ``deadline_ms``, and per-op fields
(:data:`REQUEST_SCHEMAS`).  Responses are ``{"id", "ok", "result"}``
or ``{"id", "ok": false, "error": {"code", "message", ...}}``.

The decoder is hardened the way the bytecode reader was hardened
(docs/ROBUSTNESS.md): the magic, the length field, and the JSON body
are all validated against hard caps *before* any allocation trusts
them, and every malformed input raises a structured
:class:`ServeError` carrying the byte offset where parsing stopped —
never an unhandled exception, and never an unbounded read.  A daemon
fed garbage closes that one connection and keeps serving
(tests/test_serverd.py feeds it seeded malformed, truncated and
oversized frames to prove it).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Optional

MAGIC = b"LCS1"
_LENGTH = struct.Struct(">I")
HEADER_BYTES = len(MAGIC) + _LENGTH.size

#: Hard cap on one frame's payload; bigger lengths are rejected from
#: the 4 header bytes alone, before any buffer is sized from them.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Smallest JSON object a frame could carry (``{}``).
MIN_PAYLOAD_BYTES = 2

# -- structured errors -------------------------------------------------------

#: Response error codes (the ``error.code`` field).
PROTOCOL = "PROTOCOL"            # malformed frame; the connection closes
BAD_REQUEST = "BAD_REQUEST"      # well-framed but invalid request
BUSY = "BUSY"                    # admission queue past high water: shed
TIMEOUT = "TIMEOUT"              # deadline expired (queued or executing)
WORKER_CRASH = "WORKER_CRASH"    # worker died; retries exhausted
REQUEST_FAILED = "REQUEST_FAILED"  # the work itself failed (bad source...)
INTERNAL = "INTERNAL"            # unexpected supervisor-side failure
SHUTTING_DOWN = "SHUTTING_DOWN"  # daemon is draining; no new work

#: Codes a client may transparently retry (with backoff, within its
#: retry budget).  TIMEOUT is deliberately absent: the deadline was the
#: caller's own contract, re-deciding it is the caller's call.
RETRYABLE_CODES = frozenset({BUSY, WORKER_CRASH})


class ServeError(Exception):
    """A protocol-level failure, located by absolute byte offset."""

    def __init__(self, message: str, offset: Optional[int] = None,
                 code: str = PROTOCOL):
        where = f" at byte offset {offset}" if offset is not None else ""
        super().__init__(message + where)
        self.offset = offset
        self.code = code


# -- request catalogue -------------------------------------------------------

#: op -> {field: validator}; every op also accepts ``id`` and
#: ``deadline_ms``.  Validators get the value and raise ServeError
#: (BAD_REQUEST) on trouble.
_MAX_SOURCES = 64
_MAX_RUNS = 32

#: Per-class default deadlines (milliseconds), enforced server-side by
#: the dispatch watchdog whether or not the client sets one.
DEFAULT_DEADLINE_MS = {
    "ping": 5_000,
    "stats": 5_000,
    "shutdown": 5_000,
    "sleep": 15_000,
    "compile": 120_000,
    "lint": 120_000,
    "reoptimize": 300_000,
    "triage": 300_000,
}

MAX_DEADLINE_MS = 600_000

#: Ops the supervisor answers inline; everything else runs on a worker.
SUPERVISOR_OPS = frozenset({"ping", "stats", "shutdown"})


def _want_sources(value: Any) -> None:
    if (not isinstance(value, list) or not value
            or len(value) > _MAX_SOURCES
            or not all(isinstance(item, str) for item in value)):
        raise ServeError(f"'sources' must be a non-empty list of at most "
                         f"{_MAX_SOURCES} strings", code=BAD_REQUEST)


def _want_level(value: Any) -> None:
    if not isinstance(value, int) or isinstance(value, bool) \
            or not 0 <= value <= 3:
        raise ServeError("'level' must be an integer in 0..3",
                         code=BAD_REQUEST)


def _want_int(name: str, low: int, high: int):
    def check(value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool) \
                or not low <= value <= high:
            raise ServeError(f"'{name}' must be an integer in "
                             f"{low}..{high}", code=BAD_REQUEST)
    return check


def _want_str(name: str):
    def check(value: Any) -> None:
        if not isinstance(value, str) or len(value) > 256:
            raise ServeError(f"'{name}' must be a short string",
                             code=BAD_REQUEST)
    return check


def _want_bool(name: str):
    def check(value: Any) -> None:
        if not isinstance(value, bool):
            raise ServeError(f"'{name}' must be a boolean",
                             code=BAD_REQUEST)
    return check


def _want_runs(value: Any) -> None:
    if not isinstance(value, list) or len(value) > _MAX_RUNS:
        raise ServeError(f"'runs' must be a list of at most {_MAX_RUNS} "
                         "entries", code=BAD_REQUEST)
    for entry in value:
        if (not isinstance(entry, dict)
                or not isinstance(entry.get("function", "main"), str)
                or not isinstance(entry.get("args", []), list)):
            raise ServeError("each run must be {'function': str, "
                             "'args': list}", code=BAD_REQUEST)


def _want_checks(value: Any) -> None:
    if (not isinstance(value, list)
            or not all(isinstance(item, str) for item in value)):
        raise ServeError("'checks' must be a list of checker names",
                         code=BAD_REQUEST)


def _want_source(value: Any) -> None:
    if not isinstance(value, str):
        raise ServeError("'source' must be a string", code=BAD_REQUEST)


REQUEST_SCHEMAS: dict[str, dict] = {
    "ping": {},
    "stats": {},
    "shutdown": {},
    "sleep": {"ms": _want_int("ms", 0, 10_000)},
    "compile": {"sources": _want_sources, "name": _want_str("name"),
                "level": _want_level, "lto": _want_bool("lto")},
    "lint": {"sources": _want_sources, "name": _want_str("name"),
             "level": _want_level, "checks": _want_checks},
    "reoptimize": {"sources": _want_sources, "name": _want_str("name"),
                   "level": _want_level, "runs": _want_runs},
    "triage": {"seed": _want_int("seed", 0, 2**31), "source": _want_source,
               "size": _want_int("size", 1, 8),
               "step_limit": _want_int("step_limit", 1, 50_000_000)},
}

#: Fields required to be present (beyond having valid types when given).
_REQUIRED = {
    "compile": ("sources",),
    "lint": ("sources",),
    "reoptimize": ("sources",),
}


def validate_request(obj: Any) -> tuple[str, dict]:
    """Check one decoded frame as a request; returns ``(op, payload)``.

    Raises :class:`ServeError` with code ``BAD_REQUEST`` on anything
    malformed — the connection survives, only the request is refused.
    """
    if not isinstance(obj, dict):
        raise ServeError("request must be a JSON object", code=BAD_REQUEST)
    op = obj.get("op")
    if not isinstance(op, str) or op not in REQUEST_SCHEMAS:
        known = ", ".join(sorted(REQUEST_SCHEMAS))
        raise ServeError(f"unknown op {op!r} (known: {known})",
                         code=BAD_REQUEST)
    request_id = obj.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ServeError("'id' must be an integer or string",
                         code=BAD_REQUEST)
    deadline = obj.get("deadline_ms")
    if deadline is not None:
        _want_int("deadline_ms", 1, MAX_DEADLINE_MS)(deadline)
    schema = REQUEST_SCHEMAS[op]
    payload = {}
    for field, value in obj.items():
        if field in ("op", "id", "deadline_ms"):
            continue
        if field not in schema:
            raise ServeError(f"op {op!r} does not take field {field!r}",
                             code=BAD_REQUEST)
        schema[field](value)
        payload[field] = value
    if op == "triage" and "seed" not in payload and "source" not in payload:
        raise ServeError("triage needs 'seed' or 'source'",
                         code=BAD_REQUEST)
    for field in _REQUIRED.get(op, ()):
        if field not in payload:
            raise ServeError(f"op {op!r} requires field {field!r}",
                             code=BAD_REQUEST)
    return op, payload


# -- response construction ---------------------------------------------------

def ok_response(request_id, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, code: str, message: str,
                   retry_after_ms: Optional[int] = None) -> dict:
    error = {"code": code, "message": message,
             "retryable": code in RETRYABLE_CODES}
    if retry_after_ms is not None:
        error["retry_after_ms"] = retry_after_ms
    return {"id": request_id, "ok": False, "error": error}


# -- framing -----------------------------------------------------------------

def encode_frame(obj: Any, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    payload = json.dumps(obj, separators=(",", ":"),
                         sort_keys=True).encode("utf-8")
    if len(payload) > max_frame:
        raise ServeError(f"frame payload of {len(payload)} bytes exceeds "
                         f"the {max_frame}-byte cap")
    return MAGIC + _LENGTH.pack(len(payload)) + payload


class FrameStream:
    """Frame reader/writer over one socket, tracking byte offsets.

    ``read_frame`` returns the decoded object, ``None`` on a clean EOF
    *between* frames, and raises :class:`ServeError` for everything
    else — bad magic, an out-of-bounds length, a mid-frame EOF, or a
    payload that is not one JSON object.  The offset in the error is
    absolute over the life of the connection, so a client log line
    locates the garbage byte exactly.
    """

    def __init__(self, sock: socket.socket,
                 max_frame: int = MAX_FRAME_BYTES):
        self._sock = sock
        self.max_frame = max_frame
        self.offset = 0  # bytes consumed from the peer so far

    # .. reading ............................................................

    def _read_exact(self, want: int, what: str) -> Optional[bytes]:
        """``want`` bytes, ``None`` on immediate EOF, error mid-read."""
        chunks = []
        got = 0
        while got < want:
            try:
                chunk = self._sock.recv(min(want - got, 1 << 16))
            except (ConnectionError, socket.timeout) as error:
                raise ServeError(f"connection failed reading {what}: "
                                 f"{error}", self.offset + got)
            if not chunk:
                if got == 0:
                    return None
                raise ServeError(f"truncated frame: EOF after {got} of "
                                 f"{want} {what} bytes",
                                 self.offset + got)
            chunks.append(chunk)
            got += len(chunk)
        data = b"".join(chunks)
        self.offset += got
        return data

    def read_frame(self) -> Optional[Any]:
        start = self.offset
        header = self._read_exact(HEADER_BYTES, "header")
        if header is None:
            return None
        if header[:len(MAGIC)] != MAGIC:
            raise ServeError(f"bad frame magic {header[:len(MAGIC)]!r} "
                             f"(want {MAGIC!r})", start)
        (length,) = _LENGTH.unpack(header[len(MAGIC):])
        if length < MIN_PAYLOAD_BYTES:
            raise ServeError(f"frame length {length} below the "
                             f"{MIN_PAYLOAD_BYTES}-byte minimum",
                             start + len(MAGIC))
        if length > self.max_frame:
            raise ServeError(f"frame length {length} exceeds the "
                             f"{self.max_frame}-byte cap",
                             start + len(MAGIC))
        body_start = self.offset
        payload = self._read_exact(length, "payload")
        if payload is None:
            raise ServeError("truncated frame: EOF before payload",
                             body_start)
        try:
            return json.loads(payload.decode("utf-8"))
        except UnicodeDecodeError as error:
            raise ServeError(f"frame payload is not UTF-8: {error.reason}",
                             body_start + error.start)
        except json.JSONDecodeError as error:
            raise ServeError(f"frame payload is not JSON: {error.msg}",
                             body_start + error.pos)

    # .. writing ............................................................

    def write_frame(self, obj: Any) -> None:
        self._sock.sendall(encode_frame(obj, self.max_frame))
