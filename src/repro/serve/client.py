"""ServeClient: the polite, deadline-aware lc-serverd client.

Retry policy mirrors what the daemon promises:

* ``BUSY`` and ``WORKER_CRASH`` responses are marked retryable and are
  retried under **capped exponential backoff with deterministic
  jitter**, honouring the server's ``retry_after_ms`` hint when one is
  given;
* retries draw on a **per-client retry budget** shared across all of
  the client's requests — a client that keeps meeting a busy daemon
  runs out of politeness and starts surfacing the errors, instead of
  amplifying an overload with synchronized retry storms;
* ``TIMEOUT`` is never retried automatically: the deadline was this
  client's own contract;
* transport failures (connection refused mid-conversation, a torn
  frame) count as retryable transient faults and reconnect.

Every request carries a deadline; the socket read timeout is the
deadline plus slack, so a wedged daemon yields a structured
:class:`ServeTransportError` instead of a hang.
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from base64 import b64decode
from typing import Optional, Sequence

from . import protocol
from .protocol import FrameStream, ServeError


class ServeClientError(Exception):
    """Base of everything this client raises on purpose."""


class ServeRequestError(ServeClientError):
    """The daemon answered with a structured error response."""

    def __init__(self, code: str, message: str,
                 retry_after_ms: Optional[int] = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms


class ServeTransportError(ServeClientError):
    """The conversation itself failed (connect, frame, timeout)."""


class ServeClient:
    """One connection to one daemon, with retries and a budget."""

    def __init__(self, address, connect_timeout: float = 5.0,
                 retry_budget: int = 8, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0, jitter_seed: int = 0,
                 max_frame: int = protocol.MAX_FRAME_BYTES):
        #: A Unix socket path (str) or a ``(host, port)`` pair.
        self.address = address
        self.connect_timeout = connect_timeout
        self.retry_budget = retry_budget
        self.retries_used = 0
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(jitter_seed)
        self.max_frame = max_frame
        self._sock: Optional[socket.socket] = None
        self._stream: Optional[FrameStream] = None
        self._ids = itertools.count(1)

    # -- transport ----------------------------------------------------------

    def _connect(self) -> None:
        if self._stream is not None:
            return
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout)
        try:
            sock.connect(self.address if isinstance(self.address, str)
                         else tuple(self.address))
        except OSError as error:
            sock.close()
            raise ServeTransportError(
                f"cannot connect to {self.address!r}: {error}")
        self._sock = sock
        self._stream = FrameStream(sock, self.max_frame)

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._stream = None

    def close(self) -> None:
        self._disconnect()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- the request loop ---------------------------------------------------

    def _take_retry(self) -> bool:
        if self.retries_used >= self.retry_budget:
            return False
        self.retries_used += 1
        return True

    def _backoff(self, attempt: int,
                 hint_ms: Optional[int] = None) -> float:
        base = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        delay = base * (0.5 + self._rng.random() / 2.0)
        if hint_ms is not None:
            delay = max(delay, hint_ms / 1000.0)
        return min(delay, self.backoff_cap)

    def request(self, op: str, deadline_ms: Optional[int] = None,
                **payload) -> dict:
        """One request; returns the ``result`` dict or raises.

        Retryable failures (``BUSY``, ``WORKER_CRASH``, transport
        faults) are retried with backoff while the per-client budget
        lasts; everything else surfaces as :class:`ServeRequestError`.
        """
        if deadline_ms is None:
            deadline_ms = protocol.DEFAULT_DEADLINE_MS.get(op, 60_000)
        attempt = 0
        while True:
            try:
                return self._request_once(op, deadline_ms, payload)
            except ServeRequestError as error:
                if (error.code not in protocol.RETRYABLE_CODES
                        or not self._take_retry()):
                    raise
                time.sleep(self._backoff(attempt, error.retry_after_ms))
            except ServeTransportError:
                self._disconnect()
                if not self._take_retry():
                    raise
                time.sleep(self._backoff(attempt))
            attempt += 1

    def _request_once(self, op: str, deadline_ms: int,
                      payload: dict) -> dict:
        self._connect()
        request_id = next(self._ids)
        frame = {"op": op, "id": request_id, "deadline_ms": deadline_ms}
        frame.update(payload)
        # Past the deadline, allow slack for the daemon's own TIMEOUT
        # response to arrive; only then declare the transport dead.
        self._sock.settimeout(deadline_ms / 1000.0 + 10.0)
        try:
            self._stream.write_frame(frame)
            while True:
                response = self._stream.read_frame()
                if response is None:
                    raise ServeTransportError(
                        "daemon closed the connection mid-request")
                if not isinstance(response, dict):
                    raise ServeTransportError(
                        f"non-object response frame: {response!r}")
                if response.get("id") == request_id:
                    break
                # A response to an earlier, abandoned request (e.g. a
                # previous deadline miss finally answered): skip it.
        except socket.timeout:
            raise ServeTransportError(
                f"no response within {deadline_ms}ms (+slack) for "
                f"op {op!r}")
        except (OSError, ServeError) as error:
            raise ServeTransportError(f"transport failed: {error}")
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error") or {}
        raise ServeRequestError(error.get("code", protocol.INTERNAL),
                                error.get("message", "request failed"),
                                error.get("retry_after_ms"))

    # -- convenience wrappers ------------------------------------------------

    def ping(self, deadline_ms: Optional[int] = None) -> dict:
        return self.request("ping", deadline_ms)

    def stats(self, deadline_ms: Optional[int] = None) -> dict:
        return self.request("stats", deadline_ms)

    def shutdown(self) -> dict:
        return self.request("shutdown")

    def compile(self, sources: Sequence[str], name: str = "program",
                level: int = 2, lto: bool = True,
                deadline_ms: Optional[int] = None) -> dict:
        """Compile; the returned dict's ``bytecode`` is decoded bytes."""
        result = self.request("compile", deadline_ms,
                              sources=list(sources), name=name,
                              level=level, lto=lto)
        result["bytecode"] = b64decode(result["bytecode"])
        return result

    def lint(self, sources: Sequence[str], name: str = "program",
             level: int = 2, checks: Optional[Sequence[str]] = None,
             deadline_ms: Optional[int] = None) -> dict:
        payload = {"sources": list(sources), "name": name, "level": level}
        if checks is not None:
            payload["checks"] = list(checks)
        return self.request("lint", deadline_ms, **payload)

    def reoptimize(self, sources: Sequence[str], name: str = "program",
                   level: int = 2, runs: Optional[list] = None,
                   deadline_ms: Optional[int] = None) -> dict:
        payload = {"sources": list(sources), "name": name, "level": level}
        if runs is not None:
            payload["runs"] = runs
        result = self.request("reoptimize", deadline_ms, **payload)
        result["bytecode"] = b64decode(result["bytecode"])
        return result

    def triage(self, seed: Optional[int] = None,
               source: Optional[str] = None, size: int = 2,
               step_limit: int = 500_000,
               deadline_ms: Optional[int] = None) -> dict:
        payload: dict = {"size": size, "step_limit": step_limit}
        if seed is not None:
            payload["seed"] = seed
        if source is not None:
            payload["source"] = source
        return self.request("triage", deadline_ms, **payload)
