"""The synthetic benchmark suite standing in for SPEC CPU2000 (C).

Each program is written in LC and reproduces the *idiom mix* the paper
reports for its SPEC counterpart — custom allocators in parser/gap/
vortex, struct punning in gcc/perlbmk, disciplined arrays and structs
in art/mcf/equake/bzip2, and so on — so the Table 1 typed-access
fractions land in the same tiers even though the programs are small.

All programs are deterministic (xorshift PRNG, fixed seeds), print
checksums through the runtime library, and return a value mod 251.
"""

from __future__ import annotations

import os
from typing import Optional

_PROGRAM_DIR = os.path.join(os.path.dirname(__file__), "programs")


class BenchmarkInfo:
    """Descriptor for one suite program."""

    __slots__ = ("name", "spec_name", "paper_typed_percent", "description")

    def __init__(self, name: str, spec_name: str, paper_typed_percent: float,
                 description: str):
        self.name = name
        self.spec_name = spec_name
        #: Table 1 "Typed Percent" from the paper, for comparison.
        self.paper_typed_percent = paper_typed_percent
        self.description = description


#: The fifteen SPEC CPU2000 C benchmarks of paper Table 1, in table order.
BENCHMARKS: list[BenchmarkInfo] = [
    BenchmarkInfo("gzip", "164.gzip", 84.7,
                  "LZ77 compression with hash chains"),
    BenchmarkInfo("vpr", "175.vpr", 81.3,
                  "FPGA placement by simulated annealing"),
    BenchmarkInfo("gcc", "176.gcc", 54.1,
                  "expression trees with per-kind struct views (punning)"),
    BenchmarkInfo("mesa", "177.mesa", 62.8,
                  "3D vertex pipeline over generic vertex buffers"),
    BenchmarkInfo("art", "179.art", 95.7,
                  "adaptive resonance neural network (disciplined)"),
    BenchmarkInfo("mcf", "181.mcf", 95.4,
                  "min-cost flow over linked node/arc structs (disciplined)"),
    BenchmarkInfo("equake", "183.equake", 90.7,
                  "sparse-matrix earthquake simulation"),
    BenchmarkInfo("crafty", "186.crafty", 82.6,
                  "bitboard game search with a punned hash table sweep"),
    BenchmarkInfo("ammp", "188.ammp", 69.3,
                  "molecular dynamics with one mixed-kind object list"),
    BenchmarkInfo("parser", "197.parser", 36.4,
                  "link parsing on a custom pool allocator"),
    BenchmarkInfo("perlbmk", "253.perlbmk", 42.2,
                  "stack interpreter with arena-allocated tagged scalars"),
    BenchmarkInfo("gap", "254.gap", 56.2,
                  "permutation groups on a bag storage manager"),
    BenchmarkInfo("vortex", "255.vortex", 45.7,
                  "object database on a chunked memory manager"),
    BenchmarkInfo("bzip2", "256.bzip2", 88.7,
                  "block-sorting compression over flat arrays"),
    BenchmarkInfo("twolf", "300.twolf", 79.6,
                  "standard-cell placement by simulated annealing"),
]

_BY_NAME = {info.name: info for info in BENCHMARKS}


def benchmark_names() -> list[str]:
    """Suite program names in Table 1 order."""
    return [info.name for info in BENCHMARKS]


def benchmark_info(name: str) -> BenchmarkInfo:
    return _BY_NAME[name]


def load_source(name: str) -> str:
    """The LC source text of one suite program."""
    path = os.path.join(_PROGRAM_DIR, f"{name}.lc")
    with open(path, "r") as handle:
        return handle.read()


def compile_benchmark(name: str, level: int = 2, lto: bool = True):
    """Compile one suite program through the standard pipeline."""
    from ..driver import compile_and_link

    return compile_and_link([load_source(name)], name, level, lto)
