"""Translation validation and exhaustively-verified peephole synthesis.

Two consumers of one narrow-width verification idea:

* :mod:`.validate` — after each transform pass, check that every
  changed function *refines* its pre-pass version (exhaustive
  enumeration of the narrow input window for loop-free pure code,
  bounded interpreter co-execution for the rest).  Wired into the
  transactional pass manager as ``--translation-validate``.
* :mod:`.synth` — enumerate candidate algebraic peepholes, verify
  them exhaustively at narrow bitwidths, dedupe against the
  hand-written instcombine folds, and emit the survivors as generated
  rules (``lc-synth``).
"""

from .evaluate import UNDEF, Unsupported, evaluate_function, supports
from .validate import (
    FAILED, PASSED, SKIPPED_SIZE, SKIPPED_UNSUPPORTED,
    Counterexample, FunctionValidation, TranslationValidationError,
    TranslationValidator, ValidationConfig, refines,
)

__all__ = [
    "UNDEF", "Unsupported", "evaluate_function", "supports",
    "FAILED", "PASSED", "SKIPPED_SIZE", "SKIPPED_UNSUPPORTED",
    "Counterexample", "FunctionValidation", "TranslationValidationError",
    "TranslationValidator", "ValidationConfig", "refines",
]
