"""Translation validation: per-run refinement checking of transforms.

After a transform pass runs, each function it changed is checked
against its own pre-pass version for **refinement**: on every probed
input, the transformed function may only be *more* defined than the
original —

* original traps (division by zero, memory fault)  -> the transformed
  function may do anything on that input;
* original returns an unspecified (undef-derived) value -> the
  transformed function may return any value;
* original returns a concrete value and output -> the transformed
  function must produce exactly that value and output.

Two engines share that comparator:

* **exhaustive** (:mod:`.evaluate`) — loop-free functions in the pure
  scalar fragment are enumerated over the whole narrow input window;
  a reported counterexample is a concrete replayable input;
* **co-execution** — everything else runs through the reference
  interpreter on a bounded, deterministic input sample (boundary
  values plus seeded draws from each argument's window), before and
  after, under a step budget.  Timeouts are incomparable and skipped,
  never flagged.

Functions whose arguments are not first-class scalars (pointers,
varargs), functions that *return* a pointer (a returned address is
allocation layout, which transforms legitimately change — an allocator
under mem2reg moves every address it hands out), and functions whose
signature the pass changed are skipped as unsupported — the documented
incompleteness for memory-heavy code.  Skips and validations are
counted so ``-stats`` can report coverage.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from random import Random
from typing import Optional

from ..core import print_function
from ..core.constfold import ArithmeticFault
from ..core.module import Function, Module
from . import evaluate
from .evaluate import Unsupported, argument_domain, outcomes_equal

#: validation statuses, in -stats counter spelling
PASSED = "passed"
FAILED = "failed"
SKIPPED_SIZE = "skipped-by-size"
SKIPPED_UNSUPPORTED = "skipped-unsupported"


@dataclass
class ValidationConfig:
    """Budgets for one validator instance."""

    #: ceiling on the exhaustive engine's input product; domains that
    #: cannot shrink under it fall back to co-execution sampling
    max_tuples: int = 512
    #: sampled input tuples per function for the co-execution engine
    exec_inputs: int = 6
    #: interpreter step budget per co-executed input (the transformed
    #: side gets ``after_step_factor`` times more: a pass may trade
    #: instructions for steps without becoming "worse").  Deliberately
    #: small: a timed-out input is skipped as incomparable — soundness
    #: is unaffected, only coverage — and the budget is paid per
    #: (pass, function, input), every compile, on the hot path.
    step_limit: int = 25_000
    after_step_factor: int = 4
    #: functions beyond this many instructions (before + after) are
    #: counted skipped-by-size rather than co-executed
    max_function_size: int = 4000


@dataclass
class Counterexample:
    """A concrete input on which refinement fails."""

    function: str
    args: tuple
    before: str
    after: str
    engine: str

    def describe(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return (f"@{self.function}({rendered}): before {self.before}; "
                f"after {self.after} [{self.engine}]")


@dataclass
class FunctionValidation:
    """The validator's verdict for one changed function."""

    function: str
    status: str
    engine: Optional[str] = None
    inputs_checked: int = 0
    counterexample: Optional[Counterexample] = None


class TranslationValidationError(Exception):
    """Raised into the transactional pass manager on a refinement
    violation; carries the concrete counterexample."""

    def __init__(self, pass_name: str, result: FunctionValidation):
        self.pass_name = pass_name
        self.result = result
        detail = (result.counterexample.describe()
                  if result.counterexample else f"@{result.function}")
        super().__init__(f"refinement violated by {pass_name}: {detail}")


def _describe_outcome(outcome: tuple) -> str:
    kind = outcome[0]
    if kind == "value":
        return f"value {outcome[1]!r}"
    if kind == "trap":
        return f"trap({outcome[1]})"
    if kind == "undef":
        return "unspecified value"
    return kind


def refines(before: tuple, after: tuple) -> Optional[bool]:
    """Does ``after`` refine ``before`` on one input?  ``None`` means
    the pair is incomparable (a timeout on either side, or a before
    outcome already unspecified in a way we cannot discriminate) and
    must be skipped, never flagged."""
    if before[0] == "timeout" or after[0] == "timeout":
        return None
    if before[0] == "trap":
        return True
    if before[0] == "undef":
        # Unspecified result: any defined result refines it.  A trap
        # on the after side *could* still be legal (the unspecified
        # control path may itself trap), so skip rather than flag.
        return True if after[0] in ("value", "undef") else None
    if after[0] != "value":
        return False
    return outcomes_equal(before, after)


def _signature(function: Function) -> tuple:
    return (tuple(arg.type for arg in function.args), function.return_type)


def _sample_inputs(function: Function, count: int) -> Optional[list[tuple]]:
    """Deterministic input sample for co-execution: boundary tuples
    plus seeded draws from each argument's window.  None when an
    argument type is outside the enumerable fragment."""
    domains = []
    for arg in function.args:
        domain = argument_domain(arg.type)
        if domain is None:
            return None
        domains.append(domain)
    if not domains:
        return [()]
    inputs: list[tuple] = []
    seen = set()

    def push(candidate: tuple) -> None:
        if candidate not in seen:
            seen.add(candidate)
            inputs.append(candidate)

    push(tuple(domain[0] for domain in domains))          # all minimums
    push(tuple(domain[-1] for domain in domains))         # all maximums
    push(tuple(sorted(domain, key=abs)[0] for domain in domains))  # zeros
    # the distinct tuple space can be smaller than ``count`` (a single
    # bool or float argument) — cap the target or the draw loop never
    # terminates
    space = 1
    for domain in domains:
        space *= len(domain)
        if space >= count:
            break
    target = min(count, space)
    rng = Random(zlib.crc32(function.name.encode("utf-8")))
    attempts = 0
    while len(inputs) < target and attempts < count * 32:
        attempts += 1
        push(tuple(rng.choice(domain) for domain in domains))
    return inputs


def _deterministic_clock(interp, args):
    """Replacement ``clock`` external for co-execution: the default one
    reads the interpreter's *step counter*, which legitimately differs
    between the pre- and post-pass modules.  Counting calls instead is
    identical on both sides of any refinement-correct transform."""
    interp._tvalid_clock = getattr(interp, "_tvalid_clock", 0) + 1000
    return interp._tvalid_clock


def _run_interpreter(module: Module, function_name: str, args: tuple,
                     step_limit: int) -> tuple:
    """One bounded reference execution -> (kind, value, output)."""
    from ..execution.interpreter import (
        ExecutionError, Interpreter, StepLimitExceeded,
    )
    from ..execution.memory import MemoryFault

    interp = Interpreter(module, step_limit=step_limit,
                         extra_externals={"clock": _deterministic_clock})
    try:
        value = interp.run(function_name, args)
    except StepLimitExceeded:
        return ("timeout", None, "".join(interp.output))
    except (ArithmeticFault, MemoryFault, ExecutionError) as fault:
        return ("trap", type(fault).__name__, "".join(interp.output))
    return ("value", value, "".join(interp.output))


class TranslationValidator:
    """Checks a transformed module against its pre-pass snapshot."""

    def __init__(self, config: Optional[ValidationConfig] = None):
        self.config = config or ValidationConfig()

    # -- module-level driver ------------------------------------------------

    def validate(self, before: Module, after: Module,
                 only_function: Optional[str] = None,
                 ) -> list[FunctionValidation]:
        """Validate every function the pass changed (or one named
        function); unchanged functions produce no entry."""
        results = []
        for name, after_fn in after.functions.items():
            if after_fn.is_declaration:
                continue
            if only_function is not None and name != only_function:
                continue
            before_fn = before.functions.get(name)
            if before_fn is None or before_fn.is_declaration:
                # A function the pass materialized from nothing (no
                # pass does today); nothing to refine against.
                continue
            if _signature(before_fn) != _signature(after_fn):
                results.append(FunctionValidation(name, SKIPPED_UNSUPPORTED))
                continue
            if print_function(before_fn) == print_function(after_fn):
                continue
            results.append(self.validate_pair(before, after,
                                              before_fn, after_fn))
        return results

    # -- one function pair --------------------------------------------------

    def validate_pair(self, before: Module, after: Module,
                      before_fn: Function, after_fn: Function,
                      ) -> FunctionValidation:
        name = after_fn.name
        if before_fn.return_type.is_pointer:
            # A returned address is allocation layout, not semantics:
            # any transform that adds or removes an alloca legitimately
            # moves it (mem2reg on an allocator function, say).
            return FunctionValidation(name, SKIPPED_UNSUPPORTED)
        if evaluate.supports(before_fn) and evaluate.supports(after_fn):
            inputs = evaluate.input_tuples(before_fn, self.config.max_tuples)
            if inputs is not None:
                verdict = self._exhaustive(before_fn, after_fn, inputs)
                if verdict is not None:
                    return verdict
                # fell out of the pure fragment mid-evaluation; co-execute
        size = (before_fn.instruction_count() + after_fn.instruction_count())
        if size > self.config.max_function_size:
            return FunctionValidation(name, SKIPPED_SIZE)
        inputs = _sample_inputs(before_fn, self.config.exec_inputs)
        if inputs is None:
            return FunctionValidation(name, SKIPPED_UNSUPPORTED)
        return self._coexecute(before, after, name, inputs)

    def _exhaustive(self, before_fn: Function, after_fn: Function,
                    inputs: list[tuple]) -> Optional[FunctionValidation]:
        name = after_fn.name
        checked = 0
        for args in inputs:
            try:
                outcome_before = evaluate.evaluate_function(before_fn, args)
                outcome_after = evaluate.evaluate_function(after_fn, args)
            except Unsupported:
                return None
            verdict = refines(outcome_before, outcome_after)
            if verdict is False:
                return FunctionValidation(
                    name, FAILED, engine="exhaustive",
                    inputs_checked=checked,
                    counterexample=Counterexample(
                        name, args,
                        _describe_outcome(outcome_before),
                        _describe_outcome(outcome_after),
                        "exhaustive"))
            if verdict:
                checked += 1
        return FunctionValidation(name, PASSED, engine="exhaustive",
                                  inputs_checked=checked)

    def _coexecute(self, before: Module, after: Module, name: str,
                   inputs: list[tuple]) -> FunctionValidation:
        checked = 0
        for args in inputs:
            outcome_before = self._bounded_run(before, name, args,
                                               self.config.step_limit)
            if outcome_before is None or outcome_before[0] == "timeout":
                continue  # incomparable: don't pay for the after run
            outcome_after = self._bounded_run(
                after, name, args,
                self.config.step_limit * self.config.after_step_factor)
            if outcome_after is None:
                continue
            kind_b, value_b, output_b = outcome_before
            kind_a, value_a, output_a = outcome_after
            verdict = refines((kind_b, value_b), (kind_a, value_a))
            if verdict and kind_b == "value" and output_b != output_a:
                verdict = False
            if verdict is False:
                return FunctionValidation(
                    name, FAILED, engine="coexec", inputs_checked=checked,
                    counterexample=Counterexample(
                        name, args,
                        _describe_outcome((kind_b, value_b)),
                        _describe_outcome((kind_a, value_a)),
                        "coexec"))
            if verdict:
                checked += 1
        return FunctionValidation(name, PASSED, engine="coexec",
                                  inputs_checked=checked)

    @staticmethod
    def _bounded_run(module: Module, name: str, args: tuple,
                     step_limit: int) -> Optional[tuple]:
        try:
            return _run_interpreter(module, name, args, step_limit)
        except Exception:
            # An engine-level failure (not a program trap) proves
            # nothing about refinement; skip the input.
            return None
