"""lc-synth: exhaustively-verified peephole synthesis.

A miniature superoptimizer in the verify-then-promote style: enumerate
candidate rewrites over 2-3 instruction expression DAGs, *prove* each
one by exhaustive evaluation at narrow bitwidths, and only then admit
it to instcombine's generated rule set.  PR 4's double-cast miscompile
is the motivating bug class: a plausible algebraic identity that holds
at one width/signedness and fails at another.  Here no identity ships
unless it survives

1. **exhaustive** evaluation at 4 bits (every input pair, both
   signednesses) — the same narrow-width reinterpretation the
   translation validator enumerates;
2. **exhaustive** evaluation at 8 bits (the real sbyte/ubyte types);
3. **sampled** evaluation at 16/32/64 bits (boundary cross products
   plus seeded draws), which kills width-specific identities
   (``x shl 8 == 0`` holds at 8 bits only);

and is then **deduplicated**: a rule the hand-written folds already
reduce at least as far is noise, not knowledge.

Semantics come from :func:`repro.transforms.peephole.eval_tree`, which
delegates to :mod:`repro.core.constfold` — the interpreter's own
evaluators — so "verified here" means "true in execution".

The cast half of the bug class is audited rather than synthesized:
:func:`verify_cast_chain` exhaustively checks every double-cast fold
candidate ``cast (cast x: src to mid) to dst`` and must agree exactly
with instcombine's ``_cast_pair_foldable`` guard — the buggy pre-PR-4
fold is rejected with a concrete counterexample (``lc-synth
--self-check`` and the regression tests pin this).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from random import Random
from typing import Iterable, Optional, Sequence

from ..core import parse_module, types
from ..transforms.peephole import (
    Rule, eval_tree, tree_cost, tree_cvars, tree_name, tree_vars,
)

ARITH_OPS = ("add", "sub", "and", "or", "xor")
SHIFT_OPS = ("shl", "shr")
CMP_OPS = ("seteq", "setne", "setlt", "setgt", "setle", "setge")
_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor",
                          "seteq", "setne"})

_VARS = (("var", 0), ("var", 1))
_CONSTS = (("const", 0), ("const", 1), ("const", -1), ("const", 2))
_LEAVES = _VARS + _CONSTS
_AMOUNTS = (("amt", 1), ("amt", 2))

_SAMPLED_WIDTHS = (16, 32, 64)
_SAMPLES_PER_WIDTH = 64


class _NarrowInt(types.IntegerType):
    """A 4-bit integer type for exhaustive verification only.

    The real type lattice stops at 8 bits; this synthetic width never
    appears in IR — it exists so the identity check can enumerate every
    input pair (256 of them) while exercising the same width-parametric
    ``wrap`` semantics the genuine types use."""

    def __init__(self, bits: int, signed: bool):
        # bypass IntegerType's named-width whitelist
        self.bits = bits
        self.signed = signed

    def __str__(self) -> str:
        return f"{'i' if self.signed else 'u'}{self.bits}"


_NARROW = {True: _NarrowInt(4, True), False: _NarrowInt(4, False)}


def _int_type(bits: int, signed: bool) -> types.IntegerType:
    if bits == 4:
        return _NARROW[signed]
    return types.integer(bits, signed)


# ----------------------------------------------------------------------
# Candidate enumeration
# ----------------------------------------------------------------------

def _depth1(ops: Sequence[str], vars_only: bool = False) -> list[tuple]:
    leaves = _VARS if vars_only else _LEAVES
    exprs = []
    for op in ops:
        if op in SHIFT_OPS:
            for value in _VARS:   # shifting a constant folds away
                for amount in _AMOUNTS:
                    exprs.append((op, value, amount))
            continue
        for lhs in leaves:
            for rhs in leaves:
                if lhs[0] == "const" and rhs[0] == "const":
                    continue  # fully constant: constprop territory
                exprs.append((op, lhs, rhs))
    return exprs


def enumerate_lhs(arith_ops: Sequence[str] = ARITH_OPS,
                  shift_ops: Sequence[str] = SHIFT_OPS,
                  cmp_ops: Sequence[str] = CMP_OPS) -> Iterable[tuple]:
    """Candidate LHS trees: cost-2/3 DAGs with at least one variable."""
    inner = _depth1(tuple(arith_ops) + tuple(shift_ops))
    inner_vars = _depth1(tuple(arith_ops) + tuple(shift_ops), vars_only=True)
    # cost 2: one nested subexpression
    for op in arith_ops:
        for sub in inner:
            for leaf in _LEAVES:
                yield (op, sub, leaf)
                yield (op, leaf, sub)
    for op in shift_ops:
        for sub in inner:
            for amount in _AMOUNTS:
                yield (op, sub, amount)
    # cost 3: two nested subexpressions (variable-leaf subtrees only,
    # to keep the space enumerable)
    for op in arith_ops:
        for left in inner_vars:
            for right in inner_vars:
                yield (op, left, right)
    # comparison-rooted candidates: cmp of a computed value
    for op in cmp_ops:
        for sub in inner:
            for leaf in _LEAVES:
                yield (op, sub, leaf)
                yield (op, leaf, sub)


def rhs_pool(arith_ops: Sequence[str] = ARITH_OPS,
             shift_ops: Sequence[str] = SHIFT_OPS,
             cmp_ops: Sequence[str] = CMP_OPS) -> list[tuple]:
    """Replacement candidates: anything computable in <= 1 instruction."""
    pool: list[tuple] = list(_LEAVES)
    pool.extend(_depth1(tuple(arith_ops) + tuple(shift_ops)))
    for op in cmp_ops:
        for lhs in _VARS:
            for rhs in _LEAVES:
                if lhs is not rhs:
                    pool.append((op, lhs, rhs))
    pool.append(("bool", True))
    pool.append(("bool", False))
    return pool


_LEAF_HEADS = ("var", "const", "bool", "amt", "cvar")


def _canonical(tree: tuple) -> tuple:
    """Sort commutative operands so trivially-permuted duplicates
    collapse to one candidate."""
    head = tree[0]
    if head in _LEAF_HEADS:
        return tree
    if head == "cfold":
        return (head, tree[1], *(_canonical(o) for o in tree[2:]))
    operands = [_canonical(operand) for operand in tree[1:]]
    if head in _COMMUTATIVE:
        operands.sort()
    return (head, *operands)


def _alpha_rename(tree: tuple, mapping: dict) -> tuple:
    """Renumber variables by first occurrence, so ``y+y -> y shl 1``
    and ``x+x -> x shl 1`` collapse to one rule."""
    head = tree[0]
    if head == "var":
        if tree[1] not in mapping:
            mapping[tree[1]] = len(mapping)
        return ("var", mapping[tree[1]])
    if head in ("const", "bool", "amt", "cvar"):
        return tree
    if head == "cfold":
        return tree  # cvar/const operands only: nothing to rename
    return (head, *(_alpha_rename(operand, mapping) for operand in tree[1:]))


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------

def _domain(ty: types.IntegerType) -> list[int]:
    return [ty.wrap(v) for v in range(1 << ty.bits)]


def _boundary(ty: types.IntegerType) -> list[int]:
    return sorted({ty.wrap(v) for v in
                   (0, 1, -1, 2, -2, ty.min_value, ty.max_value,
                    ty.min_value + 1, ty.max_value - 1)})


def _agree(lhs: tuple, rhs: tuple, ty: types.IntegerType,
           envs: Iterable[tuple]) -> Optional[tuple]:
    """First input env where the trees disagree, or None."""
    for env in envs:
        if eval_tree(lhs, ty, env) != eval_tree(rhs, ty, env):
            return env
    return None


def _env_slots(lhs: tuple, rhs: tuple) -> list[int]:
    """Env indices the rule reads: pattern vars at 0-1, constant vars
    at 2-3 (each is universally quantified during verification)."""
    used = tree_vars(lhs) | tree_vars(rhs)
    used |= {2 + i for i in tree_cvars(lhs) | tree_cvars(rhs)}
    return sorted(used)


def _fill(slots: Sequence[int], values: Sequence[int]) -> tuple:
    env = [0, 0, 0, 0]
    for slot, value in zip(slots, values):
        env[slot] = value
    return tuple(env)


def _exhaustive_envs(ty: types.IntegerType,
                     slots: Sequence[int]) -> Iterable[tuple]:
    domain = _domain(ty)
    return (_fill(slots, values)
            for values in itertools.product(domain, repeat=len(slots)))


def _sampled_envs(ty: types.IntegerType, slots: Sequence[int],
                  seed: int) -> list[tuple]:
    rng = Random(seed ^ ty.bits ^ (0x5eed if ty.signed else 0))
    boundary = _boundary(ty)
    envs = [_fill(slots, values)
            for values in itertools.product(boundary, repeat=len(slots))]
    for _ in range(_SAMPLES_PER_WIDTH):
        envs.append(_fill(slots, [ty.wrap(rng.getrandbits(ty.bits))
                                  for _ in slots]))
    return envs


def verify_rule(lhs: tuple, rhs: tuple, signed: bool,
                seed: int = 0xC0DE) -> bool:
    """The full ladder for one signedness class; True iff the identity
    holds at every probed width.  Exhaustive at 4 bits always; at
    8 bits up to two quantified inputs (beyond that the product space
    outgrows a unit-test budget, so it falls back to boundary+sampled,
    like the wide widths)."""
    slots = _env_slots(lhs, rhs)
    for bits in (4, 8):
        ty = _int_type(bits, signed)
        if bits == 8 and len(slots) > 2:
            envs: Iterable[tuple] = _sampled_envs(ty, slots, seed)
        else:
            envs = _exhaustive_envs(ty, slots)
        if _agree(lhs, rhs, ty, envs) is not None:
            return False
    for bits in _SAMPLED_WIDTHS:
        ty = _int_type(bits, signed)
        if _agree(lhs, rhs, ty, _sampled_envs(ty, slots, seed)) is not None:
            return False
    return True


def applicable_classes(lhs: tuple, rhs: tuple) -> Optional[str]:
    """Which signedness classes the identity verifies for."""
    signed_ok = verify_rule(lhs, rhs, signed=True)
    unsigned_ok = verify_rule(lhs, rhs, signed=False)
    if signed_ok and unsigned_ok:
        return "int"
    if signed_ok:
        return "sint"
    if unsigned_ok:
        return "uint"
    return None


# ----------------------------------------------------------------------
# Cast-chain audit (the PR-4 bug class)
# ----------------------------------------------------------------------

#: the exhaustively checkable narrow types; wider sources are sampled
_CAST_TYPES = {
    "sbyte": types.SBYTE, "ubyte": types.UBYTE,
    "short": types.SHORT, "ushort": types.USHORT,
    "int": types.INT, "uint": types.UINT,
    "long": types.LONG, "ulong": types.ULONG,
}


def verify_cast_chain(src: types.Type, mid: types.Type, dst: types.Type,
                      seed: int = 0xCA57) -> Optional[int]:
    """Does ``cast (cast x: src to mid) to dst == cast x to dst`` hold
    for every x?  Returns a counterexample input or None.

    Exhaustive over the source domain up to 16 bits; boundary+sampled
    beyond.  This is the verifier that rejects the pre-PR-4 buggy fold
    (``(long)(uint)x -> (long)x`` fails at x = -1).
    """
    from ..core.constfold import eval_cast

    if src.bits <= 16:
        values: Iterable[int] = (src.wrap(v) for v in range(1 << src.bits))
    else:
        rng = Random(seed ^ src.bits)
        sampled = set(_boundary(src))
        sampled.update(src.wrap(rng.getrandbits(src.bits))
                       for _ in range(256))
        values = sorted(sampled)
    for value in values:
        chained = eval_cast(mid, dst, eval_cast(src, mid, value))
        direct = eval_cast(src, dst, value)
        if chained != direct:
            return value
    return None


def audit_cast_chains() -> list[str]:
    """Check instcombine's double-cast guard against the verifier over
    every integer type triple; returns disagreement descriptions
    (empty = the guard admits exactly the verified folds)."""
    from ..transforms.instcombine import _cast_pair_foldable

    problems = []
    for src, mid, dst in itertools.product(_CAST_TYPES.values(), repeat=3):
        if src is mid:
            continue
        claimed = _cast_pair_foldable(src, mid, dst)
        counterexample = verify_cast_chain(src, mid, dst)
        if claimed and counterexample is not None:
            problems.append(
                f"unsound fold admitted: ({dst})({mid})({src})x "
                f"!= ({dst})x at x={counterexample}")
        # NOTE: the converse (verified but not claimed) is allowed for
        # sampled wide sources — absence of a counterexample there is
        # evidence, not proof, so the guard may stay conservative.
    return problems


# ----------------------------------------------------------------------
# Deduplication against the hand-written folds
# ----------------------------------------------------------------------

#: concrete stand-ins for constant variables when a rule with cvars is
#: serialized to IR for the hand-fold dedupe check (1 and 2: nonzero,
#: distinct, and degenerate for no hand-written fold)
_CVAR_SAMPLES = (1, 2)


def _tree_to_ir(tree: tuple, ty_name: str, temps: list[str],
                lines: list[str]) -> str:
    head = tree[0]
    if head == "var":
        return "%x" if tree[1] == 0 else "%y"
    if head == "const":
        ty = _CAST_TYPES[ty_name]
        return str(ty.wrap(tree[1]))
    if head == "cvar":
        ty = _CAST_TYPES[ty_name]
        return str(ty.wrap(_CVAR_SAMPLES[tree[1]]))
    if head == "bool":
        return "true" if tree[1] else "false"
    if head == "amt":
        return str(tree[1])
    operands = [_tree_to_ir(operand, ty_name, temps, lines)
                for operand in tree[1:]]
    name = f"%t{len(temps)}"
    temps.append(name)
    if head in SHIFT_OPS:
        lines.append(f"  {name} = {head} {ty_name} {operands[0]}, "
                     f"ubyte {operands[1]}")
    else:
        lines.append(f"  {name} = {head} {ty_name} {operands[0]}, "
                     f"{operands[1]}")
    return name


def _lhs_function_ir(lhs: tuple, ty_name: str) -> str:
    temps: list[str] = []
    lines: list[str] = []
    result = _tree_to_ir(lhs, ty_name, temps, lines)
    result_ty = "bool" if lhs[0] in CMP_OPS else ty_name
    body = "\n".join(lines)
    return (f"{result_ty} %lhs({ty_name} %x, {ty_name} %y) {{\n"
            f"entry:\n{body}\n  ret {result_ty} {result}\n}}\n")


def already_folded(lhs: tuple, rhs: tuple, applies: str) -> bool:
    """Would bare instcombine (hand-written folds only) already reduce
    the LHS to at most the RHS's cost?  Such a rule is redundant."""
    from ..transforms.instcombine import InstCombine

    ty_name = "int" if applies in ("int", "sint") else "uint"
    module = parse_module(_lhs_function_ir(lhs, ty_name))
    combiner = InstCombine(generated_rules=[])
    function = module.functions["lhs"]
    for _ in range(8):
        if not combiner.run_on_function(function):
            break
    remaining = function.instruction_count() - 1  # minus the ret
    return remaining <= tree_cost(rhs)


# ----------------------------------------------------------------------
# Generalized-constant rules (the reassociation family)
# ----------------------------------------------------------------------

_CONSTANT_TEMPLATE_OPS = ("add", "sub", "and", "or", "xor")


def _constant_template_lhs() -> list[tuple]:
    """LHS templates ``op2(op1(x, C0), C1)`` over constant variables —
    the chains real code actually produces (``i + 1 + 1``, masking a
    masked value, ...), which fixed-constant enumeration cannot reach."""
    x, c0, c1 = ("var", 0), ("cvar", 0), ("cvar", 1)
    inners = [("add", x, c0), ("sub", x, c0), ("sub", c0, x),
              ("and", x, c0), ("or", x, c0), ("xor", x, c0)]
    seen: set = set()
    out = []
    for outer in _CONSTANT_TEMPLATE_OPS:
        for inner in inners:
            for lhs in ((outer, inner, c1), (outer, c1, inner)):
                canonical = _canonical(lhs)
                if canonical in seen:
                    continue
                seen.add(canonical)
                out.append(lhs)
    return out


def _constant_template_rhs() -> list[tuple]:
    """Single-instruction replacements whose constant operand is folded
    from the bound constants at rewrite time."""
    x, c0, c1 = ("var", 0), ("cvar", 0), ("cvar", 1)
    folds = [("cfold", fop, a, b) for fop in _CONSTANT_TEMPLATE_OPS
             for a, b in ((c0, c1), (c1, c0))]
    out = []
    for rop in _CONSTANT_TEMPLATE_OPS:
        for fold in folds:
            out.append((rop, x, fold))
            out.append((rop, fold, x))
    return out


def synthesize_constant_rules(progress=None) -> list[Rule]:
    """Verify the constant-template family; returns the survivors.

    Each template LHS is paired with the first RHS candidate that
    survives the full ladder (candidate order is fixed, so the result
    is deterministic); templates with no one-instruction equivalent —
    ``and(add(x, C0), C1)`` and friends — simply drop out."""
    probes = {}
    for signed in (True, False):
        ty = _int_type(4, signed)
        probes[signed] = (ty, _sampled_envs(ty, (0, 2, 3), seed=0xF1E7))
    rules = []
    for lhs in _constant_template_lhs():
        for rhs in _constant_template_rhs():
            quick_miss = False
            for ty, envs in probes.values():
                if _agree(lhs, rhs, ty, envs) is not None:
                    quick_miss = True
                    break
            if quick_miss:
                continue
            applies = applicable_classes(lhs, rhs)
            if applies is None:
                continue
            if already_folded(lhs, rhs, applies):
                break  # the hand-written folds already cover this LHS
            rule = Rule(name=f"{tree_name(lhs)}->{tree_name(rhs)}",
                        lhs=lhs, rhs=rhs, applies=applies)
            rules.append(rule)
            if progress is not None:
                progress(lhs, rhs, applies)
            break
    return rules


# ----------------------------------------------------------------------
# The synthesis driver
# ----------------------------------------------------------------------

@dataclass
class SynthesisReport:
    rules: list[Rule] = field(default_factory=list)
    enumerated: int = 0
    fingerprint_hits: int = 0
    verified: int = 0
    deduplicated: int = 0
    cast_problems: list[str] = field(default_factory=list)


def _is_bool_tree(tree: tuple) -> bool:
    return tree[0] in CMP_OPS or tree[0] == "bool"


def _fingerprint(tree: tuple, grids) -> Optional[tuple]:
    """A cheap semantic signature over small probe grids (one per
    signedness); None when evaluation faults (never expected for the
    trap-free op set).  The leading tag keeps bool-producing and
    integer-producing trees in disjoint buckets — Python would happily
    equate ``False == 0`` and pair a comparison with an integer RHS,
    which would be a type-broken rewrite."""
    signature: list = ["bool" if _is_bool_tree(tree) else "int"]
    try:
        for ty, pairs in grids:
            for env in pairs:
                signature.append(eval_tree(tree, ty, env))
    except Exception:
        return None
    return tuple(signature)


def _probe_grids():
    grids = []
    for signed in (True, False):
        ty = _int_type(4, signed)
        probe = sorted({ty.wrap(v) for v in (-8, -3, -1, 0, 1, 2, 5, 7)})
        grids.append((ty, [(a, b) for a in probe for b in probe]))
    return grids


def _subtree_reducible(tree: tuple, by_signature: dict, grids) -> bool:
    """Does any proper op-node subtree fingerprint to a strictly
    cheaper replacement?  Such an LHS is noise: the worklist rewrites
    the subtree first, so the composite pattern never matches live IR
    in simplified form."""
    for sub in tree[1:]:
        if sub[0] in ("var", "const", "bool", "amt"):
            continue
        signature = _fingerprint(sub, grids)
        if signature is not None:
            cheaper = by_signature.get(signature)
            if cheaper is not None and tree_cost(cheaper) < tree_cost(sub):
                return True
        if _subtree_reducible(sub, by_signature, grids):
            return True
    return False


def synthesize(max_rules: int = 40,
               arith_ops: Sequence[str] = ARITH_OPS,
               shift_ops: Sequence[str] = SHIFT_OPS,
               cmp_ops: Sequence[str] = CMP_OPS,
               progress=None) -> SynthesisReport:
    """Enumerate, verify, dedupe; returns the surviving rules ranked
    cheapest-RHS-first (stable, deterministic).

    Full verification is expensive (an 8-bit exhaustive pass is 64Ki
    input pairs), so candidates are *ranked first* and verified in
    final emission order, stopping at ``max_rules`` survivors — the
    result is identical to verifying everything and truncating."""
    report = SynthesisReport()
    grids = _probe_grids()
    pool = rhs_pool(arith_ops, shift_ops, cmp_ops)
    by_signature: dict[tuple, tuple] = {}
    for rhs in pool:
        signature = _fingerprint(rhs, grids)
        if signature is None:
            continue
        # cheapest RHS wins a signature; ties break lexically
        best = by_signature.get(signature)
        key = (tree_cost(rhs), tree_name(rhs))
        if best is None or (tree_cost(best), tree_name(best)) > key:
            by_signature[signature] = rhs

    seen_lhs: set = set()
    candidates: list[tuple] = []
    for lhs in enumerate_lhs(arith_ops, shift_ops, cmp_ops):
        report.enumerated += 1
        canonical = _canonical(lhs)
        alpha_key = _alpha_rename(canonical, {})
        if alpha_key in seen_lhs:
            continue
        seen_lhs.add(alpha_key)
        signature = _fingerprint(lhs, grids)
        if signature is None:
            continue
        rhs = by_signature.get(signature)
        if rhs is None or _canonical(rhs) == canonical:
            continue
        if tree_cost(rhs) >= tree_cost(lhs):
            continue
        if tree_vars(rhs) - tree_vars(lhs):
            continue  # RHS needs a variable the LHS never binds
        if _subtree_reducible(lhs, by_signature, grids):
            continue
        report.fingerprint_hits += 1
        # emit in alpha-canonical spelling: deterministic, and the
        # matcher's commutative retry makes operand order immaterial
        mapping: dict = {}
        candidates.append((_alpha_rename(canonical, mapping),
                           _alpha_rename(rhs, mapping)))

    candidates.sort(key=lambda item: (tree_cost(item[1]), tree_cost(item[0]),
                                      tree_name(item[0])))
    for lhs, rhs in candidates:
        if len(report.rules) >= max_rules:
            break
        applies = applicable_classes(lhs, rhs)
        if applies is None:
            continue
        report.verified += 1
        if already_folded(lhs, rhs, applies):
            report.deduplicated += 1
            continue
        if progress is not None:
            progress(lhs, rhs, applies)
        report.rules.append(Rule(
            name=f"{tree_name(lhs)}->{tree_name(rhs)}",
            lhs=lhs, rhs=rhs, applies=applies))
    # the generalized-constant family rides on top of the cap: it is a
    # fixed, small set and the one that actually fires in real code
    constant_rules = synthesize_constant_rules(progress=progress)
    report.verified += len(constant_rules)
    report.rules.extend(constant_rules)
    report.cast_problems = audit_cast_chains()
    return report


# ----------------------------------------------------------------------
# Emission and self-check
# ----------------------------------------------------------------------

def _tree_to_source(tree: tuple) -> str:
    head = tree[0]
    if head in ("var", "const", "bool", "amt", "cvar"):
        return f'["{head}", {tree[1]}]'
    if head == "cfold":
        inner = ", ".join(_tree_to_source(operand) for operand in tree[2:])
        return f'["cfold", "{tree[1]}", {inner}]'
    inner = ", ".join(_tree_to_source(operand) for operand in tree[1:])
    return f'["{head}", {inner}]'


def emit_module(rules: Sequence[Rule]) -> str:
    """The text of ``instcombine_generated.py``."""
    lines = [
        '"""GENERATED by lc-synth — do not edit by hand.',
        "",
        "Each rule was discovered by pattern enumeration and admitted",
        "only after exhaustive verification at 4- and 8-bit widths plus",
        "sampled verification at 16/32/64 bits, then deduplicated",
        "against the hand-written instcombine folds.  Re-verify with",
        "``lc-synth --self-check`` (the tvalid-gate CI job does).",
        '"""',
        "",
        "RULES: list = [",
    ]
    for rule in rules:
        lines.append("    {")
        lines.append(f'        "name": {rule.name!r},')
        lines.append(f'        "lhs": {_tree_to_source(rule.lhs)},')
        lines.append(f'        "rhs": {_tree_to_source(rule.rhs)},')
        lines.append(f'        "applies": {rule.applies!r},')
        lines.append("    },")
    lines.append("]")
    lines.append("")
    return "\n".join(lines)


def self_check() -> list[str]:
    """Re-verify the checked-in generated rules; returns problem
    descriptions (empty = everything still proves)."""
    from ..transforms.peephole import load_generated_rules

    problems = []
    rules = load_generated_rules()
    if not rules:
        problems.append("no generated rules checked in")
    for rule in rules:
        classes = ((True, False) if rule.applies == "int"
                   else ((True,) if rule.applies == "sint" else (False,)))
        for signed in classes:
            if not verify_rule(rule.lhs, rule.rhs, signed):
                problems.append(
                    f"rule {rule.name} no longer verifies "
                    f"({'signed' if signed else 'unsigned'})")
        if already_folded(rule.lhs, rule.rhs, rule.applies):
            problems.append(
                f"rule {rule.name} duplicates a hand-written fold")
        if tree_vars(rule.rhs) - tree_vars(rule.lhs):
            problems.append(f"rule {rule.name} RHS invents a variable")
    problems.extend(audit_cast_chains())
    return problems
