"""Exhaustive narrow-domain evaluation of loop-free pure functions.

The exhaustive half of the translation validator: a direct CFG
evaluator over the scalar fragment of the IR (binary arithmetic,
shifts, casts, phis, branches, switches, returns — no memory, no
calls).  Because every block of a loop-free function executes at most
once, evaluation terminates and the function is a total map from
argument tuples to outcomes, which we can enumerate over a *narrow
input window* — the 4-bit neighbourhood of zero wrapped into each
argument's real type, plus that type's boundary values.

Two properties make this sound for validation:

* semantics come from :mod:`repro.core.constfold` — the same code the
  interpreter and the constant folder use — so evaluation can never
  disagree with execution on a concrete input;
* inputs are genuine values of the argument's real type (the 4-bit
  window is *wrapped*, not a semantic reinterpretation), so any
  counterexample found here is a real, replayable miscompile.  Zero
  false positives by construction.

Undef is tracked symbolically as :data:`UNDEF` ("an unspecified value
of the type"), propagated conservatively: an operation on UNDEF is
UNDEF unless an absorbing concrete operand pins the result (``undef &
0`` is 0, ``undef * 0`` is 0, ...); a branch or switch on UNDEF makes
the whole outcome unspecified.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..core import types
from ..core.constfold import ArithmeticFault, eval_binary, eval_cast, eval_shift
from ..core.instructions import (
    BINARY_OPCODES, COMPARISON_OPCODES, BinaryOperator, BranchInst, CastInst,
    Instruction, Opcode, PhiNode, ReturnInst, ShiftInst, SwitchInst,
)
from ..core.module import Function
from ..core.values import (
    Argument, Constant, ConstantBool, ConstantFP, ConstantInt, UndefValue,
    Value,
)


class Unsupported(Exception):
    """The function is outside the exhaustive engine's fragment."""


class _Undef:
    """Singleton marker: an unspecified-but-fixed value of some type."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNDEF"


UNDEF = _Undef()

#: Opcodes the pure evaluator understands.  Everything else (memory,
#: calls, exceptions, va_arg) is Unsupported.
_PURE_OPCODES = frozenset(
    {Opcode.RET, Opcode.BR, Opcode.SWITCH, Opcode.PHI, Opcode.CAST,
     Opcode.SHL, Opcode.SHR} | BINARY_OPCODES
)


def _scalar_type(ty: types.Type) -> bool:
    return ty.is_bool or ty.is_integer or ty.is_floating


def supports(function: Function) -> bool:
    """Can :func:`evaluate_function` run this function at all?"""
    if function.is_declaration:
        return False
    if not (function.return_type.is_void or _scalar_type(function.return_type)):
        return False
    for arg in function.args:
        if not _scalar_type(arg.type):
            return False
    for block in function.blocks:
        for inst in block.instructions:
            if inst.opcode not in _PURE_OPCODES:
                return False
            if isinstance(inst, CastInst):
                if not _scalar_type(inst.type) or not _scalar_type(
                        inst.value.type):
                    return False
    return True


def _constant_value(constant: Constant):
    if isinstance(constant, UndefValue):
        return UNDEF
    if isinstance(constant, ConstantInt):
        return constant.value
    if isinstance(constant, ConstantBool):
        return constant.value
    if isinstance(constant, ConstantFP):
        return constant.value
    raise Unsupported(f"constant kind {type(constant).__name__}")


def _absorbed(inst: Instruction, lhs, rhs):
    """Result pinned by a concrete absorbing operand despite UNDEF.

    These are the identities a pass may legitimately exploit when it
    simplifies around an undef operand; without them the evaluator
    would call a correct transform's concrete result a narrowing of
    undef — a false positive.
    """
    opcode = inst.opcode
    ty = inst.type
    if opcode == Opcode.AND:
        for value in (lhs, rhs):
            if value is not UNDEF and not value:
                return value  # undef & 0 == 0 (and False for bool)
    elif opcode == Opcode.OR:
        for value in (lhs, rhs):
            if value is UNDEF:
                continue
            if ty.is_bool and value is True:
                return True
            if ty.is_integer and value == ty.wrap(-1):
                return value  # undef | ~0 == ~0
    elif opcode == Opcode.MUL:
        for value in (lhs, rhs):
            if value is not UNDEF and value == 0:
                return 0
    return None


def evaluate_function(function: Function, args: Sequence) -> tuple:
    """Evaluate one input tuple; the outcome is one of

    * ``("value", v)`` — terminated normally returning ``v`` (``None``
      for void);
    * ``("trap", kind)`` — a deterministic runtime fault;
    * ``("undef", None)`` — the result (or the control path) depends
      on an unspecified value.

    Raises :class:`Unsupported` when the function leaves the pure
    fragment (also used for dynamically discovered loops).
    """
    registers: dict[Value, object] = {}
    for argument, value in zip(function.args, args):
        registers[argument] = value

    def read(value: Value):
        if isinstance(value, (Argument, Instruction)):
            return registers[value]
        if isinstance(value, Constant):
            return _constant_value(value)
        raise Unsupported(f"operand kind {type(value).__name__}")

    block = function.entry_block
    previous = None
    executed = 0
    limit = len(function.blocks)
    while True:
        executed += 1
        if executed > limit:
            raise Unsupported("control-flow cycle")
        # Phis read their incoming values simultaneously on entry.
        phi_values = []
        for phi in block.phis():
            incoming = phi.incoming_for_block(previous)
            if incoming is None:
                raise Unsupported("phi without incoming for predecessor")
            phi_values.append((phi, read(incoming)))
        for phi, value in phi_values:
            registers[phi] = value

        for inst in block.instructions:
            opcode = inst.opcode
            if opcode == Opcode.PHI:
                continue
            if opcode == Opcode.RET:
                value = inst.return_value
                if value is None:
                    return ("value", None)
                result = read(value)
                if result is UNDEF:
                    return ("undef", None)
                return ("value", result)
            if opcode == Opcode.BR:
                assert isinstance(inst, BranchInst)
                if inst.is_conditional:
                    condition = read(inst.condition)
                    if condition is UNDEF:
                        return ("undef", None)
                    target = inst.operands[1] if condition else inst.operands[2]
                else:
                    target = inst.operands[0]
                previous, block = block, target
                break
            if opcode == Opcode.SWITCH:
                assert isinstance(inst, SwitchInst)
                selector = read(inst.value)
                if selector is UNDEF:
                    return ("undef", None)
                target = inst.default_dest
                for case_value, dest in inst.cases:
                    if case_value.value == selector:  # type: ignore[attr-defined]
                        target = dest
                        break
                previous, block = block, target
                break

            if opcode in BINARY_OPCODES:
                lhs = read(inst.operands[0])
                rhs = read(inst.operands[1])
                if lhs is UNDEF or rhs is UNDEF:
                    pinned = _absorbed(inst, lhs, rhs)
                    registers[inst] = UNDEF if pinned is None else pinned
                    continue
                try:
                    registers[inst] = eval_binary(
                        opcode, inst.operands[0].type, lhs, rhs)
                except ArithmeticFault as fault:
                    return ("trap", type(fault).__name__)
                continue
            if opcode in (Opcode.SHL, Opcode.SHR):
                value = read(inst.operands[0])
                amount = read(inst.operands[1])
                if value is UNDEF or amount is UNDEF:
                    # 0 shifted anywhere is 0, whatever the amount.
                    registers[inst] = 0 if value == 0 else UNDEF
                    continue
                registers[inst] = eval_shift(
                    opcode, inst.type, value, amount)  # type: ignore[arg-type]
                continue
            if opcode == Opcode.CAST:
                value = read(inst.operands[0])
                if value is UNDEF:
                    registers[inst] = UNDEF
                    continue
                registers[inst] = eval_cast(
                    inst.operands[0].type, inst.type, value)
                continue
            raise Unsupported(f"opcode {opcode.value}")
        else:
            raise Unsupported("block without terminator")


# ----------------------------------------------------------------------
# Input-domain enumeration
# ----------------------------------------------------------------------

#: The 4-bit window: every integer argument is exercised on the wrap of
#: [-8, 8) into its own type, so narrow-width exhaustiveness transfers
#: to every width for the value-range a peephole actually discriminates.
_WINDOW = range(-8, 8)
_CORE = (-2, -1, 0, 1, 2)
_FLOAT_DOMAIN = (0.0, 1.0, -1.0, 2.5, -0.5)


def argument_domain(ty: types.Type, core_only: bool = False) -> Optional[list]:
    """Candidate concrete values for one argument, or None if the type
    is outside the enumerable fragment (pointers, aggregates)."""
    if ty.is_bool:
        return [False, True]
    if ty.is_integer:
        window = _CORE if core_only else _WINDOW
        values = {ty.wrap(v) for v in window}
        values.update((ty.min_value, ty.max_value,
                       ty.wrap(ty.min_value + 1), ty.wrap(ty.max_value - 1)))
        return sorted(values)
    if ty.is_floating:
        return list(_FLOAT_DOMAIN if not core_only else _FLOAT_DOMAIN[:3])
    return None


def input_tuples(function: Function, max_tuples: int) -> Optional[list[tuple]]:
    """Enumerate the exhaustive input set, or None when the domain
    cannot be brought under ``max_tuples`` (the caller falls back to
    the sampling engine and counts the function skipped-by-size)."""
    for core_only in (False, True):
        domains = []
        for arg in function.args:
            domain = argument_domain(arg.type, core_only)
            if domain is None:
                return None
            domains.append(domain)
        total = 1
        for domain in domains:
            total *= len(domain)
            if total > max_tuples:
                break
        if total > max_tuples:
            continue
        tuples = [()]
        for domain in domains:
            tuples = [prefix + (value,) for prefix in tuples
                      for value in domain]
        return tuples
    return None


def outcomes_equal(lhs: tuple, rhs: tuple) -> bool:
    """Outcome equality with NaN-tolerant value comparison."""
    if lhs[0] != rhs[0]:
        return False
    if lhs[0] != "value":
        return lhs == rhs
    a, b = lhs[1], rhs[1]
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b
