"""Shared rewriting utilities used across transformation passes."""

from __future__ import annotations

from typing import Optional

from ..core import constfold
from ..core.basicblock import BasicBlock
from ..core.instructions import (
    BranchInst, CastInst, GetElementPtrInst, Instruction, Opcode, PhiNode,
    ShiftInst, SwitchInst,
)
from ..core.module import Function
from ..core.values import Constant, ConstantBool, ConstantInt, Value


def fold_instruction(inst: Instruction) -> Optional[Constant]:
    """Try to evaluate ``inst`` to a constant from constant operands."""
    if inst.is_binary_op:
        lhs, rhs = inst.operands
        if isinstance(lhs, Constant) and isinstance(rhs, Constant):
            return constfold.fold_binary(inst.opcode, lhs, rhs)
        return None
    if isinstance(inst, ShiftInst):
        value, amount = inst.operands
        if isinstance(value, Constant) and isinstance(amount, Constant):
            return constfold.fold_shift(inst.opcode, value, amount)
        return None
    if isinstance(inst, CastInst):
        value = inst.value
        if isinstance(value, Constant):
            return constfold.fold_cast(value, inst.type)
        return None
    return None


def is_trivially_dead(inst: Instruction) -> bool:
    """Unused and side-effect free: safe to delete."""
    return not inst.is_used and not inst.has_side_effects() and not inst.type.is_void


def delete_dead_instructions(function: Function) -> bool:
    """Iteratively delete trivially dead instructions; True if any died."""
    changed = False
    worklist = [inst for block in function.blocks for inst in block.instructions]
    while worklist:
        inst = worklist.pop()
        if inst.parent is None or not is_trivially_dead(inst):
            continue
        operands = [op for op in inst.operands if isinstance(op, Instruction)]
        inst.erase_from_parent()
        changed = True
        worklist.extend(operands)
    return changed


def replace_and_erase(inst: Instruction, replacement: Value) -> None:
    """RAUW then remove ``inst`` from its block."""
    inst.replace_all_uses_with(replacement)
    inst.erase_from_parent()


def remove_block_with_phis(block: BasicBlock) -> None:
    """Delete ``block``, fixing up phi nodes in its successors."""
    for succ in block.successors():
        for phi in succ.phis():
            phi.remove_incoming(block)
    # Any remaining uses of this block's instructions are in other dead
    # blocks; drop references bottom-up to avoid dangling uses.
    for inst in reversed(list(block.instructions)):
        if inst.is_used:
            from ..core.values import UndefValue

            if not inst.type.is_void:
                inst.replace_all_uses_with(UndefValue(inst.type))
        inst.erase_from_parent()
    block.remove_from_parent()


def constant_fold_terminator(block: BasicBlock) -> bool:
    """Turn branches on constants into unconditional branches.

    Handles ``br bool true/false`` and ``switch`` on a constant.
    """
    term = block.terminator
    if isinstance(term, BranchInst) and term.is_conditional:
        cond = term.condition
        if isinstance(cond, ConstantBool):
            taken = term.operands[1] if cond.value else term.operands[2]
            not_taken = term.operands[2] if cond.value else term.operands[1]
            if not_taken is not taken:
                for phi in not_taken.phis():
                    phi.remove_incoming(block)
            term.erase_from_parent()
            block.append(BranchInst(taken))
            return True
        if term.operands[1] is term.operands[2]:
            # Both arms identical: drop the condition.
            dest = term.operands[1]
            term.erase_from_parent()
            block.append(BranchInst(dest))
            return True
        return False
    if isinstance(term, SwitchInst) and isinstance(term.value, ConstantInt):
        selected = term.default_dest
        for case_value, dest in term.cases:
            if case_value.value == term.value.value:  # type: ignore[attr-defined]
                selected = dest
                break
        removed: set[int] = set()
        for succ in term.successors:
            if succ is not selected and id(succ) not in removed:
                removed.add(id(succ))
                for phi in succ.phis():
                    phi.remove_incoming(block)
        term.erase_from_parent()
        block.append(BranchInst(selected))
        return True
    return False


def simplify_gep(inst: GetElementPtrInst) -> Optional[Value]:
    """A GEP with all-zero indices is the pointer itself (maybe cast)."""
    if inst.has_all_zero_indices() and inst.type is inst.pointer.type:
        return inst.pointer
    return None


def phi_single_value(phi: PhiNode) -> Optional[Value]:
    """If a phi merges one distinct value (ignoring itself), return it."""
    distinct: Optional[Value] = None
    for value, _ in phi.incoming:
        if value is phi:
            continue
        if isinstance(value, type(None)):
            continue
        if distinct is None:
            distinct = value
        elif distinct is not value:
            return None
    return distinct
