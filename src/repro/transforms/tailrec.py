"""Tail-recursion elimination (paper section 3.2).

"Tail-recursion elimination — which is crucial for functional languages
— can be done in LLVM": a self-call whose result feeds directly into the
following ``ret`` is rewritten into a jump back to the function entry,
with arguments turned into phi nodes.  Language-independent by
construction — the same pass serves C and any functional front-end.
"""

from __future__ import annotations

from typing import Optional

from ..core.basicblock import BasicBlock
from ..core.instructions import (
    BranchInst, CallInst, Instruction, PhiNode, ReturnInst,
)
from ..core.module import Function
from ..core.values import Value


class TailRecursionElimination:
    """The pass object (see module docstring)."""

    name = "tailrec"

    def run_on_function(self, function: Function) -> bool:
        tail_calls = _find_tail_calls(function)
        if not tail_calls:
            return False
        header = _split_entry(function)
        arg_phis = _introduce_argument_phis(function, header)
        for call, ret in tail_calls:
            block = call.parent
            for phi, arg_value in zip(arg_phis, call.args):
                phi.add_incoming(arg_value, block)
            ret.erase_from_parent()
            call.erase_from_parent()
            block.append(BranchInst(header))
        return True


def _find_tail_calls(function: Function) -> list[tuple[CallInst, ReturnInst]]:
    """Self-calls immediately followed by ``ret`` of the call's value."""
    result = []
    for block in function.blocks:
        instructions = block.instructions
        if len(instructions) < 2:
            continue
        ret = instructions[-1]
        call = instructions[-2]
        if not isinstance(ret, ReturnInst) or not isinstance(call, CallInst):
            continue
        if call.callee is not function:
            continue
        returned = ret.return_value
        if function.return_type.is_void:
            matches = returned is None
        else:
            matches = returned is call
        if not matches:
            continue
        if not function.return_type.is_void and len(call.uses) != 1:
            continue  # the value escapes beyond the ret
        result.append((call, ret))
    return result


def _split_entry(function: Function) -> BasicBlock:
    """Split the entry block after its allocas so the loop header starts
    at the first real computation (allocas must stay in the entry)."""
    entry = function.entry_block
    from ..core.instructions import AllocaInst

    index = 0
    for index, inst in enumerate(entry.instructions):
        if not isinstance(inst, AllocaInst):
            break
    header = entry.split_at(index, "tailrecurse")
    return header


def _introduce_argument_phis(function: Function, header: BasicBlock) -> list[PhiNode]:
    entry = function.entry_block
    phis = []
    for arg in function.args:
        phi = PhiNode(arg.type, f"{arg.name}.tr")
        uses_to_rewrite = [
            use for use in list(arg.uses)
            if not (isinstance(use.user, PhiNode) and use.user is phi)
        ]
        header.insert(len(phis), phi)
        phi.add_incoming(arg, entry)
        for use in uses_to_rewrite:
            user = use.user
            if isinstance(user, Instruction) and user.parent is entry:
                continue  # pre-loop uses (alloca sizes) keep the argument
            user.set_operand(use.index, phi)
        phis.append(phi)
    return phis
