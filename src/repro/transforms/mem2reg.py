"""Stack promotion (``mem2reg``): SSA construction from allocas.

Front-ends do not construct SSA form (paper section 3.2): they allocate
source-level variables on the stack with ``alloca`` and use loads and
stores.  This pass promotes stack-allocated scalars whose address does
not escape into SSA registers, inserting phi nodes at the iterated
dominance frontier of the stores (the standard Cytron et al.
construction), exactly the division of labour the paper prescribes.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.dominators import DominanceFrontiers, DominatorTree
from ..core.basicblock import BasicBlock
from ..core.instructions import (
    AllocaInst, Instruction, LoadInst, Opcode, PhiNode, StoreInst,
)
from ..core.module import Function
from ..core.values import UndefValue, Value


def is_promotable(alloca: AllocaInst) -> bool:
    """A promotable alloca is a scalar whose address never escapes:
    every use is a load, or a store *to* it (not of it)."""
    if alloca.array_size is not None:
        return False
    if not alloca.allocated_type.is_first_class:
        return False
    for use in alloca.uses:
        user = use.user
        if isinstance(user, LoadInst):
            continue
        if isinstance(user, StoreInst) and user.pointer is alloca and user.value is not alloca:
            continue
        return False
    return True


class PromoteMem2Reg:
    """The pass object; promotes every promotable alloca in a function."""

    name = "mem2reg"

    def run_on_function(self, function: Function) -> bool:
        allocas = [
            inst
            for block in function.blocks
            for inst in block.instructions
            if isinstance(inst, AllocaInst) and is_promotable(inst)
        ]
        if not allocas:
            return False
        _Promoter(function, allocas).run()
        return True


class _Promoter:
    def __init__(self, function: Function, allocas: list[AllocaInst]):
        self.function = function
        self.allocas = allocas
        self.alloca_index = {id(a): i for i, a in enumerate(allocas)}
        self.domtree = DominatorTree(function)
        self.frontiers = DominanceFrontiers(function, self.domtree)
        #: phi -> alloca index, for phis this pass inserts.
        self.phi_slot: dict[int, int] = {}
        self.inserted_phis: list[PhiNode] = []

    def run(self) -> None:
        for index, alloca in enumerate(self.allocas):
            self._insert_phis(index, alloca)
        self._rename()
        for alloca in self.allocas:
            for use in list(alloca.uses):
                # Only accesses in unreachable code remain.
                user = use.user
                if not user.type.is_void and user.is_used:
                    user.replace_all_uses_with(UndefValue(user.type))
                user.erase_from_parent()
            alloca.erase_from_parent()
        self._fill_missing_incoming()
        self._prune_dead_phis()

    # -- phi placement ----------------------------------------------------

    def _insert_phis(self, index: int, alloca: AllocaInst) -> None:
        def_blocks = []
        for use in alloca.uses:
            user = use.user
            if isinstance(user, StoreInst) and self.domtree.is_reachable(user.parent):
                def_blocks.append(user.parent)
        placed: set[int] = set()
        worklist = list({id(b): b for b in def_blocks}.values())
        while worklist:
            block = worklist.pop()
            for frontier_block in self.frontiers.frontier(block):
                if id(frontier_block) in placed:
                    continue
                placed.add(id(frontier_block))
                phi = PhiNode(alloca.allocated_type, alloca.name or "promoted")
                frontier_block.insert(0, phi)
                self.phi_slot[id(phi)] = index
                self.inserted_phis.append(phi)
                worklist.append(frontier_block)

    # -- renaming ----------------------------------------------------------------

    def _rename(self) -> None:
        undef = [UndefValue(a.allocated_type) for a in self.allocas]
        entry_values: list[Value] = list(undef)
        visited: set[int] = set()
        stack: list[tuple[BasicBlock, list[Value]]] = [
            (self.function.entry_block, entry_values)
        ]
        while stack:
            block, incoming = stack.pop()
            if id(block) in visited:
                continue
            visited.add(id(block))
            values = list(incoming)
            for inst in list(block.instructions):
                slot = self._slot_of(inst)
                if slot is not None:
                    if isinstance(inst, PhiNode):
                        values[slot] = inst
                    elif isinstance(inst, LoadInst):
                        inst.replace_all_uses_with(values[slot])
                        inst.erase_from_parent()
                    elif isinstance(inst, StoreInst):
                        values[slot] = inst.value
                        inst.erase_from_parent()
            filled: set[int] = set()
            for succ in block.successors():
                if id(succ) not in filled:
                    filled.add(id(succ))
                    for phi in succ.phis():
                        slot = self.phi_slot.get(id(phi))
                        if slot is not None:
                            phi.add_incoming(values[slot], block)
                if id(succ) not in visited:
                    stack.append((succ, values))

    def _slot_of(self, inst: Instruction) -> Optional[int]:
        if isinstance(inst, PhiNode):
            return self.phi_slot.get(id(inst))
        if isinstance(inst, LoadInst):
            return self.alloca_index.get(id(inst.pointer))
        if isinstance(inst, StoreInst):
            slot = self.alloca_index.get(id(inst.pointer))
            # A store *of* an alloca pointer isn't promotable and was
            # filtered earlier; here pointer identity is enough.
            return slot
        return None

    def _fill_missing_incoming(self) -> None:
        """Give inserted phis an undef entry for predecessors the rename
        walk never reached (edges from unreachable code)."""
        for phi in self.inserted_phis:
            if phi.parent is None:
                continue
            covered = {id(b) for _, b in phi.incoming}
            for pred in phi.parent.unique_predecessors():
                if id(pred) not in covered:
                    phi.add_incoming(UndefValue(phi.type), pred)

    def _prune_dead_phis(self) -> None:
        """Delete inserted phis not transitively used by real code.

        A phi inserted by this pass is *live* if some non-inserted user
        consumes it, directly or through other inserted phis; dead
        cycles of phis feeding only each other are removed together.
        """
        inserted = {id(p) for p in self.inserted_phis}
        live: set[int] = set()
        worklist = []
        for phi in self.inserted_phis:
            for user in phi.users():
                if id(user) not in inserted:
                    worklist.append(phi)
                    break
        while worklist:
            phi = worklist.pop()
            if id(phi) in live:
                continue
            live.add(id(phi))
            for value, _ in phi.incoming:
                if isinstance(value, PhiNode) and id(value) in inserted and id(value) not in live:
                    worklist.append(value)
        for phi in self.inserted_phis:
            if id(phi) not in live and phi.parent is not None:
                # Break cycles first, then erase.
                if phi.is_used:
                    phi.replace_all_uses_with(UndefValue(phi.type))
                phi.erase_from_parent()
