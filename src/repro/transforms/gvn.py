"""Global value numbering: dominator-scoped redundancy elimination.

Walks the dominator tree with a scoped hash table of expression keys;
an instruction that recomputes an expression already available in a
dominating block is replaced by the earlier value.  Commutative
operations are keyed with sorted operands, so ``a+b`` matches ``b+a``.
GEPs participate, which is exactly why the paper makes address
arithmetic explicit: "most importantly, reassociation and redundancy
elimination" see it.

Also performs simple redundant-load elimination: a load is replaced by
a dominating load/store of the same pointer when no intervening
instruction may write memory.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.alias import AliasResult, alias
from ..analysis.dominators import DominatorTree
from ..core.basicblock import BasicBlock
from ..core.instructions import (
    BinaryOperator, CastInst, GetElementPtrInst, Instruction, LoadInst,
    Opcode, ShiftInst, StoreInst,
)
from ..core.module import Function
from ..core.values import Constant, Value
from .utils import replace_and_erase


class GVN:
    """The pass object (see module docstring)."""

    name = "gvn"

    def run_on_function(self, function: Function) -> bool:
        domtree = DominatorTree(function)
        return _Numbering(function, domtree).run()


class _Numbering:
    def __init__(self, function: Function, domtree: DominatorTree):
        self.function = function
        self.domtree = domtree
        self.changed = False
        #: value id for operands: constants keyed structurally, others by id.
        self._value_ids: dict = {}
        self._next_id = 0

    def run(self) -> bool:
        # Iterative dominator-tree preorder walk (deep CFGs would blow
        # the Python recursion limit).
        stack: list[tuple[BasicBlock, dict, dict]] = [(self.domtree.root, {}, {})]
        while stack:
            block, available, memory = stack.pop()
            available, memory = self._walk(block, available, memory)
            for child in self.domtree.children(block):
                child_memory = memory if self._direct_child(block, child) else {}
                stack.append((child, available, child_memory))
        return self.changed

    def _walk(self, block: BasicBlock, available: dict, memory: dict) -> tuple[dict, dict]:
        # Copy-on-write scoped tables: each dominator-tree child gets the
        # parent's view plus this block's additions.
        available = dict(available)
        memory = dict(memory)
        for inst in list(block.instructions):
            if isinstance(inst, StoreInst):
                # Evict only the facts the store may clobber.
                memory = {
                    key: (pointer, value)
                    for key, (pointer, value) in memory.items()
                    if alias(pointer, inst.pointer) is AliasResult.NO_ALIAS
                }
                memory[("mem", self._id_of(inst.pointer))] = (
                    inst.pointer, inst.value
                )
                continue
            if inst.may_write_memory():
                memory = {}
            if isinstance(inst, LoadInst):
                key = ("mem", self._id_of(inst.pointer))
                earlier = memory.get(key)
                if earlier is not None and earlier[1].type is inst.type:
                    replace_and_erase(inst, earlier[1])
                    self.changed = True
                    continue
                memory[key] = (inst.pointer, inst)
                continue
            key = self._expression_key(inst)
            if key is None:
                continue
            earlier = available.get(key)
            if earlier is not None:
                replace_and_erase(inst, earlier)
                self.changed = True
                continue
            available[key] = inst
        return available, memory

    def _direct_child(self, block: BasicBlock, child: BasicBlock) -> bool:
        """Memory facts survive into ``child`` only when every path from
        ``block`` to ``child`` is the single direct edge."""
        return (block.successors().count(child) >= 1
                and len(child.unique_predecessors()) == 1)

    # -- expression keys ----------------------------------------------------

    def _id_of(self, value: Value) -> object:
        if isinstance(value, Constant):
            scalar = getattr(value, "value", None)
            if scalar is not None:
                return ("const", str(value.type), scalar)
            return ("constobj", id(value))
        return id(value)

    def _expression_key(self, inst: Instruction) -> Optional[tuple]:
        if isinstance(inst, BinaryOperator):
            lhs = self._id_of(inst.operands[0])
            rhs = self._id_of(inst.operands[1])
            if inst.is_commutative and repr(rhs) < repr(lhs):
                lhs, rhs = rhs, lhs
            return (inst.opcode.value, str(inst.type), lhs, rhs)
        if isinstance(inst, ShiftInst):
            return (inst.opcode.value, str(inst.type),
                    self._id_of(inst.operands[0]), self._id_of(inst.operands[1]))
        if isinstance(inst, CastInst):
            return ("cast", str(inst.type), self._id_of(inst.operands[0]))
        if isinstance(inst, GetElementPtrInst):
            return ("gep", str(inst.type),
                    tuple(self._id_of(op) for op in inst.operands))
        return None
