"""Global value numbering: dominator-scoped redundancy elimination.

Walks the dominator tree with a scoped hash table of expression keys;
an instruction that recomputes an expression already available in a
dominating block is replaced by the earlier value.  Commutative
operations are keyed with sorted operands, so ``a+b`` matches ``b+a``.
GEPs participate, which is exactly why the paper makes address
arithmetic explicit: "most importantly, reassociation and redundancy
elimination" see it.

Also performs simple redundant-load elimination: a load is replaced by
a dominating load/store of the same pointer when no intervening
instruction may write memory.  When the quick syntactic alias test
cannot separate a store from a remembered load fact, DSA node identity
gets a second opinion: distinct points-to nodes (neither ``unknown``)
prove the store writes other memory, and the fact survives.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.alias import AliasResult, alias
from ..analysis.dominators import DominatorTree
from ..core.basicblock import BasicBlock
from ..core.instructions import (
    BinaryOperator, CastInst, GetElementPtrInst, Instruction, LoadInst,
    Opcode, ShiftInst, StoreInst,
)
from ..core.module import Function
from ..core.values import Constant, Value
from .utils import replace_and_erase


class GVN:
    """The pass object (see module docstring)."""

    name = "gvn"

    def __init__(self):
        self._dsa_cache: dict = {}
        self.loads_eliminated_via_dsa = 0

    def statistics(self) -> dict:
        return {"loads-eliminated-via-dsa": self.loads_eliminated_via_dsa}

    def _dsa_for(self, function: Function):
        """The module's DSA, built on first demand and shared across
        this pass object's per-function runs (points-to facts only get
        coarser as GVN deletes instructions, so reuse stays sound)."""
        module = function.parent
        if module is None:
            return None
        key = id(module)
        if key not in self._dsa_cache:
            from ..analysis.dsa import DataStructureAnalysis

            self._dsa_cache[key] = DataStructureAnalysis(module)
        return self._dsa_cache[key]

    def run_on_function(self, function: Function) -> bool:
        numbering = _Numbering(function, DominatorTree(function),
                               lambda: self._dsa_for(function))
        changed = numbering.run()
        self.loads_eliminated_via_dsa += numbering.dsa_loads_eliminated
        return changed


class _Numbering:
    def __init__(self, function: Function, domtree: DominatorTree,
                 dsa_factory=lambda: None):
        self.function = function
        self.domtree = domtree
        self.changed = False
        self._dsa_factory = dsa_factory
        #: memory-fact keys that only survived a store thanks to DSA.
        self._dsa_saved: set = set()
        self.dsa_loads_eliminated = 0
        #: value id for operands: constants keyed structurally, others by id.
        self._value_ids: dict = {}
        self._next_id = 0

    def _dsa_disjoint(self, a: Value, b: Value) -> bool:
        """Do the two pointers provably name disjoint memory?  True
        only for distinct DSA nodes of which neither is ``unknown``
        (two unknown nodes may overlap no matter their identity)."""
        dsa = self._dsa_factory()
        if dsa is None:
            return False
        node_a = dsa._cell_of(a).node.find()
        node_b = dsa._cell_of(b).node.find()
        return node_a is not node_b \
            and not node_a.unknown and not node_b.unknown

    def run(self) -> bool:
        # Iterative dominator-tree preorder walk (deep CFGs would blow
        # the Python recursion limit).
        stack: list[tuple[BasicBlock, dict, dict]] = [(self.domtree.root, {}, {})]
        while stack:
            block, available, memory = stack.pop()
            available, memory = self._walk(block, available, memory)
            for child in self.domtree.children(block):
                child_memory = memory if self._direct_child(block, child) else {}
                stack.append((child, available, child_memory))
        return self.changed

    def _walk(self, block: BasicBlock, available: dict, memory: dict) -> tuple[dict, dict]:
        # Copy-on-write scoped tables: each dominator-tree child gets the
        # parent's view plus this block's additions.
        available = dict(available)
        memory = dict(memory)
        for inst in list(block.instructions):
            if isinstance(inst, StoreInst):
                # Evict only the facts the store may clobber; when the
                # syntactic test says "maybe", ask DSA for disjointness.
                kept = {}
                for key, (pointer, value) in memory.items():
                    if alias(pointer, inst.pointer) is AliasResult.NO_ALIAS:
                        kept[key] = (pointer, value)
                    elif self._dsa_disjoint(pointer, inst.pointer):
                        kept[key] = (pointer, value)
                        self._dsa_saved.add(key)
                memory = kept
                memory[("mem", self._id_of(inst.pointer))] = (
                    inst.pointer, inst.value
                )
                continue
            if inst.may_write_memory():
                memory = {}
            if isinstance(inst, LoadInst):
                key = ("mem", self._id_of(inst.pointer))
                earlier = memory.get(key)
                if earlier is not None and earlier[1].type is inst.type:
                    replace_and_erase(inst, earlier[1])
                    self.changed = True
                    if key in self._dsa_saved:
                        self.dsa_loads_eliminated += 1
                    continue
                memory[key] = (inst.pointer, inst)
                continue
            key = self._expression_key(inst)
            if key is None:
                continue
            earlier = available.get(key)
            if earlier is not None:
                replace_and_erase(inst, earlier)
                self.changed = True
                continue
            available[key] = inst
        return available, memory

    def _direct_child(self, block: BasicBlock, child: BasicBlock) -> bool:
        """Memory facts survive into ``child`` only when every path from
        ``block`` to ``child`` is the single direct edge."""
        return (block.successors().count(child) >= 1
                and len(child.unique_predecessors()) == 1)

    # -- expression keys ----------------------------------------------------

    def _id_of(self, value: Value) -> object:
        if isinstance(value, Constant):
            scalar = getattr(value, "value", None)
            if scalar is not None:
                return ("const", str(value.type), scalar)
            return ("constobj", id(value))
        return id(value)

    def _expression_key(self, inst: Instruction) -> Optional[tuple]:
        if isinstance(inst, BinaryOperator):
            lhs = self._id_of(inst.operands[0])
            rhs = self._id_of(inst.operands[1])
            if inst.is_commutative and repr(rhs) < repr(lhs):
                lhs, rhs = rhs, lhs
            return (inst.opcode.value, str(inst.type), lhs, rhs)
        if isinstance(inst, ShiftInst):
            return (inst.opcode.value, str(inst.type),
                    self._id_of(inst.operands[0]), self._id_of(inst.operands[1]))
        if isinstance(inst, CastInst):
            return ("cast", str(inst.type), self._id_of(inst.operands[0]))
        if isinstance(inst, GetElementPtrInst):
            return ("gep", str(inst.type),
                    tuple(self._id_of(op) for op in inst.operands))
        return None
