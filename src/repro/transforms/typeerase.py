"""Type erasure: rewrite typed address arithmetic as byte arithmetic.

The ablation of paper section 4.1.1: "an earlier version of the C
front-end was based on GCC's RTL internal representation, which
provided little useful type information, and both DSA and pool
allocation were much less effective."  This pass simulates RTL-style
lowering on an otherwise identical module: every ``getelementptr``
becomes ``cast to sbyte* ; byte arithmetic ; cast back``, so field
structure disappears from the address computation and DSA's typed-
access fraction collapses (benchmark E5 measures exactly that drop).
"""

from __future__ import annotations

from ..core import types
from ..core.builder import IRBuilder
from ..core.instructions import GetElementPtrInst, Opcode
from ..core.module import Function, Module
from ..core.values import ConstantInt


class TypeEraser:
    """The pass object (see module docstring)."""

    name = "typeerase"

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for function in list(module.defined_functions()):
            changed |= self.run_on_function(function, module)
        return changed

    def run_on_function(self, function: Function, module: Module) -> bool:
        layout = module.data_layout
        changed = False
        byte_ptr = types.pointer(types.SBYTE)
        for block in function.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, GetElementPtrInst):
                    continue
                builder = IRBuilder()
                builder.position_before(inst)
                raw = builder.cast(inst.pointer, byte_ptr, "raw")
                current = inst.pointer.type.pointee
                address = raw
                for position, index in enumerate(inst.indices):
                    if position == 0:
                        scale = layout.size_of(current)
                    elif current.is_struct:
                        field = index.value  # type: ignore[attr-defined]
                        offset = layout.field_offset(current, field)
                        current = current.fields[field]
                        if offset:
                            address = builder.gep(
                                address, [ConstantInt(types.LONG, offset)],
                                "byteoff",
                            )
                        continue
                    else:
                        scale = layout.size_of(current.element)
                        current = current.element
                    if isinstance(index, ConstantInt):
                        total = index.value * scale
                        if total:
                            address = builder.gep(
                                address, [ConstantInt(types.LONG, total)],
                                "byteoff",
                            )
                    else:
                        wide = builder.cast(index, types.LONG, "idx")
                        scaled = builder.mul(
                            wide, ConstantInt(types.LONG, scale), "scaled"
                        )
                        address = builder.gep(address, [scaled], "byteoff")
                typed = builder.cast(address, inst.type, "typed")
                inst.replace_all_uses_with(typed)
                inst.erase_from_parent()
                changed = True
        return changed
